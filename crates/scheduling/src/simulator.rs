//! The event-driven multi-cluster scheduling simulator.
//!
//! Jobs (bags of tasks) arrive over time; a policy — fixed or chosen
//! online by a [`Chooser`] such as the portfolio scheduler — orders the
//! queue, and tasks start when they fit. The simulator runs on the
//! `atlarge-des` kernel and reports the metrics the portfolio studies
//! compare on: mean response time, mean bounded slowdown, makespan, and
//! utilization, plus the decision-cost counters that §6.6's online-
//! feasibility question turns on.

use crate::policy::{Policy, PolicyRef, QueuedTask};
use atlarge_des::sim::{Ctx, Model, Simulation};
use atlarge_stats::dist::{Normal, Sample};
use atlarge_telemetry::manifest::fnv1a;
use atlarge_telemetry::tracer::EventLabel;
use atlarge_telemetry::Recorder;
use atlarge_workload::job::Job;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A task currently executing, as schedulers see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningTask {
    /// Pool the task runs in.
    pub pool: usize,
    /// Cores held.
    pub cpus: u32,
    /// Estimated finish time (the scheduler's view, possibly wrong).
    pub est_finish: f64,
    /// When the task started (failure accounting).
    pub started_at: f64,
}

/// Chooses the scheduling policy at each decision point.
///
/// A fixed policy ignores the state; the portfolio scheduler simulates its
/// active set over the queue snapshot. Policies travel as [`PolicyRef`]
/// trait objects, so choosers may hand out custom policies registered
/// outside this crate.
pub trait Chooser {
    /// Returns the policy to use now.
    fn choose(
        &mut self,
        now: f64,
        queue: &[QueuedTask],
        free_cores: u32,
        running: &[RunningTask],
    ) -> PolicyRef;

    /// Cumulative lookahead-simulation events spent (0 for fixed
    /// policies).
    fn lookahead_events(&self) -> u64 {
        0
    }

    /// Cumulative policy evaluations performed.
    fn decisions(&self) -> u64 {
        0
    }

    /// Live-evolution hook, polled at each scheduling point with the
    /// current queue depth. Returning a span label announces that a swap
    /// is due; the simulator then calls [`apply_swap`](Chooser::apply_swap)
    /// inside that tracer span. Plain choosers never swap.
    fn swap_due(&mut self, _now: f64, _queue_len: f64) -> Option<String> {
        None
    }

    /// Executes the swap announced by [`swap_due`](Chooser::swap_due).
    /// See `crate::evolve::EvolvingChooser`.
    fn apply_swap(&mut self, _now: f64) {}
}

/// A chooser that always returns the same built-in policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedChooser(pub Policy);

impl Chooser for FixedChooser {
    fn choose(&mut self, _: f64, _: &[QueuedTask], _: u32, _: &[RunningTask]) -> PolicyRef {
        PolicyRef::from(self.0)
    }
}

/// A chooser that always returns the same policy object — the handle may
/// point at a custom [`SchedulingPolicy`] from another crate.
///
/// [`SchedulingPolicy`]: crate::policy::SchedulingPolicy
#[derive(Debug, Clone)]
pub struct FixedPolicy(pub PolicyRef);

impl Chooser for FixedPolicy {
    fn choose(&mut self, _: f64, _: &[QueuedTask], _: u32, _: &[RunningTask]) -> PolicyRef {
        self.0.clone()
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Log-scale standard deviation of runtime-estimate error: estimates
    /// are `runtime * exp(N(0, sigma))`. 0 = perfect estimates.
    pub estimate_sigma: f64,
    /// RNG seed for estimate noise.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            estimate_sigma: 0.3,
            seed: 42,
        }
    }
}

/// Metrics of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimMetrics {
    /// Mean job response time (last task finish − submit).
    pub mean_response: f64,
    /// Mean bounded slowdown (response / max(critical runtime, 10 s)).
    pub mean_bounded_slowdown: f64,
    /// Time the last job finished.
    pub makespan: f64,
    /// Busy core-time / (capacity × makespan).
    pub utilization: f64,
    /// Jobs completed.
    pub jobs_completed: usize,
    /// Tasks killed by failures and restarted.
    pub tasks_restarted: u64,
    /// Chooser decisions made.
    pub decisions: u64,
    /// Lookahead-simulation events spent by the chooser.
    pub lookahead_events: u64,
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    Finish { run_id: u64 },
    Fail(usize),
    Repair { pool: usize, cores: u32 },
}

impl EventLabel for Ev {
    fn label(&self) -> &'static str {
        match self {
            Ev::Arrival(_) => "arrival",
            Ev::Finish { .. } => "finish",
            Ev::Fail(_) => "fail",
            Ev::Repair { .. } => "repair",
        }
    }
}

/// A machine failure: at `time`, `cores` of `pool` fail for `duration`
/// seconds. Tasks running on the failed cores are killed and resubmitted
/// (the paper's P3: dynamic phenomena are first-class concerns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureEvent {
    /// When the failure strikes.
    pub time: f64,
    /// Affected pool index.
    pub pool: usize,
    /// Cores lost.
    pub cores: u32,
    /// Seconds until repair.
    pub duration: f64,
}

#[derive(Debug)]
struct Pool {
    total: u32,
    free: u32,
}

#[derive(Debug)]
struct JobState {
    submit: f64,
    remaining: usize,
    critical: f64,
}

struct SchedModel<C: Chooser> {
    jobs: Vec<Job>,
    pools: Vec<Pool>,
    queue: Vec<QueuedTask>,
    failures: Vec<FailureEvent>,
    cancelled: std::collections::BTreeSet<u64>,
    run_tasks: BTreeMap<u64, QueuedTask>,
    tasks_restarted: u64,
    running: BTreeMap<u64, RunningTask>,
    running_cache: Vec<RunningTask>,
    cache_dirty: bool,
    next_run_id: u64,
    run_jobs: BTreeMap<u64, u64>,
    chooser: C,
    job_states: BTreeMap<u64, JobState>,
    responses: Vec<f64>,
    slowdowns: Vec<f64>,
    busy_core_time: f64,
    makespan: f64,
    estimate_noise: Normal,
    noise_rng: StdRng,
    recorder: Option<Recorder>,
}

impl<C: Chooser> SchedModel<C> {
    fn free_cores(&self) -> u32 {
        self.pools.iter().map(|p| p.free).sum()
    }

    fn refresh_cache(&mut self) {
        if self.cache_dirty {
            self.running_cache = self.running.values().copied().collect();
            self.cache_dirty = false;
        }
    }

    fn start_task(&mut self, task: QueuedTask, pool: usize, ctx: &mut Ctx<Ev>) {
        self.pools[pool].free -= task.cpus;
        let run_id = self.next_run_id;
        self.next_run_id += 1;
        self.running.insert(
            run_id,
            RunningTask {
                pool,
                cpus: task.cpus,
                est_finish: ctx.now() + task.estimate,
                started_at: ctx.now(),
            },
        );
        self.cache_dirty = true;
        self.run_jobs.insert(run_id, task.job);
        self.run_tasks.insert(run_id, task);
        ctx.schedule_in(task.runtime, Ev::Finish { run_id });
    }

    /// Kills running tasks in `pool` until at least `needed` cores are
    /// reclaimed (newest first); the tasks restart from scratch.
    fn kill_tasks(&mut self, pool: usize, needed: u32, now: f64) -> u32 {
        let mut reclaimed = 0u32;
        let victims: Vec<u64> = self
            .running
            .iter()
            .rev()
            .filter(|(_, r)| r.pool == pool)
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            if reclaimed >= needed {
                break;
            }
            let r = self.running.remove(&id).expect("victim runs");
            self.cache_dirty = true;
            self.cancelled.insert(id);
            reclaimed += r.cpus;
            self.busy_core_time += (now - r.started_at) * f64::from(r.cpus);
            self.run_jobs.remove(&id);
            let task = self.run_tasks.remove(&id).expect("task known");
            self.tasks_restarted += 1;
            self.queue.push(task);
        }
        reclaimed
    }

    /// Best pool for a task: the one with the most free cores that fits.
    fn pick_pool(&self, cpus: u32) -> Option<usize> {
        self.pools
            .iter()
            .enumerate()
            .filter(|(_, p)| p.free >= cpus)
            .max_by_key(|(_, p)| p.free)
            .map(|(i, _)| i)
    }

    fn schedule(&mut self, ctx: &mut Ctx<Ev>) {
        if self.queue.is_empty() {
            return;
        }
        if let Some(label) = self.chooser.swap_due(ctx.now(), self.queue.len() as f64) {
            ctx.span_enter(&label);
            self.chooser.apply_swap(ctx.now());
            ctx.span_exit(&label);
        }
        let free = self.free_cores();
        self.refresh_cache();
        let running = std::mem::take(&mut self.running_cache);
        ctx.span_enter("sched.choose");
        let policy = self.chooser.choose(ctx.now(), &self.queue, free, &running);
        ctx.span_exit("sched.choose");
        self.running_cache = running;
        if let Some(rec) = &self.recorder {
            rec.gauge_set("sched.queue_tasks", ctx.now(), self.queue.len() as f64);
            rec.incr("sched.decisions");
        }
        policy.order(&mut self.queue);
        if policy.backfills() {
            self.schedule_easy(ctx);
        } else {
            self.schedule_blocking(ctx);
        }
    }

    /// Start tasks in queue order, stopping at the first that cannot be
    /// placed (strict priority semantics).
    fn schedule_blocking(&mut self, ctx: &mut Ctx<Ev>) {
        while !self.queue.is_empty() {
            let head = self.queue[0];
            match self.pick_pool(head.cpus) {
                Some(pool) => {
                    let t = self.queue.remove(0);
                    self.start_task(t, pool, ctx);
                }
                None => break,
            }
        }
    }

    /// EASY backfilling: the head holds a reservation; later tasks may
    /// start only if (by estimate) they finish before the reservation's
    /// shadow time or fit in the cores spare at that time.
    fn schedule_easy(&mut self, ctx: &mut Ctx<Ev>) {
        loop {
            if self.queue.is_empty() {
                return;
            }
            let head = self.queue[0];
            if let Some(pool) = self.pick_pool(head.cpus) {
                let t = self.queue.remove(0);
                self.start_task(t, pool, ctx);
                continue;
            }
            let (shadow, extra) = self.reservation(head.cpus, ctx.now());
            let mut i = 1;
            while i < self.queue.len() {
                let t = self.queue[i];
                let fits_now = self.pick_pool(t.cpus).is_some();
                let ends_before_shadow = ctx.now() + t.estimate <= shadow;
                let within_extra = t.cpus <= extra;
                if fits_now && (ends_before_shadow || within_extra) {
                    let t = self.queue.remove(i);
                    let pool = self.pick_pool(t.cpus).expect("checked fits");
                    self.start_task(t, pool, ctx);
                } else {
                    i += 1;
                }
            }
            return;
        }
    }

    /// Earliest estimated time `cpus` become free in some pool, and the
    /// cores spare at that moment.
    fn reservation(&self, cpus: u32, now: f64) -> (f64, u32) {
        let mut best: Option<(f64, u32)> = None;
        for (pi, pool) in self.pools.iter().enumerate() {
            let mut frees: Vec<(f64, u32)> = self
                .running
                .values()
                .filter(|r| r.pool == pi)
                .map(|r| (r.est_finish.max(now), r.cpus))
                .collect();
            frees.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
            let mut avail = pool.free;
            for (t, c) in frees {
                avail += c;
                if avail >= cpus {
                    let extra = avail - cpus;
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, extra));
                    }
                    break;
                }
            }
        }
        best.unwrap_or((f64::INFINITY, 0))
    }
}

impl<C: Chooser> Model for SchedModel<C> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Arrival(job_idx) => {
                let job = self.jobs[job_idx].clone();
                let jid = job.id.0;
                self.job_states.insert(
                    jid,
                    JobState {
                        submit: job.submit,
                        remaining: job.tasks.len(),
                        critical: job.critical_runtime(),
                    },
                );
                for t in &job.tasks {
                    let noise = self.estimate_noise.sample(&mut self.noise_rng);
                    self.queue.push(QueuedTask {
                        job: jid,
                        submit: job.submit,
                        runtime: t.runtime,
                        estimate: (t.runtime * noise.exp()).max(0.01),
                        cpus: t.cpus,
                    });
                }
                self.schedule(ctx);
            }
            Ev::Finish { run_id } => {
                if self.cancelled.remove(&run_id) {
                    // The task was killed by a failure; its restart is
                    // already queued and its cores were lost with the
                    // machine.
                    return;
                }
                let r = self.running.remove(&run_id).expect("finishing task runs");
                self.cache_dirty = true;
                self.pools[r.pool].free += r.cpus;
                let task = self.run_tasks.remove(&run_id).expect("task known");
                self.busy_core_time += task.runtime * f64::from(task.cpus);
                let jid = self.run_jobs.remove(&run_id).expect("job known");
                let js = self.job_states.get_mut(&jid).expect("job state exists");
                js.remaining -= 1;
                if js.remaining == 0 {
                    let resp = ctx.now() - js.submit;
                    self.responses.push(resp);
                    // Standard bounded slowdown: max(1, response / max(T, 10s)).
                    self.slowdowns.push((resp / js.critical.max(10.0)).max(1.0));
                    self.makespan = self.makespan.max(ctx.now());
                    if let Some(rec) = &self.recorder {
                        rec.observe_at("sched.response_s", ctx.now(), resp);
                        rec.incr("sched.jobs_completed");
                    }
                }
                self.schedule(ctx);
            }
            Ev::Fail(idx) => {
                let f = self.failures[idx];
                let pool = &mut self.pools[f.pool];
                let lost = f.cores.min(pool.total);
                pool.total -= lost;
                let from_free = lost.min(pool.free);
                pool.free -= from_free;
                let deficit = lost - from_free;
                if deficit > 0 {
                    let reclaimed = self.kill_tasks(f.pool, deficit, ctx.now());
                    // Reclaimed cores beyond the deficit survive as free.
                    let surplus = reclaimed.saturating_sub(deficit);
                    self.pools[f.pool].free += surplus;
                }
                ctx.schedule_in(
                    f.duration,
                    Ev::Repair {
                        pool: f.pool,
                        cores: lost,
                    },
                );
                self.schedule(ctx);
            }
            Ev::Repair { pool, cores } => {
                self.pools[pool].total += cores;
                self.pools[pool].free += cores;
                self.schedule(ctx);
            }
        }
    }
}

/// Runs a full simulation of `jobs` over pools of the given core counts
/// under a fixed `policy`.
pub fn simulate(
    jobs: &[Job],
    pool_cores: &[u32],
    policy: Policy,
    config: &SimConfig,
) -> SimMetrics {
    simulate_with_chooser(jobs, pool_cores, FixedChooser(policy), config)
}

/// Runs a full simulation with an arbitrary policy chooser (e.g. the
/// portfolio scheduler).
///
/// # Panics
///
/// Panics if `pool_cores` is empty or any task needs more cores than the
/// largest pool (the job could never run).
pub fn simulate_with_chooser<C: Chooser>(
    jobs: &[Job],
    pool_cores: &[u32],
    chooser: C,
    config: &SimConfig,
) -> SimMetrics {
    simulate_with_failures(jobs, pool_cores, chooser, config, &[])
}

/// Runs a full simulation under a fixed `policy` with telemetry: the
/// kernel's causal event trace, a `sched.choose` span per decision,
/// queue-depth gauges, and a timed response-latency stream land on
/// `rec`. Instrumentation is observational — metrics equal
/// [`simulate`]'s for the same inputs.
pub fn simulate_traced(
    jobs: &[Job],
    pool_cores: &[u32],
    policy: Policy,
    config: &SimConfig,
    rec: &Recorder,
) -> SimMetrics {
    simulate_with_chooser_traced(jobs, pool_cores, FixedChooser(policy), config, rec)
}

/// [`simulate_with_chooser`] with telemetry on `rec` — the traced entry
/// point for the portfolio scheduler.
pub fn simulate_with_chooser_traced<C: Chooser>(
    jobs: &[Job],
    pool_cores: &[u32],
    chooser: C,
    config: &SimConfig,
    rec: &Recorder,
) -> SimMetrics {
    run_sim(jobs, pool_cores, chooser, config, &[], Some(rec)).0
}

/// Runs a full simulation with machine failures injected.
///
/// # Panics
///
/// Panics if `pool_cores` is empty, a task exceeds the largest pool, or
/// a failure references a missing pool.
pub fn simulate_with_failures<C: Chooser>(
    jobs: &[Job],
    pool_cores: &[u32],
    chooser: C,
    config: &SimConfig,
    failures: &[FailureEvent],
) -> SimMetrics {
    run_sim(jobs, pool_cores, chooser, config, failures, None).0
}

/// [`simulate_with_chooser`] returning the chooser alongside the
/// metrics, for choosers that accumulate state worth inspecting after
/// the run (e.g. `crate::evolve::EvolvingChooser`'s swap log). Attach a
/// `recorder` to also trace the run.
pub fn simulate_keeping_chooser<C: Chooser>(
    jobs: &[Job],
    pool_cores: &[u32],
    chooser: C,
    config: &SimConfig,
    recorder: Option<&Recorder>,
) -> (SimMetrics, C) {
    run_sim(jobs, pool_cores, chooser, config, &[], recorder)
}

fn run_sim<C: Chooser>(
    jobs: &[Job],
    pool_cores: &[u32],
    chooser: C,
    config: &SimConfig,
    failures: &[FailureEvent],
    recorder: Option<&Recorder>,
) -> (SimMetrics, C) {
    assert!(!pool_cores.is_empty(), "need at least one pool");
    for f in failures {
        assert!(f.pool < pool_cores.len(), "failure references missing pool");
    }
    let max_pool = *pool_cores.iter().max().expect("non-empty");
    for j in jobs {
        assert!(
            j.max_cpus() <= max_pool,
            "job {} needs {} cores, largest pool has {max_pool}",
            j.id,
            j.max_cpus()
        );
    }
    let model = SchedModel {
        jobs: jobs.to_vec(),
        pools: pool_cores
            .iter()
            .map(|&c| Pool { total: c, free: c })
            .collect(),
        queue: Vec::new(),
        failures: failures.to_vec(),
        cancelled: std::collections::BTreeSet::new(),
        run_tasks: BTreeMap::new(),
        tasks_restarted: 0,
        running: BTreeMap::new(),
        running_cache: Vec::new(),
        cache_dirty: false,
        next_run_id: 0,
        run_jobs: BTreeMap::new(),
        chooser,
        job_states: BTreeMap::new(),
        responses: Vec::new(),
        slowdowns: Vec::new(),
        busy_core_time: 0.0,
        makespan: 0.0,
        estimate_noise: Normal::new(0.0, config.estimate_sigma),
        noise_rng: StdRng::seed_from_u64(config.seed),
        recorder: recorder.cloned(),
    };
    // Arrivals and failure injections are scheduled up front; pre-size
    // the event queue so the fill phase never reallocates.
    let mut sim = Simulation::with_capacity(model, config.seed, jobs.len() + failures.len());
    if let Some(rec) = recorder {
        let cores: u32 = pool_cores.iter().sum();
        let digest = fnv1a(format!("{}|{}|{cores}", jobs.len(), pool_cores.len()).as_bytes());
        rec.set_run_info("scheduling.cluster", config.seed, digest);
        sim = sim.with_tracer(rec.clone());
    }
    for (i, j) in jobs.iter().enumerate() {
        sim.schedule(j.submit, Ev::Arrival(i));
    }
    for (i, f) in failures.iter().enumerate() {
        sim.schedule(f.time, Ev::Fail(i));
    }
    sim.run();
    let m = sim.into_model();
    let total_cores: u32 = pool_cores.iter().sum();
    let n = m.responses.len().max(1) as f64;
    let metrics = SimMetrics {
        mean_response: m.responses.iter().sum::<f64>() / n,
        mean_bounded_slowdown: m.slowdowns.iter().sum::<f64>() / n,
        makespan: m.makespan,
        utilization: if m.makespan > 0.0 {
            m.busy_core_time / (f64::from(total_cores) * m.makespan)
        } else {
            0.0
        },
        jobs_completed: m.responses.len(),
        tasks_restarted: m.tasks_restarted,
        decisions: m.chooser.decisions(),
        lookahead_events: m.chooser.lookahead_events(),
    };
    (metrics, m.chooser)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlarge_workload::job::{Job, JobId, Task};

    fn perfect() -> SimConfig {
        SimConfig {
            estimate_sigma: 0.0,
            seed: 1,
        }
    }

    fn job(id: u64, submit: f64, tasks: Vec<(f64, u32)>) -> Job {
        Job::new(
            JobId(id),
            submit,
            tasks.into_iter().map(|(r, c)| Task::new(r, c)).collect(),
        )
    }

    #[test]
    fn single_job_completes_immediately() {
        let jobs = vec![job(1, 0.0, vec![(10.0, 2)])];
        let m = simulate(&jobs, &[4], Policy::Fcfs, &perfect());
        assert_eq!(m.jobs_completed, 1);
        assert!((m.mean_response - 10.0).abs() < 1e-9);
        assert!((m.makespan - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fcfs_queues_in_arrival_order() {
        let jobs = vec![job(1, 0.0, vec![(10.0, 1)]), job(2, 0.0, vec![(10.0, 1)])];
        let m = simulate(&jobs, &[1], Policy::Fcfs, &perfect());
        assert_eq!(m.jobs_completed, 2);
        assert!((m.mean_response - 15.0).abs() < 1e-9); // 10 and 20
    }

    #[test]
    fn sjf_reduces_mean_response_vs_ljf() {
        let jobs: Vec<Job> = (0..20)
            .map(|i| job(i, 0.0, vec![((i % 5 + 1) as f64 * 10.0, 1)]))
            .collect();
        let sjf = simulate(&jobs, &[2], Policy::Sjf, &perfect());
        let ljf = simulate(&jobs, &[2], Policy::Ljf, &perfect());
        assert!(
            sjf.mean_response < ljf.mean_response,
            "sjf {} ljf {}",
            sjf.mean_response,
            ljf.mean_response
        );
    }

    #[test]
    fn easy_backfills_around_blocked_head() {
        // A 2-core task runs; a 4-core head is blocked; a short 1-core task
        // backfills under the head's reservation.
        let jobs = vec![
            job(1, 0.0, vec![(100.0, 2)]),
            job(2, 1.0, vec![(50.0, 4)]),
            job(3, 2.0, vec![(10.0, 1)]),
        ];
        let easy = simulate(&jobs, &[4], Policy::EasyBackfilling, &perfect());
        let fcfs = simulate(&jobs, &[4], Policy::Fcfs, &perfect());
        assert!(easy.mean_response < fcfs.mean_response);
        assert_eq!(easy.jobs_completed, 3);
    }

    #[test]
    fn utilization_is_bounded() {
        let jobs: Vec<Job> = (0..30)
            .map(|i| job(i, i as f64 * 5.0, vec![(20.0, 1), (30.0, 1)]))
            .collect();
        let m = simulate(&jobs, &[4, 4], Policy::Sjf, &perfect());
        assert!(m.utilization > 0.0 && m.utilization <= 1.0);
        assert_eq!(m.jobs_completed, 30);
    }

    #[test]
    fn deterministic_runs() {
        let jobs: Vec<Job> = (0..10).map(|i| job(i, i as f64, vec![(5.0, 1)])).collect();
        let cfg = SimConfig {
            estimate_sigma: 0.5,
            seed: 9,
        };
        let a = simulate(&jobs, &[2], Policy::EasyBackfilling, &cfg);
        let b = simulate(&jobs, &[2], Policy::EasyBackfilling, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        let jobs: Vec<Job> = (0..25)
            .map(|i| job(i, i as f64 * 2.0, vec![(8.0, 1), (12.0, 2)]))
            .collect();
        for p in Policy::all() {
            let m = simulate(&jobs, &[4], p, &perfect());
            assert_eq!(m.jobs_completed, 25, "{p} lost jobs");
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_records_metrics() {
        let jobs: Vec<Job> = (0..15)
            .map(|i| job(i, i as f64 * 3.0, vec![(10.0, 1), (6.0, 2)]))
            .collect();
        let rec = atlarge_telemetry::Recorder::new();
        let traced = simulate_traced(&jobs, &[4], Policy::Sjf, &perfect(), &rec);
        let plain = simulate(&jobs, &[4], Policy::Sjf, &perfect());
        assert_eq!(traced, plain, "tracing must not change the outcome");
        assert_eq!(rec.counter("sched.jobs_completed"), 15);
        assert_eq!(rec.tally("sched.response_s").unwrap().len(), 15);
        assert!(rec.span_stats()["sched.choose"].entries > 0);
        assert!(rec.dispatches("arrival") == 15);
        assert_eq!(rec.manifest().model, "scheduling.cluster");
        assert!(rec.events_dispatched() > 0);
    }

    #[test]
    fn traced_portfolio_records_decisions() {
        use crate::portfolio::PortfolioScheduler;
        let jobs: Vec<Job> = (0..12)
            .map(|i| job(i, i as f64 * 4.0, vec![(10.0, 1)]))
            .collect();
        let rec = atlarge_telemetry::Recorder::new();
        let portfolio = PortfolioScheduler::new(vec![Policy::Fcfs, Policy::Sjf], 2, 60.0);
        let m = simulate_with_chooser_traced(&jobs, &[2], portfolio, &perfect(), &rec);
        assert_eq!(m.jobs_completed, 12);
        assert!(rec.counter("sched.decisions") > 0);
        assert!(rec.gauge("sched.queue_tasks").is_some());
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_task_rejected_up_front() {
        let jobs = vec![job(1, 0.0, vec![(10.0, 16)])];
        simulate(&jobs, &[4], Policy::Fcfs, &perfect());
    }

    #[test]
    fn noisy_estimates_do_not_lose_jobs() {
        let jobs: Vec<Job> = (0..40)
            .map(|i| job(i, i as f64, vec![(10.0, 1), (5.0, 2)]))
            .collect();
        let cfg = SimConfig {
            estimate_sigma: 1.5,
            seed: 3,
        };
        let m = simulate(&jobs, &[8], Policy::EasyBackfilling, &cfg);
        assert_eq!(m.jobs_completed, 40);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use atlarge_workload::job::{Job, JobId, Task};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Conservation: every policy completes every submitted job, and
        /// utilization stays in (0, 1].
        #[test]
        fn prop_all_jobs_complete(
            specs in proptest::collection::vec((1.0f64..60.0, 1u32..4, 0.0f64..200.0), 1..25),
            policy_idx in 0usize..7,
        ) {
            let jobs: Vec<Job> = specs
                .iter()
                .enumerate()
                .map(|(i, &(rt, cpus, submit))| {
                    Job::new(JobId(i as u64), submit, vec![Task::new(rt, cpus)])
                })
                .collect();
            let policy = Policy::all()[policy_idx];
            let m = simulate(
                &jobs,
                &[8],
                policy,
                &SimConfig { estimate_sigma: 0.3, seed: 7 },
            );
            prop_assert_eq!(m.jobs_completed, jobs.len());
            prop_assert!(m.utilization > 0.0 && m.utilization <= 1.0 + 1e-9);
            prop_assert!(m.mean_bounded_slowdown >= 1.0 - 1e-9);
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use atlarge_workload::job::{Job, JobId, Task};

    fn perfect() -> SimConfig {
        SimConfig {
            estimate_sigma: 0.0,
            seed: 1,
        }
    }

    fn jobs() -> Vec<Job> {
        (0..20)
            .map(|i| {
                Job::new(
                    JobId(i),
                    i as f64 * 5.0,
                    vec![Task::new(30.0, 1), Task::new(40.0, 2)],
                )
            })
            .collect()
    }

    #[test]
    fn no_failures_matches_plain_simulation() {
        let plain = simulate(&jobs(), &[8], Policy::Sjf, &perfect());
        let with_empty =
            simulate_with_failures(&jobs(), &[8], FixedChooser(Policy::Sjf), &perfect(), &[]);
        assert_eq!(plain, with_empty);
        assert_eq!(plain.tasks_restarted, 0);
    }

    #[test]
    fn failures_restart_tasks_but_lose_no_jobs() {
        let failures = vec![
            FailureEvent {
                time: 20.0,
                pool: 0,
                cores: 6,
                duration: 60.0,
            },
            FailureEvent {
                time: 150.0,
                pool: 0,
                cores: 4,
                duration: 30.0,
            },
        ];
        let m = simulate_with_failures(
            &jobs(),
            &[8],
            FixedChooser(Policy::Fcfs),
            &perfect(),
            &failures,
        );
        assert_eq!(m.jobs_completed, 20, "failures must not lose jobs");
        assert!(
            m.tasks_restarted > 0,
            "a busy pool losing cores kills tasks"
        );
        let healthy = simulate(&jobs(), &[8], Policy::Fcfs, &perfect());
        assert!(
            m.makespan > healthy.makespan,
            "failures should delay the makespan: {} vs {}",
            m.makespan,
            healthy.makespan
        );
    }

    #[test]
    fn capacity_is_restored_after_repair() {
        // One huge failure mid-run; afterwards throughput recovers and the
        // run completes with the original capacity accounted.
        let failures = vec![FailureEvent {
            time: 10.0,
            pool: 0,
            cores: 7,
            duration: 50.0,
        }];
        let m = simulate_with_failures(
            &jobs(),
            &[8],
            FixedChooser(Policy::Sjf),
            &perfect(),
            &failures,
        );
        assert_eq!(m.jobs_completed, 20);
        assert!(m.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn idle_pool_failure_restarts_nothing() {
        // Failure strikes long after all work is done.
        let failures = vec![FailureEvent {
            time: 1.0e6,
            pool: 0,
            cores: 4,
            duration: 10.0,
        }];
        let m = simulate_with_failures(
            &jobs(),
            &[8],
            FixedChooser(Policy::Sjf),
            &perfect(),
            &failures,
        );
        assert_eq!(m.tasks_restarted, 0);
        assert_eq!(m.jobs_completed, 20);
    }

    #[test]
    fn deterministic_under_failures() {
        let failures = vec![FailureEvent {
            time: 25.0,
            pool: 0,
            cores: 5,
            duration: 40.0,
        }];
        let run = || {
            simulate_with_failures(
                &jobs(),
                &[8],
                FixedChooser(Policy::EasyBackfilling),
                &perfect(),
                &failures,
            )
        };
        assert_eq!(run(), run());
    }
}
