//! The Table 8 reproductions: the PAD law and the HPAD extension.

use crate::generators::Dataset;
use crate::platforms::{run, Algorithm, Platform};
use atlarge_stats::factorial::{decompose, Cell, Decomposition};

/// One measurement of the PAD sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PadCell {
    /// Platform name.
    pub platform: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Dataset name.
    pub dataset: &'static str,
    /// Deterministic critical-path cost.
    pub critical_path: f64,
    /// Iterations executed.
    pub iterations: u32,
}

/// Runs the full-factorial PAD sweep: every roster platform × all six
/// algorithms × all three datasets, on graphs of roughly `n` vertices.
pub fn pad_sweep(n: usize, seed: u64) -> Vec<PadCell> {
    let mut cells = Vec::new();
    for d in Dataset::all() {
        let g = d.generate(n, seed);
        for a in Algorithm::all() {
            for p in Platform::roster() {
                let c = run(p, a, &g);
                cells.push(PadCell {
                    platform: p.name(),
                    algorithm: a.name(),
                    dataset: d.name(),
                    critical_path: c.critical_path,
                    iterations: c.iterations,
                });
            }
        }
    }
    cells
}

/// The HPAD sweep: the PAD roster plus the heterogeneous accelerator.
pub fn hpad_sweep(n: usize, seed: u64) -> Vec<PadCell> {
    let mut cells = pad_sweep(n, seed);
    for d in Dataset::all() {
        let g = d.generate(n, seed);
        for a in Algorithm::all() {
            let c = run(Platform::Accelerator, a, &g);
            cells.push(PadCell {
                platform: Platform::Accelerator.name(),
                algorithm: a.name(),
                dataset: d.name(),
                critical_path: c.critical_path,
                iterations: c.iterations,
            });
        }
    }
    cells
}

/// Decomposes a sweep's log-costs into platform/algorithm/dataset main
/// effects and their interaction — the statistical form of the PAD law.
pub fn pad_decomposition(cells: &[PadCell]) -> Decomposition {
    let f: Vec<Cell> = cells
        .iter()
        .map(|c| Cell {
            a: c.platform.to_string(),
            b: c.algorithm.to_string(),
            c: c.dataset.to_string(),
            y: c.critical_path.max(1.0).ln(),
        })
        .collect();
    decompose(&f)
}

/// For each (algorithm, dataset) pair, the winning platform.
pub fn winners(cells: &[PadCell]) -> Vec<((&'static str, &'static str), &'static str)> {
    use std::collections::BTreeMap;
    let mut best: BTreeMap<(&str, &str), (&str, f64)> = BTreeMap::new();
    for c in cells {
        let key = (c.algorithm, c.dataset);
        match best.get(&key) {
            Some(&(_, cp)) if cp <= c.critical_path => {}
            _ => {
                best.insert(key, (c.platform, c.critical_path));
            }
        }
    }
    cells
        .iter()
        .map(|c| (c.algorithm, c.dataset))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .map(|k| (k, best[&k].0))
        .collect()
}

/// Renders the sweep as the Table-8-style text report.
pub fn render_pad(cells: &[PadCell]) -> String {
    let mut out = format!(
        "{:<14}{:<10}{:<10}{:>16}{:>8}\n",
        "platform", "algo", "dataset", "critical-path", "iters"
    );
    for c in cells {
        out.push_str(&format!(
            "{:<14}{:<10}{:<10}{:>16.0}{:>8}\n",
            c.platform, c.algorithm, c.dataset, c.critical_path, c.iterations
        ));
    }
    let d = pad_decomposition(cells);
    out.push_str(&format!(
        "interaction share of variance: {:.2} (max main effect {:.2})\n",
        d.interaction_share(),
        d.max_main_share()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<PadCell> {
        pad_sweep(1_200, 3)
    }

    #[test]
    fn sweep_is_full_factorial() {
        let cells = sweep();
        assert_eq!(cells.len(), 3 * 6 * 3);
    }

    #[test]
    fn pad_law_holds() {
        // The paper's "law!": performance depends on the interaction of
        // platform, algorithm, and dataset — the interaction term must
        // explain a non-trivial share of variance.
        let d = pad_decomposition(&sweep());
        assert!(
            d.interaction_share() > 0.05,
            "interaction share {} too small for the PAD law",
            d.interaction_share()
        );
        assert!(d.ss_total > 0.0);
    }

    #[test]
    fn no_platform_wins_everywhere() {
        let w = winners(&sweep());
        let distinct: std::collections::BTreeSet<&str> = w.iter().map(|&(_, p)| p).collect();
        assert!(
            distinct.len() >= 2,
            "one platform swept all algorithm×dataset cells: {distinct:?}"
        );
    }

    #[test]
    fn hpad_accelerator_wins_some_cells_only() {
        // [106]: with heterogeneous hardware "the PAD law is applicable
        // only in special situations" — the accelerator must win some
        // cells and lose others.
        let cells = hpad_sweep(1_200, 3);
        let w = winners(&cells);
        let accel_wins = w.iter().filter(|&&(_, p)| p == "accelerator").count();
        assert!(accel_wins > 0, "accelerator should win somewhere");
        assert!(
            accel_wins < w.len(),
            "accelerator should not win everywhere"
        );
    }

    #[test]
    fn render_contains_decomposition() {
        let s = render_pad(&sweep());
        assert!(s.contains("interaction share"));
        assert!(s.contains("pagerank"));
    }
}
