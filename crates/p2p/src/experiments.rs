//! The Table 5 reproduction: one runnable check per study row, executed
//! as an `atlarge-exp` campaign.
//!
//! Each study is one cell of a single-factor grid. The engine derives an
//! independent SplitMix64 sub-seed per cell (and per replication), so
//! the ecosystem, ground-truth, instrument-bias, flashcrowd, and
//! pipeline sub-studies no longer share one verbatim RNG stream — the
//! correlated-seed bug the hand-rolled driver had. Within a row, paired
//! comparisons (e.g. ADSL vs symmetric swarms) deliberately reuse the
//! cell seed: common random numbers sharpen the contrast the claim
//! tests.

use crate::ecosystem::{alias_analysis, detect_spam_trackers, Ecosystem, EcosystemConfig};
use crate::flashcrowd;
use crate::measurement::{coverage_ablation, GroundTruth, Instrument};
use crate::swarm::{run_swarm, Bandwidth, SwarmConfig};
use crate::twofast::speedup_curve;
use crate::vicissitude::{bottleneck_shifts, run_pipeline, vicissitude_score};
use atlarge_exp::registry::{run_replicated, CellOutput, CellScenario, ParamSpec};
use atlarge_exp::seed::split_labeled;
use atlarge_exp::{Campaign, CampaignResult, CancelToken, Scenario};
use atlarge_stats::descriptive::Summary;
use atlarge_telemetry::tracer::Tracer;
use std::collections::BTreeMap;

/// One reproduced row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Citation tag and year, as printed in the table.
    pub study: &'static str,
    /// The study's feature column.
    pub feature: &'static str,
    /// The instrument column.
    pub instrument: &'static str,
    /// The key quantitative finding of the reproduction.
    pub finding: String,
    /// Whether the paper's qualitative claim held in the reproduction.
    pub claim_holds: bool,
}

// [61] ('05) Aliased media — Analytics.
fn row_aliased_media(seed: u64) -> Table5Row {
    let eco = Ecosystem::generate(EcosystemConfig::default(), seed);
    let alias = alias_analysis(&eco);
    Table5Row {
        study: "[61] ('05)",
        feature: "Aliased media",
        instrument: "Analytics",
        finding: format!(
            "{} aliased contents, {:.1} formats each, catalog inflated {:.2}x",
            alias.aliased_contents, alias.mean_aliases, alias.inflation
        ),
        claim_holds: alias.aliased_contents > 0 && alias.inflation > 1.1,
    }
}

// [62] ('06) Ecosystem-Internet — MultiProbe: upload/download asymmetry
// limits standalone downloads. Both swarms share the cell seed (paired).
fn row_internet_asymmetry(seed: u64) -> Table5Row {
    let joins: Vec<f64> = (0..30).map(|i| i as f64 * 20.0).collect();
    let adsl_run = run_swarm(
        SwarmConfig {
            file_size: 50e6,
            bandwidth: Bandwidth::adsl(64e3, 8.0),
            ..SwarmConfig::default()
        },
        &joins,
        400_000.0,
        seed,
    );
    let sym_run = run_swarm(
        SwarmConfig {
            file_size: 50e6,
            bandwidth: Bandwidth::symmetric(64e3 * 4.5), // same total capacity
            ..SwarmConfig::default()
        },
        &joins,
        400_000.0,
        seed,
    );
    Table5Row {
        study: "[62] ('06)",
        feature: "Ecosystem-Internet",
        instrument: "MultiProbe",
        finding: format!(
            "ADSL swarm mean download {:.0}s vs symmetric {:.0}s",
            adsl_run.mean_download_time(),
            sym_run.mean_download_time()
        ),
        claim_holds: adsl_run.mean_download_time() > sym_run.mean_download_time(),
    }
}

// [63] ('10) Global ecosystem — BTWorld: giant swarms + spam trackers.
fn row_global_ecosystem(seed: u64) -> Table5Row {
    let eco = Ecosystem::generate(EcosystemConfig::default(), seed);
    let giants = eco.giant_swarms(3);
    let spam = detect_spam_trackers(&eco, 0.1);
    Table5Row {
        study: "[63] ('10)",
        feature: "Global ecosystem",
        instrument: "BTWorld",
        finding: format!(
            "largest swarm {} peers; {} spam trackers flagged",
            giants[0],
            spam.len()
        ),
        claim_holds: giants[0] > 50_000 && !spam.is_empty(),
    }
}

// [64] ('10) P2P Trace Archive — covered by atlarge-workload's FAIR
// trace format; checked structurally here.
fn row_trace_archive(_seed: u64) -> Table5Row {
    Table5Row {
        study: "[64] ('10)",
        feature: "P2P Trace Archive",
        instrument: "Analytics",
        finding: "FOAD trace format round-trips with FAIR metadata".to_string(),
        claim_holds: {
            use atlarge_workload::job::{Job, JobId, Task};
            use atlarge_workload::trace::{JobTrace, TraceMeta};
            let t = JobTrace::new(
                TraceMeta {
                    name: "p2pta".into(),
                    source: "swarm-sim".into(),
                    license: "CC-BY-4.0".into(),
                    description: "table5 check".into(),
                },
                vec![Job::new(JobId(1), 0.0, vec![Task::new(1.0, 1)])],
            );
            JobTrace::from_archive_string(&t.to_archive_string()).as_ref() == Ok(&t)
        },
    }
}

// [65] ('10) Bias — instrument coverage vs estimation error. The truth,
// the ablation, and the two instrument probes draw from labeled
// sub-streams of the cell seed.
fn row_instrument_bias(seed: u64) -> Table5Row {
    let truth = GroundTruth::generate(5_000, 40, split_labeled(seed, "ground-truth"));
    let ablation = coverage_ablation(&truth, split_labeled(seed, "ablation"));
    let probe_seed = split_labeled(seed, "probe");
    let wide = Instrument::wide().bias(&truth, probe_seed);
    let narrow = Instrument::narrow().bias(&truth, probe_seed);
    Table5Row {
        study: "[65] ('10)",
        feature: "Bias",
        instrument: "Analytics",
        finding: format!(
            "bias at 10% coverage {:.3} vs 95% {:.3}; wide {:.3} narrow {:.3}",
            ablation.first().expect("rows").1,
            ablation.last().expect("rows").1,
            wide,
            narrow
        ),
        claim_holds: ablation.first().expect("rows").1 > ablation.last().expect("rows").1,
    }
}

// [66] ('11) Flashcrowds — detection + negative phenomena.
fn row_flashcrowd(seed: u64) -> Table5Row {
    let fc = flashcrowd::study(seed);
    Table5Row {
        study: "[66] ('11)",
        feature: "Flashcrowds",
        instrument: "Analytics",
        finding: format!(
            "{} windows detected; download-time inflation {:.2}x",
            fc.detected.len(),
            fc.inflation()
        ),
        claim_holds: !fc.detected.is_empty() && fc.inflation() > 1.2,
    }
}

// [67] ('13) + [38] ('14) Vicissitude — big-data pipeline bottlenecks.
fn row_vicissitude(seed: u64) -> Table5Row {
    let pipeline = run_pipeline(500, seed);
    let score = vicissitude_score(&pipeline);
    Table5Row {
        study: "[38] ('14)",
        feature: "Vicissitude",
        instrument: "BTWorld",
        finding: format!(
            "bottleneck entropy {:.2}; {} shifts over 500 chunks",
            score,
            bottleneck_shifts(&pipeline)
        ),
        claim_holds: score > 0.4,
    }
}

// [68] ('06) 2fast — collaborative downloads beat standalone.
fn row_2fast(_seed: u64) -> Table5Row {
    let curve = speedup_curve(64e3, 8.0, 8);
    let s4 = curve[4].1;
    Table5Row {
        study: "[68] ('06)",
        feature: "Collaborative",
        instrument: "2fast",
        finding: format!("speedup with 4 helpers: {s4:.2}x"),
        claim_holds: s4 > 2.0,
    }
}

// [69] ('07) Tribler/social — the group mechanism generalizes: bigger
// social groups help until the download link saturates.
fn row_social(_seed: u64) -> Table5Row {
    let curve = speedup_curve(64e3, 8.0, 8);
    let s4 = curve[4].1;
    let big = curve.last().expect("curve").1;
    Table5Row {
        study: "[69] ('07)",
        feature: "Social",
        instrument: "Tribler",
        finding: format!("speedup saturates at {big:.2}x (download-link cap)"),
        claim_holds: big >= s4 && big <= 8.5,
    }
}

/// A per-row study function: derives one [`Table5Row`] from a cell seed.
type StudyFn = fn(u64) -> Table5Row;

/// The declared studies of Table 5: `(grid level, row function)`.
const STUDIES: &[(&str, StudyFn)] = &[
    ("aliased-media", row_aliased_media),
    ("internet-asymmetry", row_internet_asymmetry),
    ("global-ecosystem", row_global_ecosystem),
    ("trace-archive", row_trace_archive),
    ("instrument-bias", row_instrument_bias),
    ("flashcrowd", row_flashcrowd),
    ("vicissitude", row_vicissitude),
    ("2fast", row_2fast),
    ("social", row_social),
];

/// One study cell's config: which row function to run.
#[derive(Debug, Clone, Copy)]
pub struct Table5Study {
    /// Grid-level name of the study.
    pub name: &'static str,
    run: StudyFn,
}

/// The Table 5 scenario: each run reproduces one study.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table5Scenario;

impl Scenario for Table5Scenario {
    type Config = Table5Study;
    type Outcome = Table5Row;

    fn run(&self, config: &Table5Study, seed: u64, _tracer: &dyn Tracer) -> Table5Row {
        (config.run)(seed)
    }
}

/// Runs Table 5 as a declared campaign: a `study` factor with one level
/// per row, `replications` runs per cell, all seeds derived from `seed`.
pub fn table5_campaign(seed: u64, replications: usize) -> CampaignResult<Table5Study, Table5Row> {
    Campaign::new("p2p.table5", Table5Scenario)
        .factor("study", STUDIES.iter().map(|(name, _)| *name))
        .replications(replications)
        .root_seed(seed)
        .run(|cell| {
            let (name, run) = STUDIES
                .iter()
                .find(|(name, _)| *name == cell.level("study"))
                .expect("grid levels come from STUDIES");
            Table5Study { name, run: *run }
        })
}

/// Runs every row of Table 5 once (the single-replication view of
/// [`table5_campaign`]).
pub fn table5(seed: u64) -> Vec<Table5Row> {
    table5_campaign(seed, 1)
        .first_outcomes()
        .into_iter()
        .cloned()
        .collect()
}

/// Renders Table 5 as text.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = format!(
        "{:<12}{:<22}{:<12}{:<6} {}\n",
        "Study", "Feature", "Instrument", "OK", "Finding"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:<22}{:<12}{:<6} {}\n",
            r.study,
            r.feature,
            r.instrument,
            if r.claim_holds { "yes" } else { "NO" },
            r.finding
        ));
    }
    out
}

/// Renders a replicated campaign: the first replication's findings plus
/// the claim-holds rate across replications per row.
pub fn render_table5_campaign(result: &CampaignResult<Table5Study, Table5Row>) -> String {
    let mut out = format!(
        "{:<12}{:<22}{:<12}{:<8} {}\n",
        "Study", "Feature", "Instrument", "OK", "Finding (first replication)"
    );
    for cell in &result.cells {
        let r = cell.first();
        let rate = cell
            .summarize(|row| f64::from(u8::from(row.claim_holds)))
            .mean();
        out.push_str(&format!(
            "{:<12}{:<22}{:<12}{:<8} {}\n",
            r.study,
            r.feature,
            r.instrument,
            format!("{:.0}/{}", rate * cell.runs.len() as f64, cell.runs.len()),
            r.finding
        ));
    }
    out
}

/// Table 5 as a servable exploration cell: a query names one study and
/// gets the replicated claim-holds rate plus the row's printed columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table5Cell;

impl CellScenario for Table5Cell {
    fn domain(&self) -> &str {
        "p2p"
    }

    fn describe(&self) -> &str {
        "Table 5 peer-to-peer study reproductions, one study row per cell"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let names: Vec<&str> = STUDIES.iter().map(|(name, _)| *name).collect();
        vec![ParamSpec::choice(
            "study",
            "which Table 5 study row to reproduce",
            &names,
        )]
    }

    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        let chosen = params.get("study").expect("validated params").as_str();
        let (name, run) = STUDIES
            .iter()
            .find(|(name, _)| *name == chosen)
            .expect("choice validation admits only STUDIES levels");
        let rows = run_replicated(
            &Table5Scenario,
            &Table5Study { name, run: *run },
            seed,
            replications,
            cancel,
            tracer,
        )?;
        let first = &rows[0];
        Ok(CellOutput {
            metrics: vec![(
                "claim_holds".to_string(),
                Summary::from_iter(rows.iter().map(|r| f64::from(u8::from(r.claim_holds)))),
            )],
            notes: vec![
                ("study".to_string(), first.study.to_string()),
                ("feature".to_string(), first.feature.to_string()),
                ("instrument".to_string(), first.instrument.to_string()),
                ("finding".to_string(), first.finding.clone()),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table5_claim_holds() {
        for row in table5(11) {
            assert!(
                row.claim_holds,
                "{} {}: claim failed — {}",
                row.study, row.feature, row.finding
            );
        }
    }

    #[test]
    fn table_has_all_study_rows() {
        let rows = table5(11);
        assert_eq!(rows.len(), 9);
        let s = render_table5(&rows);
        for tag in [
            "[61]", "[62]", "[63]", "[64]", "[65]", "[66]", "[38]", "[68]", "[69]",
        ] {
            assert!(s.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn sub_studies_use_distinct_seeds() {
        let r = table5_campaign(11, 1);
        let seeds: std::collections::BTreeSet<u64> = r
            .cells
            .iter()
            .flat_map(|c| c.runs.iter().map(|run| run.seed))
            .collect();
        assert_eq!(seeds.len(), 9, "each sub-study must get its own stream");
    }

    #[test]
    fn replicated_campaign_claims_hold_across_seeds() {
        let r = table5_campaign(11, 3);
        for cell in &r.cells {
            for run in &cell.runs {
                assert!(
                    run.outcome.claim_holds,
                    "{} (seed {}): {}",
                    run.outcome.study, run.seed, run.outcome.finding
                );
            }
        }
        let rendered = render_table5_campaign(&r);
        assert!(rendered.contains("3/3"), "{rendered}");
    }

    #[test]
    fn serve_cell_validates_and_runs_deterministically() {
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(Table5Cell));
        let raw = BTreeMap::from([("study".to_string(), "flashcrowd".to_string())]);
        let params = reg.validate("p2p", &raw).expect("valid query");

        let tracer = atlarge_telemetry::NullTracer;
        let cell = Table5Cell;
        let run = || {
            cell.run_cell(&params, 11, 2, &CancelToken::new(), &tracer)
                .expect("runs clean")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.notes, b.notes, "repeat queries must agree");
        assert_eq!(
            a.metrics[0].1.mean(),
            b.metrics[0].1.mean(),
            "claim rate must be deterministic"
        );
        assert_eq!(a.metrics[0].1.len(), 2);
        assert!(a.notes.iter().any(|(k, _)| k == "finding"));
    }

    #[test]
    fn serve_cell_default_is_first_study_and_bad_choice_rejected() {
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(Table5Cell));
        let defaults = reg
            .validate("p2p", &BTreeMap::new())
            .expect("defaults fill");
        assert_eq!(defaults["study"], "aliased-media");
        let raw = BTreeMap::from([("study".to_string(), "nonesuch".to_string())]);
        let err = reg.validate("p2p", &raw).unwrap_err();
        assert!(err.contains("not one of"), "{err}");
    }

    #[test]
    fn serve_cell_matches_single_study_campaign_seeds() {
        // The servable cell must reproduce the exact outcome stream a
        // declared single-cell campaign yields for the same root seed.
        let (name, run) = STUDIES[5];
        assert_eq!(name, "flashcrowd");
        let direct = Campaign::new("p2p.one", Table5Scenario)
            .replications(3)
            .root_seed(77)
            .run(|_| Table5Study { name, run });
        let tracer = atlarge_telemetry::NullTracer;
        let params = BTreeMap::from([("study".to_string(), "flashcrowd".to_string())]);
        let out = Table5Cell
            .run_cell(&params, 77, 3, &CancelToken::new(), &tracer)
            .expect("runs clean");
        let campaign_rate = direct.cells[0]
            .summarize(|r| f64::from(u8::from(r.claim_holds)))
            .mean();
        assert_eq!(out.metrics[0].1.mean(), campaign_rate);
        assert_eq!(
            out.notes.iter().find(|(k, _)| k == "finding").unwrap().1,
            direct.cells[0].first().finding
        );
    }
}
