//! Correlation and simple regression.
//!
//! The trend analyses behind Figures 1–2 (is the presence of design articles
//! increasing?) and the predictive components of the portfolio scheduler use
//! ordinary least squares and rank correlation from this module.

/// Result of an ordinary-least-squares fit `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination (R²).
    pub r_squared: f64,
}

impl LinearFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y = a*x + b` by ordinary least squares.
///
/// Returns `None` when fewer than two points are given or all `x` are equal
/// (the slope is then undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Pearson product-moment correlation coefficient.
///
/// Returns `None` if either series has zero variance or fewer than two
/// points.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson on fractional ranks).
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    pearson(&rx, &ry)
}

/// Fractional (mid) ranks: ties receive the average of their positions.
///
/// Ranks are 1-based, matching the convention in rank-correlation formulas.
pub fn fractional_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovered() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_positive_slope() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + ((x * 7.0).sin())).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.slope > 2.5 && fit.slope < 3.5);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_x_yields_none() {
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn pearson_signs() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[5.0; 4]).is_none());
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone but nonlinear relation: Spearman 1, Pearson < 1.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn fractional_ranks_average_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }
}
