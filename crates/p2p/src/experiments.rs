//! The Table 5 reproduction: one runnable check per study row.

use crate::ecosystem::{alias_analysis, detect_spam_trackers, Ecosystem, EcosystemConfig};
use crate::flashcrowd;
use crate::measurement::{coverage_ablation, GroundTruth, Instrument};
use crate::swarm::{run_swarm, Bandwidth, SwarmConfig};
use crate::twofast::speedup_curve;
use crate::vicissitude::{bottleneck_shifts, run_pipeline, vicissitude_score};

/// One reproduced row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Citation tag and year, as printed in the table.
    pub study: &'static str,
    /// The study's feature column.
    pub feature: &'static str,
    /// The instrument column.
    pub instrument: &'static str,
    /// The key quantitative finding of the reproduction.
    pub finding: String,
    /// Whether the paper's qualitative claim held in the reproduction.
    pub claim_holds: bool,
}

/// Runs every row of Table 5. Each row re-derives the study's key claim
/// from a simulation or generated ecosystem.
pub fn table5(seed: u64) -> Vec<Table5Row> {
    let mut rows = Vec::new();

    // [61] ('05) Aliased media — Analytics.
    let eco = Ecosystem::generate(EcosystemConfig::default(), seed);
    let alias = alias_analysis(&eco);
    rows.push(Table5Row {
        study: "[61] ('05)",
        feature: "Aliased media",
        instrument: "Analytics",
        finding: format!(
            "{} aliased contents, {:.1} formats each, catalog inflated {:.2}x",
            alias.aliased_contents, alias.mean_aliases, alias.inflation
        ),
        claim_holds: alias.aliased_contents > 0 && alias.inflation > 1.1,
    });

    // [62] ('06) Ecosystem-Internet — MultiProbe: upload/download
    // asymmetry limits standalone downloads.
    let asym = Bandwidth::adsl(64e3, 8.0);
    let joins: Vec<f64> = (0..30).map(|i| i as f64 * 20.0).collect();
    let adsl_run = run_swarm(
        SwarmConfig {
            file_size: 50e6,
            bandwidth: asym,
            ..SwarmConfig::default()
        },
        &joins,
        400_000.0,
        seed,
    );
    let sym_run = run_swarm(
        SwarmConfig {
            file_size: 50e6,
            bandwidth: Bandwidth::symmetric(64e3 * 4.5), // same total capacity
            ..SwarmConfig::default()
        },
        &joins,
        400_000.0,
        seed,
    );
    rows.push(Table5Row {
        study: "[62] ('06)",
        feature: "Ecosystem-Internet",
        instrument: "MultiProbe",
        finding: format!(
            "ADSL swarm mean download {:.0}s vs symmetric {:.0}s",
            adsl_run.mean_download_time(),
            sym_run.mean_download_time()
        ),
        claim_holds: adsl_run.mean_download_time() > sym_run.mean_download_time(),
    });

    // [63] ('10) Global ecosystem — BTWorld: giant swarms + spam trackers.
    let giants = eco.giant_swarms(3);
    let spam = detect_spam_trackers(&eco, 0.1);
    rows.push(Table5Row {
        study: "[63] ('10)",
        feature: "Global ecosystem",
        instrument: "BTWorld",
        finding: format!(
            "largest swarm {} peers; {} spam trackers flagged",
            giants[0],
            spam.len()
        ),
        claim_holds: giants[0] > 50_000 && !spam.is_empty(),
    });

    // [64] ('10) P2P Trace Archive — covered by atlarge-workload's FAIR
    // trace format; checked structurally here.
    rows.push(Table5Row {
        study: "[64] ('10)",
        feature: "P2P Trace Archive",
        instrument: "Analytics",
        finding: "FOAD trace format round-trips with FAIR metadata".to_string(),
        claim_holds: {
            use atlarge_workload::job::{Job, JobId, Task};
            use atlarge_workload::trace::{JobTrace, TraceMeta};
            let t = JobTrace::new(
                TraceMeta {
                    name: "p2pta".into(),
                    source: "swarm-sim".into(),
                    license: "CC-BY-4.0".into(),
                    description: "table5 check".into(),
                },
                vec![Job::new(JobId(1), 0.0, vec![Task::new(1.0, 1)])],
            );
            JobTrace::from_archive_string(&t.to_archive_string()).as_ref() == Ok(&t)
        },
    });

    // [65] ('10) Bias — instrument coverage vs estimation error.
    let truth = GroundTruth::generate(5_000, 40, seed);
    let ablation = coverage_ablation(&truth, seed);
    let wide = Instrument::wide().bias(&truth, seed);
    let narrow = Instrument::narrow().bias(&truth, seed);
    rows.push(Table5Row {
        study: "[65] ('10)",
        feature: "Bias",
        instrument: "Analytics",
        finding: format!(
            "bias at 10% coverage {:.3} vs 95% {:.3}; wide {:.3} narrow {:.3}",
            ablation.first().expect("rows").1,
            ablation.last().expect("rows").1,
            wide,
            narrow
        ),
        claim_holds: ablation.first().expect("rows").1 > ablation.last().expect("rows").1,
    });

    // [66] ('11) Flashcrowds — detection + negative phenomena.
    let fc = flashcrowd::study(seed);
    rows.push(Table5Row {
        study: "[66] ('11)",
        feature: "Flashcrowds",
        instrument: "Analytics",
        finding: format!(
            "{} windows detected; download-time inflation {:.2}x",
            fc.detected.len(),
            fc.inflation()
        ),
        claim_holds: !fc.detected.is_empty() && fc.inflation() > 1.2,
    });

    // [67] ('13) + [38] ('14) Vicissitude — big-data pipeline bottlenecks.
    let pipeline = run_pipeline(500, seed);
    let score = vicissitude_score(&pipeline);
    rows.push(Table5Row {
        study: "[38] ('14)",
        feature: "Vicissitude",
        instrument: "BTWorld",
        finding: format!(
            "bottleneck entropy {:.2}; {} shifts over 500 chunks",
            score,
            bottleneck_shifts(&pipeline)
        ),
        claim_holds: score > 0.4,
    });

    // [68] ('06) 2fast — collaborative downloads beat standalone.
    let curve = speedup_curve(64e3, 8.0, 8);
    let s4 = curve[4].1;
    rows.push(Table5Row {
        study: "[68] ('06)",
        feature: "Collaborative",
        instrument: "2fast",
        finding: format!("speedup with 4 helpers: {s4:.2}x"),
        claim_holds: s4 > 2.0,
    });

    // [69] ('07) Tribler/social — the group mechanism generalizes: bigger
    // social groups help until the download link saturates.
    let big = curve.last().expect("curve").1;
    rows.push(Table5Row {
        study: "[69] ('07)",
        feature: "Social",
        instrument: "Tribler",
        finding: format!("speedup saturates at {big:.2}x (download-link cap)"),
        claim_holds: big >= s4 && big <= 8.5,
    });

    rows
}

/// Renders Table 5 as text.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let mut out = format!(
        "{:<12}{:<22}{:<12}{:<6} {}\n",
        "Study", "Feature", "Instrument", "OK", "Finding"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:<22}{:<12}{:<6} {}\n",
            r.study,
            r.feature,
            r.instrument,
            if r.claim_holds { "yes" } else { "NO" },
            r.finding
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table5_claim_holds() {
        for row in table5(11) {
            assert!(
                row.claim_holds,
                "{} {}: claim failed — {}",
                row.study, row.feature, row.finding
            );
        }
    }

    #[test]
    fn table_has_all_study_rows() {
        let rows = table5(11);
        assert_eq!(rows.len(), 9);
        let s = render_table5(&rows);
        for tag in [
            "[61]", "[62]", "[63]", "[64]", "[65]", "[66]", "[38]", "[68]", "[69]",
        ] {
            assert!(s.contains(tag), "missing {tag}");
        }
    }
}
