//! Structural lints: rules that need the [`crate::parser`] tree, not
//! just token runs.
//!
//! Three rules live here, each protecting an invariant the
//! token-sequence catalogue cannot see:
//!
//! - **`capsule-field-coverage`** — for every `impl Evolvable`, the set
//!   of capsule field names written in `capture()` must equal the set
//!   read back in `resume()`. Drift in either direction makes a live
//!   policy swap lose state (write-only field) or fail at handoff
//!   (read-only field) — and both compile fine.
//! - **`seed-stream-aliasing`** — two `split_labeled` calls in one
//!   function sharing a string label derive the *same* seed: two
//!   "independent" sub-studies silently correlated (the exact bug the
//!   campaign engine's PR fixed by hand in the p2p table-5 studies).
//! - **`layer-boundary`** — `lint.toml`-declared dependency contracts
//!   ([`LayerContract`]) enforced over the parsed `use` graph and
//!   inline qualified paths: e.g. domain crates must not name the DES
//!   kernel's sealed `fel`/`calendar` internals, and only the telemetry
//!   crate may import wall-clock types.

use crate::config::LayerContract;
use crate::lexer::{Tok, TokKind};
use crate::lints::Finding;
use crate::parser::{path_has_seg_prefix, Ast};
use std::collections::BTreeMap;

/// Capsule builder methods that write a named field in `capture()`.
const CAPSULE_WRITERS: &[&str] = &["with", "with_u32", "with_u64", "with_f64", "with_str"];
/// Generic writers (`push`/`set`) that also name fields when the first
/// argument is a string literal — but are too common to treat a
/// non-literal first argument as evidence of dynamic field names.
const GENERIC_WRITERS: &[&str] = &["push", "set"];
/// Typed getters that read a named field in `resume()`.
const CAPSULE_READERS: &[&str] = &[
    "u32_field",
    "u64_field",
    "f64_field",
    "str_field",
    "f64s_field",
    "f64_table_field",
    "named_f64s_field",
];

/// Runs the structural lints over one parsed file. `check` is the same
/// applicability closure the token lints use (scope/exempt paths and
/// the test-region mask, keyed by token index); `rel_path` additionally
/// drives per-contract scope matching for `layer-boundary`.
pub fn run(
    ast: &Ast,
    toks: &[Tok],
    rel_path: &str,
    layers: &[LayerContract],
    check: impl Fn(&'static str, usize) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    capsule_field_coverage(ast, toks, &check, &mut out);
    seed_stream_aliasing(ast, toks, &check, &mut out);
    layer_boundary(ast, rel_path, layers, &check, &mut out);
    out
}

/// One named-field access found in a fn body: `(line, tok_idx)` of the
/// call, keyed by field name; `dynamic` records a capsule call whose
/// field name is not a string literal (coverage is then unverifiable).
#[derive(Debug, Default)]
struct FieldAccesses {
    fields: BTreeMap<String, (u32, usize)>,
    dynamic: bool,
}

/// Collects `.method("name", …)` calls in `toks[span]` for the given
/// method-name sets.
fn field_calls(
    toks: &[Tok],
    span: (usize, usize),
    strict_methods: &[&str],
    lenient_methods: &[&str],
) -> FieldAccesses {
    let mut acc = FieldAccesses::default();
    let (open, close) = span;
    let mut i = open;
    while i + 2 <= close {
        let is_call = toks[i].kind == TokKind::Punct
            && toks[i].text == "."
            && toks[i + 1].kind == TokKind::Ident
            && i + 2 <= close
            && toks[i + 2].kind == TokKind::Punct
            && toks[i + 2].text == "(";
        if is_call {
            let name = toks[i + 1].text.as_str();
            let strict = strict_methods.contains(&name);
            if strict || lenient_methods.contains(&name) {
                let arg = toks.get(i + 3);
                match arg.and_then(|t| t.str_content()) {
                    Some(field) => {
                        acc.fields
                            .entry(field.to_string())
                            .or_insert((toks[i + 1].line, i + 1));
                    }
                    // A capsule-specific method with a computed field
                    // name: the name set is not statically knowable.
                    None if strict => acc.dynamic = true,
                    None => {}
                }
                i += 3;
                continue;
            }
        }
        i += 1;
    }
    acc
}

fn capsule_field_coverage(
    ast: &Ast,
    toks: &[Tok],
    check: &impl Fn(&'static str, usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for imp in &ast.impls {
        let is_evolvable = imp
            .trait_path
            .as_deref()
            .is_some_and(|p| crate::parser::last_segment(p) == "Evolvable");
        if !is_evolvable {
            continue;
        }
        let body_of = |fn_name: &str| {
            imp.fns
                .iter()
                .map(|&fi| &ast.fns[fi])
                .find(|f| f.name == fn_name)
                .and_then(|f| f.body)
        };
        let (Some(cap_span), Some(res_span)) = (body_of("capture"), body_of("resume")) else {
            continue;
        };
        let written = field_calls(toks, cap_span, CAPSULE_WRITERS, GENERIC_WRITERS);
        let read = field_calls(toks, res_span, CAPSULE_READERS, &[]);
        if written.dynamic || read.dynamic {
            // Computed field names: coverage cannot be proven or
            // refuted statically; stay silent rather than guess.
            continue;
        }
        for (field, &(line, tok_idx)) in &written.fields {
            if !read.fields.contains_key(field) && check("capsule-field-coverage", tok_idx) {
                out.push(Finding {
                    lint: "capsule-field-coverage",
                    line,
                    message: format!(
                        "capsule field `{field}` is written in `{}::capture` but never read in `resume`; a live swap would silently drop that state",
                        imp.self_ty
                    ),
                    suggestion: "read the field back with its typed getter in resume(), or stop capturing it".into(),
                });
            }
        }
        for (field, &(line, tok_idx)) in &read.fields {
            if !written.fields.contains_key(field) && check("capsule-field-coverage", tok_idx) {
                out.push(Finding {
                    lint: "capsule-field-coverage",
                    line,
                    message: format!(
                        "capsule field `{field}` is read in `{}::resume` but never written in `capture`; every handoff would fail with MissingField",
                        imp.self_ty
                    ),
                    suggestion: "push the field in capture(), or delete the stale getter".into(),
                });
            }
        }
    }
}

fn seed_stream_aliasing(
    ast: &Ast,
    toks: &[Tok],
    check: &impl Fn(&'static str, usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for f in &ast.fns {
        let Some((open, close)) = f.body else {
            continue;
        };
        // Nested fns are their own scope; their spans are scanned in
        // their own iteration, so skip them here.
        let nested: Vec<(usize, usize)> = ast
            .fns
            .iter()
            .filter_map(|g| g.body)
            .filter(|&(o, c)| o > open && c < close)
            .collect();
        let mut labels: BTreeMap<String, u32> = BTreeMap::new();
        let mut i = open;
        while i < close {
            if let Some(&(_, nc)) = nested.iter().find(|&&(no, nc)| i >= no && i <= nc) {
                i = nc + 1;
                continue;
            }
            let is_call = toks[i].kind == TokKind::Ident
                && toks[i].text == "split_labeled"
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct && t.text == "(")
                // Skip the definition itself (`fn split_labeled(...)`).
                && !(i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "fn");
            if !is_call {
                i += 1;
                continue;
            }
            // String literals at the top level of this call's argument
            // list are stream labels.
            let args_open = i + 1;
            let mut depth = 0i32;
            let mut j = args_open;
            while j <= close {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if depth == 1 && t.kind == TokKind::Literal {
                    if let Some(label) = t.str_content() {
                        match labels.get(label) {
                            Some(&first) if check("seed-stream-aliasing", j) => {
                                out.push(Finding {
                                    lint: "seed-stream-aliasing",
                                    line: t.line,
                                    message: format!(
                                        "seed-stream label \"{label}\" is reused within `{}` (first used on line {first}); the two derived streams are byte-identical, so the sub-studies are correlated",
                                        f.name
                                    ),
                                    suggestion: "give every derived sub-stream a distinct label, or hoist the shared stream into one variable".into(),
                                });
                            }
                            Some(_) => {}
                            None => {
                                labels.insert(label.to_string(), t.line);
                            }
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
        }
    }
}

fn layer_boundary(
    ast: &Ast,
    rel_path: &str,
    layers: &[LayerContract],
    check: &impl Fn(&'static str, usize) -> bool,
    out: &mut Vec<Finding>,
) {
    for contract in layers {
        if !contract.applies_to(rel_path) {
            continue;
        }
        let refs = ast
            .uses
            .iter()
            .map(|u| (u.path.as_str(), u.line, u.tok_idx))
            .chain(
                ast.paths
                    .iter()
                    .map(|p| (p.path.as_str(), p.line, p.tok_idx)),
            );
        for (path, line, tok_idx) in refs {
            let hit = contract
                .forbid
                .iter()
                .any(|f| path_has_seg_prefix(path, f) || path == format!("{f}::*").as_str());
            if hit && check("layer-boundary", tok_idx) {
                out.push(Finding {
                    lint: "layer-boundary",
                    line,
                    message: format!(
                        "`{path}` crosses the `{}` layer boundary: {}",
                        contract.name, contract.note
                    ),
                    suggestion: format!(
                        "reach through the sanctioned API instead; the contract is declared as [layer.{}] in lint.toml",
                        contract.name
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser;

    fn findings(src: &str, rel_path: &str, layers: &[LayerContract]) -> Vec<Finding> {
        let lexed = lex(src);
        let ast = parser::parse(&lexed.tokens);
        run(&ast, &lexed.tokens, rel_path, layers, |_, _| true)
    }

    fn no_layers() -> Vec<LayerContract> {
        vec![]
    }

    #[test]
    fn capsule_drift_fires_both_directions() {
        let src = r#"
impl Evolvable for Drifty {
    fn capsule_kind(&self) -> &'static str { "t.drifty" }
    fn capture(&self, _now: f64) -> Capsule {
        Capsule::new(self.capsule_kind(), 1)
            .with_f64("kept", self.kept)
            .with_u64("dropped", self.dropped)
    }
    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        capsule.expect_kind(self.capsule_kind())?;
        self.kept = capsule.f64_field("kept")?;
        self.ghost = capsule.u32_field("ghost")?;
        Ok(())
    }
}
"#;
        let f = findings(src, "crates/x/src/lib.rs", &no_layers());
        let msgs: Vec<&str> = f.iter().map(|f| f.lint).collect();
        assert_eq!(
            msgs,
            vec!["capsule-field-coverage", "capsule-field-coverage"]
        );
        assert!(f[0].message.contains("`dropped`") || f[1].message.contains("`dropped`"));
        assert!(f.iter().any(|f| f.message.contains("`ghost`")));
    }

    #[test]
    fn symmetric_capsules_and_push_set_are_clean() {
        let src = r#"
impl atlarge_evolve::Evolvable for Ok1 {
    fn capture(&self, _now: f64) -> Capsule {
        let mut c = Capsule::new("k", 1);
        c.push("a", Value::U32(self.a));
        c.set("b", Value::F64(self.b));
        let mut scratch = Vec::new();
        scratch.push(self.a);
        c
    }
    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        self.a = capsule.u32_field("a")?;
        self.b = capsule.f64_field("b")?;
        Ok(())
    }
}
"#;
        assert!(findings(src, "crates/x/src/lib.rs", &no_layers()).is_empty());
    }

    #[test]
    fn dynamic_field_names_silence_the_coverage_check() {
        let src = r#"
impl Evolvable for Dyn {
    fn capture(&self, _now: f64) -> Capsule {
        Capsule::new("k", 1).with_u64(self.field_name(), 1).with_u64("lit", 2)
    }
    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        Ok(())
    }
}
"#;
        assert!(findings(src, "crates/x/src/lib.rs", &no_layers()).is_empty());
    }

    #[test]
    fn non_evolvable_impls_are_ignored() {
        let src = r#"
impl Builder for NotACapsule {
    fn capture(&self, _now: f64) -> Capsule {
        Capsule::new("k", 1).with_u64("only-written", 1)
    }
    fn resume(&mut self, _c: &Capsule, _now: f64) -> Result<(), CapsuleError> { Ok(()) }
}
"#;
        assert!(findings(src, "crates/x/src/lib.rs", &no_layers()).is_empty());
    }

    #[test]
    fn aliased_seed_labels_fire_per_function() {
        let src = r#"
fn correlated(seed: u64) {
    let a = split_labeled(seed, "ecosystem");
    let b = split_labeled(seed, "ecosystem");
}
fn fine(seed: u64) {
    let a = split_labeled(seed, "ecosystem");
    let b = split_labeled(seed, "flashcrowd");
}
fn also_fine(seed: u64) {
    // Re-using a label in a *different* function is a different scope.
    let a = split_labeled(seed, "ecosystem");
}
"#;
        let f = findings(src, "crates/x/src/lib.rs", &no_layers());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "seed-stream-aliasing");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("line 3"));
    }

    #[test]
    fn split_labeled_definition_does_not_fire() {
        let src = "pub fn split_labeled(root: u64, label: &str) -> u64 { root }";
        assert!(findings(src, "crates/exp/src/seed.rs", &no_layers()).is_empty());
    }

    #[test]
    fn layer_contracts_fire_on_uses_and_inline_paths() {
        let layers = vec![LayerContract {
            name: "sealed-fel".into(),
            scope: vec![],
            exempt: vec!["crates/des".into()],
            forbid: vec!["atlarge_des::fel".into()],
            note: "the FEL is sealed behind EventQueue".into(),
        }];
        let src = "use atlarge_des::fel::FutureEventList;\nfn f() { let q = atlarge_des::fel::BinaryHeapFel::new(); }\nuse atlarge_des::EventQueue;";
        let f = findings(src, "crates/p2p/src/swarm.rs", &layers);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.lint == "layer-boundary"));
        // The exempt crate is free to name its own internals.
        assert!(findings(src, "crates/des/src/queue.rs", &layers).is_empty());
    }
}
