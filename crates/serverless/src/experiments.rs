//! The Table 7 reproduction: one runnable check per study row.

use crate::evolution::{earliest_feasible, timeline};
use crate::platform::{faas_vs_reserved, run_platform, FaasConfig, FunctionSpec};
use crate::refarch::{surveyed_platforms, ServerlessPrinciple};
use crate::storage::{right_size, single_tier, tiers, JobRequirements};
use crate::workflow::{map_reduce_workflow, WorkflowEngine};

/// One reproduced row of Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Citation tag and year.
    pub study: &'static str,
    /// Feature column.
    pub feature: &'static str,
    /// Team column.
    pub team: &'static str,
    /// Quantitative finding.
    pub finding: String,
    /// Whether the study's claim held.
    pub claim_holds: bool,
}

fn demo_function() -> FunctionSpec {
    FunctionSpec {
        name: "handler".into(),
        exec_time: 0.8,
        memory_gb: 0.5,
    }
}

/// Runs every row of Table 7.
pub fn table7(seed: u64) -> Vec<Table7Row> {
    let mut rows = Vec::new();

    // [101] ('17) General — terminology and principles.
    rows.push(Table7Row {
        study: "[101] ('17)",
        feature: "General",
        team: "SPEC RG Cloud",
        finding: format!(
            "{} serverless principles encoded; pay-per-use verified on the platform model",
            ServerlessPrinciple::all().len()
        ),
        claim_holds: {
            // Principle (2): cost tracks execution only, not idle time.
            let sparse: Vec<(f64, usize)> = (0..10).map(|i| (i as f64 * 1_000.0, 0)).collect();
            let dense: Vec<(f64, usize)> = (0..10).map(|i| (i as f64 * 1.0, 0)).collect();
            let cfg = FaasConfig::default();
            let ms = run_platform(vec![demo_function()], cfg, &sparse, seed);
            let md = run_platform(vec![demo_function()], cfg, &dense, seed);
            (ms.gb_seconds - md.gb_seconds).abs() < 1e-9
        },
    });

    // [102] ('18) Performance — the cold-start challenge.
    let cfg_cold = FaasConfig {
        keep_alive: 30.0,
        ..FaasConfig::default()
    };
    let sparse: Vec<(f64, usize)> = (0..50).map(|i| (i as f64 * 120.0, 0)).collect();
    let cold = run_platform(vec![demo_function()], cfg_cold, &sparse, seed);
    let cfg_warm = FaasConfig {
        keep_alive: 600.0,
        ..FaasConfig::default()
    };
    let warm = run_platform(vec![demo_function()], cfg_warm, &sparse, seed);
    rows.push(Table7Row {
        study: "[102] ('18)",
        feature: "Performance",
        team: "SPEC RG Cloud",
        finding: format!(
            "cold fraction {:.0}% (30s keep-alive) vs {:.0}% (600s); p50 {:.2}s vs {:.2}s",
            cold.cold_fraction * 100.0,
            warm.cold_fraction * 100.0,
            cold.latency_summary().median(),
            warm.latency_summary().median()
        ),
        claim_holds: cold.cold_fraction > warm.cold_fraction
            && cold.latency_summary().median() > warm.latency_summary().median(),
    });

    // [60] ('18) Evolution — could not have happened ten years ago.
    let year = earliest_feasible(&timeline(), "faas").unwrap_or(0);
    rows.push(Table7Row {
        study: "[60] ('18)",
        feature: "Evolution",
        team: "SPEC RG Cloud",
        finding: format!("earliest feasible FaaS emergence: {year}"),
        claim_holds: year >= 2015,
    });

    // GitHub ('17-'19) Fission Workflows — the engine keeps overhead low.
    let registry = vec![
        FunctionSpec {
            name: "prepare".into(),
            exec_time: 0.1,
            memory_gb: 0.25,
        },
        FunctionSpec {
            name: "map".into(),
            exec_time: 1.0,
            memory_gb: 0.5,
        },
        FunctionSpec {
            name: "reduce".into(),
            exec_time: 0.3,
            memory_gb: 0.5,
        },
    ];
    let engine = WorkflowEngine::new(registry, FaasConfig::default());
    let wf = map_reduce_workflow(16);
    let run = engine.execute(&wf, seed);
    let cp = engine.critical_path(&wf, seed);
    rows.push(Table7Row {
        study: "GitHub ('17-'19)",
        feature: "Fission WF.",
        team: "Platform9",
        finding: format!(
            "map-reduce workflow: makespan {:.2}s vs critical path {:.2}s ({} invocations)",
            run.makespan, cp, run.invocations
        ),
        claim_holds: run.makespan < cp * 1.1,
    });

    // [103] ('19) Reference architecture — coverage of surveyed platforms.
    let covered = surveyed_platforms()
        .iter()
        .filter(|p| p.missing_core().is_empty())
        .count();
    let total = surveyed_platforms().len();
    rows.push(Table7Row {
        study: "[103] ('19)",
        feature: "Ref. Arch",
        team: "SPEC RG Cloud",
        finding: format!("{covered}/{total} surveyed platforms fully mapped"),
        claim_holds: covered == total,
    });

    // [96]/[104] Pocket — right-sized ephemeral storage (the joining
    // designer's line of work, §6.4's closing).
    let job = JobRequirements {
        throughput: 2_000.0,
        capacity: 3_000.0,
        lifetime_hours: 0.5,
    };
    let sized = right_size(&job);
    let dram = single_tier(tiers()[0], &job);
    rows.push(Table7Row {
        study: "[96] ('18)",
        feature: "Storage",
        team: "Stanford/IBM",
        finding: format!(
            "right-sized cost {:.1} vs DRAM-only {:.1} (both satisfy the job)",
            sized.cost(job.lifetime_hours),
            dram.cost(job.lifetime_hours)
        ),
        claim_holds: sized.satisfies(&job)
            && sized.cost(job.lifetime_hours) < dram.cost(job.lifetime_hours),
    });

    // The FaaS economics headline: serverless wins bursty sparse loads.
    let invs: Vec<(f64, usize)> = (0..720).map(|i| (i as f64 * 120.0, 0)).collect();
    let (faas, reserved, p50) = faas_vs_reserved(&invs, demo_function(), 86_400.0, 0.05, seed);
    rows.push(Table7Row {
        study: "[101] §perf",
        feature: "Economics",
        team: "SPEC RG Cloud",
        finding: format!(
            "sparse workload: faas cost {faas:.3} vs reserved {reserved:.2} (p50 {p50:.2}s)"
        ),
        claim_holds: faas < reserved / 10.0,
    });

    rows
}

/// Renders Table 7 as text.
pub fn render_table7(rows: &[Table7Row]) -> String {
    let mut out = format!(
        "{:<18}{:<14}{:<16}{:<6} {}\n",
        "Study", "Feature", "Team", "OK", "Finding"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18}{:<14}{:<16}{:<6} {}\n",
            r.study,
            r.feature,
            r.team,
            if r.claim_holds { "yes" } else { "NO" },
            r.finding
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table7_claim_holds() {
        for row in table7(19) {
            assert!(
                row.claim_holds,
                "{} {}: claim failed — {}",
                row.study, row.feature, row.finding
            );
        }
    }

    #[test]
    fn table_has_all_rows() {
        let rows = table7(19);
        assert_eq!(rows.len(), 7);
        let s = render_table7(&rows);
        for tag in ["[101]", "[102]", "[60]", "Fission", "[103]", "[96]"] {
            assert!(s.contains(tag), "missing {tag}");
        }
    }
}
