//@ path: crates/exp/src/float_fixture.rs
// ui fixture: merged-result float accumulation must pin its order.

pub fn violate(xs: &[f64]) -> (f64, f64) {
    let total = xs.iter().sum::<f64>();
    let folded = xs.iter().fold(0.0, |a, b| a + b);
    (total, folded)
}

pub fn order_insensitive(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
