//! Server-side request counters, rendered (together with the pulse
//! plane's latency histograms) as the `/stats` JSON document.
//!
//! This module used to own per-domain latency under a mutex; recording
//! now happens lock-free in [`crate::pulse`]'s sharded histograms and
//! this block keeps only the atomic tallies. Wall time enters
//! exclusively through [`atlarge_telemetry::wall::Stopwatch`] readings
//! taken by the server loop; per the workspace contract those readings
//! feed reports and never a simulation result.

use crate::pulse::Pulse;
use atlarge_telemetry::export::{json_f64, json_object, json_str};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of a running server.
#[derive(Default)]
pub struct ServerStats {
    /// `/run` queries answered (any status).
    pub queries: AtomicU64,
    /// `/run` answers served from the result cache.
    pub cache_hits: AtomicU64,
    /// `/run` answers computed cold.
    pub cache_misses: AtomicU64,
    /// Requests refused with `503` by the admission gate.
    pub rejected: AtomicU64,
    /// Requests answered with `4xx`.
    pub client_errors: AtomicU64,
    /// Requests failed with `500`.
    pub server_errors: AtomicU64,
    /// `/trace` streams started.
    pub trace_streams: AtomicU64,
    /// `/watch` streams started.
    pub watch_streams: AtomicU64,
}

impl ServerStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Cache hit rate in `[0, 1]`; zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let total = hits + self.cache_misses.load(Ordering::Relaxed) as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// The `/stats` JSON document. `queue_depth` is sampled by the
    /// caller from the pool at render time; per-domain latency comes
    /// from the pulse plane's histograms.
    pub fn render_json(&self, queue_depth: usize, pulse: &Pulse) -> String {
        let snap = pulse.snapshot(self);
        let rendered: Vec<String> = snap
            .domains
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(domain, h)| {
                let quantile_ms = |q: f64| json_f64(h.quantile_ms(q).unwrap_or(0.0));
                format!(
                    "{}:{}",
                    json_str(domain),
                    json_object(&[
                        ("count", h.count.to_string()),
                        ("p50_ms", quantile_ms(0.5)),
                        ("p99_ms", quantile_ms(0.99)),
                    ])
                )
            })
            .collect();
        let latency = format!("{{{}}}", rendered.join(","));
        json_object(&[
            ("queries", self.queries.load(Ordering::Relaxed).to_string()),
            (
                "cache_hits",
                self.cache_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "cache_misses",
                self.cache_misses.load(Ordering::Relaxed).to_string(),
            ),
            ("hit_rate", json_f64(self.hit_rate())),
            (
                "rejected",
                self.rejected.load(Ordering::Relaxed).to_string(),
            ),
            (
                "client_errors",
                self.client_errors.load(Ordering::Relaxed).to_string(),
            ),
            (
                "server_errors",
                self.server_errors.load(Ordering::Relaxed).to_string(),
            ),
            (
                "trace_streams",
                self.trace_streams.load(Ordering::Relaxed).to_string(),
            ),
            (
                "watch_streams",
                self.watch_streams.load(Ordering::Relaxed).to_string(),
            ),
            ("queue_depth", queue_depth.to_string()),
            ("slo", pulse.slo_status().render_json(pulse.slo_spec())),
            ("latency_ms", latency),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::{Outcome, SloSpec};

    fn pulse() -> Pulse {
        Pulse::new(&["graph", "p2p"], 2, SloSpec::default())
    }

    #[test]
    fn hit_rate_handles_zero_and_mixed_traffic() {
        let stats = ServerStats::new();
        assert_eq!(stats.hit_rate(), 0.0);
        stats.cache_hits.fetch_add(3, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_includes_counters_and_per_domain_quantiles() {
        let stats = ServerStats::new();
        let pulse = pulse();
        stats.queries.fetch_add(2, Ordering::Relaxed);
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        pulse.observe(1, "graph", Outcome::Miss, [0, 500_000, 0, 0]);
        pulse.observe(2, "graph", Outcome::Miss, [0, 80_000_000, 0, 0]);
        pulse.observe(3, "p2p", Outcome::Miss, [0, 12_000_000, 0, 0]);
        let json = stats.render_json(3, &pulse);
        assert!(json.contains("\"queries\":2"), "{json}");
        assert!(json.contains("\"hit_rate\":0.5"), "{json}");
        assert!(json.contains("\"queue_depth\":3"), "{json}");
        assert!(json.contains("\"graph\":{\"count\":2"), "{json}");
        assert!(json.contains("\"p2p\":{\"count\":1"), "{json}");
        assert!(json.contains("\"slo\":{\"state\":\"ok\""), "{json}");
    }

    #[test]
    fn domains_without_traffic_are_omitted_from_latency() {
        let stats = ServerStats::new();
        let pulse = pulse();
        pulse.observe(1, "graph", Outcome::Hit, [0, 0, 0, 10_000]);
        let json = stats.render_json(0, &pulse);
        assert!(json.contains("\"graph\":{"), "{json}");
        assert!(!json.contains("\"p2p\":{"), "{json}");
    }

    #[test]
    fn log_scale_resolves_both_fast_and_slow_queries() {
        let stats = ServerStats::new();
        let pulse = pulse();
        for i in 0..100 {
            pulse.observe(i, "graph", Outcome::Hit, [0, 0, 0, 10_000]); // 10 µs
        }
        pulse.observe(100, "graph", Outcome::Miss, [0, 5_000_000_000, 0, 0]); // 5 s
        let json = stats.render_json(0, &pulse);
        assert!(json.contains("\"count\":101"), "{json}");
        let snap = pulse.snapshot(&stats);
        let h = &snap
            .domains
            .iter()
            .find(|(d, _)| d == "graph")
            .expect("graph")
            .1;
        let p50 = h.quantile_ms(0.5).expect("samples");
        let p999 = h.quantile_ms(0.999).expect("samples");
        assert!(p50 < 1.0, "p50 {p50} should sit at the cached mode");
        assert!(p999 > 100.0, "p999 {p999} should see the slow tail");
    }
}
