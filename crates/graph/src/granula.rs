//! Granula-style fine-grained performance analysis (\[100\]).
//!
//! Granula moved Graphalytics from "low-depth analysis, which is typical
//! of benchmarks" to *deep* results: per-phase breakdowns of where a run
//! spends its time. Here a [`Breakdown`] decomposes a [`RunCost`] into
//! load/compute/aggregate phases and per-iteration compute shares, and
//! can diagnose the run's dominant cost — the kind of insight Grade10
//! later automated.
//!
//! The breakdown also lifts into Granula's *operation hierarchy*: an
//! [`Operation`] is an `(actor, mission)` pair with a time interval and
//! child operations, and [`Breakdown::operation_tree`] renders a run as
//! `job → {load, compute → iterations…, aggregate}`. The same tree
//! [replays](Operation::replay) onto any telemetry [`Tracer`] as nested
//! spans, which is how graph runs share one profiling pipeline with the
//! DES-based domains.

use crate::platforms::RunCost;
use atlarge_telemetry::tracer::Tracer;

/// The phases of a graph-processing job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph loading and partitioning (modeled proportional to |V|+|E|).
    Load,
    /// The iterative computation.
    Compute,
    /// Result aggregation and write-back.
    Aggregate,
}

/// A per-phase performance breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Critical-path cost of loading.
    pub load: f64,
    /// Critical-path cost of computing (sum of iterations).
    pub compute: f64,
    /// Critical-path cost of aggregation.
    pub aggregate: f64,
    /// Per-iteration compute costs.
    pub iterations: Vec<f64>,
}

/// Load/aggregate cost factors relative to one full sweep.
const LOAD_FACTOR: f64 = 2.0;
const AGGREGATE_FACTOR: f64 = 0.25;

impl Breakdown {
    /// Builds the breakdown of a run on a graph with `n` vertices and
    /// `m` edges.
    pub fn of(cost: &RunCost, n: usize, m: usize) -> Self {
        let sweep = (n + m) as f64;
        Breakdown {
            load: sweep * LOAD_FACTOR,
            compute: cost.critical_path,
            aggregate: sweep * AGGREGATE_FACTOR,
            iterations: cost.per_iteration.iter().map(|r| r.critical_path).collect(),
        }
    }

    /// Total cost across phases.
    pub fn total(&self) -> f64 {
        self.load + self.compute + self.aggregate
    }

    /// The dominant phase.
    pub fn bottleneck(&self) -> Phase {
        if self.load >= self.compute && self.load >= self.aggregate {
            Phase::Load
        } else if self.compute >= self.aggregate {
            Phase::Compute
        } else {
            Phase::Aggregate
        }
    }

    /// Fraction of compute spent in the costliest single iteration —
    /// a straggler-iteration diagnostic.
    pub fn max_iteration_share(&self) -> f64 {
        if self.compute <= 0.0 {
            return 0.0;
        }
        self.iterations.iter().copied().fold(0.0, f64::max) / self.compute
    }
}

/// A node of the Granula operation hierarchy: an *actor* performing a
/// *mission* over `[start, end]` (in critical-path cost units for graph
/// runs, simulated seconds for DES runs), with nested child operations.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Who performs the work (platform, phase, component).
    pub actor: String,
    /// What the work is ("job", "load", "iteration-3", …).
    pub mission: String,
    /// Interval start.
    pub start: f64,
    /// Interval end (`end >= start`).
    pub end: f64,
    /// Nested sub-operations, each contained in `[start, end]`.
    pub children: Vec<Operation>,
}

impl Operation {
    /// A leaf operation.
    pub fn leaf(
        actor: impl Into<String>,
        mission: impl Into<String>,
        start: f64,
        end: f64,
    ) -> Self {
        assert!(end >= start, "operation interval must be non-empty");
        Operation {
            actor: actor.into(),
            mission: mission.into(),
            start,
            end,
            children: Vec::new(),
        }
    }

    /// The span name this operation replays under: `actor/mission`.
    pub fn span_name(&self) -> String {
        format!("{}/{}", self.actor, self.mission)
    }

    /// Duration of the interval.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Duration not covered by children — the operation's own share, the
    /// quantity a flamegraph's box widths encode.
    pub fn self_time(&self) -> f64 {
        let child: f64 = self.children.iter().map(Operation::duration).sum();
        (self.duration() - child).max(0.0)
    }

    /// Total nodes in the tree, this one included.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Operation::size).sum::<usize>()
    }

    /// Replays the tree onto `tracer` as properly nested span
    /// enter/exit pairs (depth-first: parent enters before its children,
    /// exits after them). A `Recorder` attached here captures the same
    /// hierarchical profile a live DES run would produce, so the obsv
    /// analyzers treat graph runs and kernel runs uniformly.
    pub fn replay(&self, tracer: &dyn Tracer) {
        let name = self.span_name();
        tracer.on_span_enter(self.start, &name);
        for child in &self.children {
            child.replay(tracer);
        }
        tracer.on_span_exit(self.end, &name);
    }
}

impl Breakdown {
    /// Renders this breakdown as the Granula operation tree of `actor`:
    /// a `job` root whose children are the load, compute (with one child
    /// per iteration), and aggregate phases laid end-to-end on the
    /// critical-path time axis.
    pub fn operation_tree(&self, actor: &str) -> Operation {
        let load_end = self.load;
        let compute_end = load_end + self.compute;
        let mut compute = Operation::leaf(actor, "compute", load_end, compute_end);
        let mut t = load_end;
        for (i, &cost) in self.iterations.iter().enumerate() {
            compute.children.push(Operation::leaf(
                actor,
                format!("iteration-{i}"),
                t,
                t + cost,
            ));
            t += cost;
        }
        Operation {
            actor: actor.to_string(),
            mission: "job".to_string(),
            start: 0.0,
            end: self.total(),
            children: vec![
                Operation::leaf(actor, "load", 0.0, load_end),
                compute,
                Operation::leaf(actor, "aggregate", compute_end, self.total()),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, preferential_attachment};
    use crate::platforms::{run, Algorithm, Platform};
    use atlarge_telemetry::recorder::Recorder;

    #[test]
    fn phases_sum_to_total() {
        let g = grid(12);
        let c = run(Platform::Sequential, Algorithm::Wcc, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        assert!((b.total() - (b.load + b.compute + b.aggregate)).abs() < 1e-9);
        assert_eq!(b.iterations.len() as u32, c.iterations);
    }

    #[test]
    fn long_jobs_are_compute_bound_short_ones_load_bound() {
        // Grid BFS runs many iterations -> compute dominates; a power-law
        // BFS is over in a few sweeps -> loading dominates.
        let grid_g = grid(24);
        let c = run(Platform::Sequential, Algorithm::Bfs, &grid_g);
        let b = Breakdown::of(&c, grid_g.num_vertices(), grid_g.num_edges());
        assert_eq!(b.bottleneck(), Phase::Compute);

        let pl = preferential_attachment(20_000, 4, 3);
        let c2 = run(Platform::Parallel { threads: 8 }, Algorithm::Bfs, &pl);
        let b2 = Breakdown::of(&c2, pl.num_vertices(), pl.num_edges());
        assert_eq!(b2.bottleneck(), Phase::Load);
    }

    #[test]
    fn operation_tree_covers_phases_and_iterations() {
        let g = grid(10);
        let c = run(Platform::Sequential, Algorithm::Wcc, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        let tree = b.operation_tree("sequential");
        assert_eq!(tree.mission, "job");
        assert_eq!(tree.children.len(), 3);
        assert!((tree.duration() - b.total()).abs() < 1e-9);
        let compute = &tree.children[1];
        assert_eq!(compute.children.len(), b.iterations.len());
        // Iterations tile the compute phase exactly: no self time left.
        assert!(compute.self_time() < 1e-6 * b.compute.max(1.0));
        // Children nest within their parents.
        for phase in &tree.children {
            assert!(phase.start >= tree.start && phase.end <= tree.end + 1e-9);
        }
    }

    #[test]
    fn replay_produces_nested_spans_on_a_recorder() {
        let g = grid(8);
        let c = run(Platform::Sequential, Algorithm::Bfs, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        let tree = b.operation_tree("sequential");
        let rec = Recorder::new();
        tree.replay(&rec);
        let stats = rec.span_stats();
        assert_eq!(stats["sequential/job"].entries, 1);
        assert_eq!(stats["sequential/load"].entries, 1);
        assert!(
            (stats["sequential/compute"].sim_time - b.compute).abs() < 1e-9,
            "span sim-time mirrors the breakdown"
        );
        assert!(stats.keys().any(|k| k.starts_with("sequential/iteration-")));
    }

    #[test]
    fn iteration_share_is_a_fraction() {
        let g = grid(10);
        let c = run(Platform::EdgeCentric, Algorithm::Wcc, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        let s = b.max_iteration_share();
        assert!(s > 0.0 && s <= 1.0, "share {s}");
    }
}
