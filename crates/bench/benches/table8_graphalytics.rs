//! Bench: regenerate Table 8 (the Graphalytics PAD/HPAD sweeps) — real
//! wall-time per platform × algorithm, plus the law decomposition.

use atlarge_graph::experiments::{pad_decomposition, pad_sweep, winners};
use atlarge_graph::generators::Dataset;
use atlarge_graph::platforms::{run, Algorithm, Platform};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table8_graphalytics");
    g.sample_size(10);
    for d in Dataset::all() {
        let graph = d.generate(2_000, 1);
        for p in Platform::roster() {
            g.bench_with_input(
                BenchmarkId::new(format!("bfs_{}", p.name()), d.name()),
                &graph,
                |b, graph| b.iter(|| run(p, Algorithm::Bfs, std::hint::black_box(graph))),
            );
        }
    }
    g.finish();
    let cells = pad_sweep(1_500, 1);
    let d = pad_decomposition(&cells);
    println!(
        "PAD law: interaction share {:.2} (max main {:.2}) over {} cells",
        d.interaction_share(),
        d.max_main_share(),
        cells.len()
    );
    for ((alg, ds), p) in winners(&cells) {
        println!("winner {alg:<10} {ds:<10} -> {p}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
