//! Player-population dynamics across game genres (\[71\], \[72\], \[73\]).
//!
//! The longitudinal studies traced "the short- and long-term dynamics of
//! popular MMORPGs" (Runescape), then MOBA and online-social games. The
//! population model here combines a diurnal arrival process, genre-
//! specific session lengths, and a long-term growth/decay trend; the
//! analyses recover the genre differences the studies report.

use atlarge_stats::dist::{LogNormal, Sample};
use atlarge_stats::timeseries::StepSeries;
use atlarge_workload::arrivals::{ArrivalProcess, Diurnal};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The studied game genres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Genre {
    /// Massively multiplayer online role-playing game (Runescape-like):
    /// long sessions, strong diurnal cycle.
    Mmorpg,
    /// Multiplayer online battle arena: short match-length sessions, very
    /// high arrival churn.
    Moba,
    /// Online social game: very short sessions, flat diurnal profile.
    OnlineSocial,
}

impl Genre {
    /// All genres in Table 6 order of first study.
    pub fn all() -> [Genre; 3] {
        [Genre::Mmorpg, Genre::Moba, Genre::OnlineSocial]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Genre::Mmorpg => "mmorpg",
            Genre::Moba => "moba",
            Genre::OnlineSocial => "social",
        }
    }

    /// Mean session length in seconds.
    pub fn mean_session(&self) -> f64 {
        match self {
            Genre::Mmorpg => 2.5 * 3600.0,
            Genre::Moba => 40.0 * 60.0, // one match
            Genre::OnlineSocial => 8.0 * 60.0,
        }
    }

    /// Diurnal amplitude of arrivals.
    pub fn diurnal_amplitude(&self) -> f64 {
        match self {
            Genre::Mmorpg => 0.8,
            Genre::Moba => 0.7,
            Genre::OnlineSocial => 0.35,
        }
    }

    /// Session-length coefficient of variation.
    pub fn session_cv(&self) -> f64 {
        match self {
            Genre::Mmorpg => 1.2,
            Genre::Moba => 0.3, // matches have bounded length
            Genre::OnlineSocial => 1.0,
        }
    }
}

/// A simulated population trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationTrace {
    /// Concurrent players over time.
    pub concurrent: StepSeries,
    /// Session records `(start, duration)`.
    pub sessions: Vec<(f64, f64)>,
    /// Days simulated.
    pub days: f64,
}

/// Simulates `days` of population dynamics for a genre at `base_rate`
/// arrivals/second.
pub fn simulate_population(genre: Genre, days: f64, base_rate: f64, seed: u64) -> PopulationTrace {
    let horizon = days * 86_400.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let arrivals = Diurnal::new(base_rate, genre.diurnal_amplitude(), 86_400.0, 0.0)
        .generate(&mut rng, 0.0, horizon);
    let session_d = LogNormal::with_mean_cv(genre.mean_session(), genre.session_cv());
    let mut sessions: Vec<(f64, f64)> = arrivals
        .iter()
        .map(|&t| (t, session_d.sample(&mut rng).max(30.0)))
        .collect();
    sessions.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite starts"));
    // Build the concurrency step series from start/end events.
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(sessions.len() * 2);
    for &(s, d) in &sessions {
        events.push((s, 1.0));
        events.push((s + d, -1.0));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut series = StepSeries::new(0.0);
    let mut level = 0.0;
    for (t, delta) in events {
        level += delta;
        series.push(t.min(horizon), level.max(0.0));
    }
    PopulationTrace {
        concurrent: series,
        sessions,
        days,
    }
}

/// Short-term dynamics statistic: daily peak-to-trough ratio of
/// concurrency, averaged across full days.
pub fn peak_trough_ratio(trace: &PopulationTrace) -> f64 {
    let full_days = trace.days.floor() as usize;
    if full_days == 0 {
        return 1.0;
    }
    let mut ratios = Vec::new();
    // Skip day 0 (warm-up: concurrency still filling).
    for d in 1..full_days {
        let from = d as f64 * 86_400.0;
        let mut peak: f64 = 0.0;
        let mut trough = f64::INFINITY;
        let steps = 96;
        for i in 0..steps {
            let v = trace
                .concurrent
                .value_at(from + i as f64 * 86_400.0 / steps as f64);
            peak = peak.max(v);
            trough = trough.min(v);
        }
        if trough > 0.0 {
            ratios.push(peak / trough);
        }
    }
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

/// Mean session duration of a trace.
pub fn mean_session(trace: &PopulationTrace) -> f64 {
    trace.sessions.iter().map(|&(_, d)| d).sum::<f64>() / trace.sessions.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(genre: Genre) -> PopulationTrace {
        simulate_population(genre, 4.0, 0.05, 31)
    }

    #[test]
    fn sessions_match_genre_scale() {
        let rpg = mean_session(&trace(Genre::Mmorpg));
        let moba = mean_session(&trace(Genre::Moba));
        let social = mean_session(&trace(Genre::OnlineSocial));
        assert!(rpg > 3.0 * moba, "rpg {rpg} vs moba {moba}");
        assert!(moba > social, "moba {moba} vs social {social}");
    }

    #[test]
    fn mmorpg_has_strong_diurnal_cycle() {
        // Compare at matched mean concurrency: the social genre's short
        // sessions need a higher arrival rate to host the same population,
        // otherwise small-sample noise dominates its peak/trough ratio.
        let rpg = peak_trough_ratio(&simulate_population(Genre::Mmorpg, 4.0, 0.08, 31));
        let social = peak_trough_ratio(&simulate_population(Genre::OnlineSocial, 4.0, 1.5, 31));
        assert!(rpg > 2.0, "mmorpg peak/trough {rpg}");
        assert!(
            rpg > social,
            "mmorpg cycle {rpg} should exceed social {social}"
        );
    }

    #[test]
    fn concurrency_never_negative() {
        let t = trace(Genre::Moba);
        for i in 0..200 {
            assert!(t.concurrent.value_at(i as f64 * 1000.0) >= 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let a = simulate_population(Genre::Moba, 2.0, 0.05, 9);
        let b = simulate_population(Genre::Moba, 2.0, 0.05, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn genres_enumerate() {
        assert_eq!(Genre::all().len(), 3);
        assert_eq!(Genre::Mmorpg.name(), "mmorpg");
    }
}
