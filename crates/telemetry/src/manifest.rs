//! Run manifests: the reproducibility receipt of a simulation run.
//!
//! Challenge **C3** of the paper makes calibration and reproducibility a
//! first-class concern of simulation-based design. A [`RunManifest`] pins
//! down what a run *was* — model, seed, configuration digest, event counts,
//! simulated horizon — so that a rerun can be checked against it
//! mechanically. Wall-clock time is recorded for the record but excluded
//! from reproducibility comparisons.

use crate::export::{json_escape, json_f64};

/// Current manifest schema version, bumped on incompatible field changes.
pub const MANIFEST_SCHEMA: u32 = 1;

/// FNV-1a hash of a byte string; the workspace's standard cheap digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Digest of a configuration value through its `Debug` rendering.
///
/// Every config struct in the workspace derives `Debug` with full field
/// coverage, so the rendering is a faithful, deterministic serialization —
/// two configs digest equal iff their fields are equal.
pub fn config_digest<T: std::fmt::Debug>(config: &T) -> u64 {
    fnv1a(format!("{config:?}").as_bytes())
}

/// What a simulation run was: identity, inputs, and extent.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest schema version ([`MANIFEST_SCHEMA`]).
    pub schema: u32,
    /// Model name, e.g. `"serverless.faas"`.
    pub model: String,
    /// The seed the run's RNG was created from.
    pub seed: u64,
    /// [`config_digest`] of the run's configuration.
    pub config_digest: u64,
    /// Events scheduled (including initial events).
    pub events_scheduled: u64,
    /// Events dispatched by the run loop.
    pub events_dispatched: u64,
    /// Simulated time when the run ended.
    pub sim_time: f64,
    /// Trace records retained in the ring buffer.
    pub trace_records: u64,
    /// Trace records dropped once the ring buffer filled.
    pub trace_dropped: u64,
    /// Wall-clock milliseconds between recorder creation and the end of the
    /// run. Excluded from [`RunManifest::same_run_as`].
    pub wall_ms: f64,
}

impl RunManifest {
    /// Whether `other` describes a reproduction of the same run: every
    /// field equal except wall-clock time, which legitimately varies
    /// between executions.
    pub fn same_run_as(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.model == other.model
            && self.seed == other.seed
            && self.config_digest == other.config_digest
            && self.events_scheduled == other.events_scheduled
            && self.events_dispatched == other.events_dispatched
            && self.sim_time == other.sim_time
            && self.trace_records == other.trace_records
            && self.trace_dropped == other.trace_dropped
    }

    /// A digest over the reproducible fields (everything
    /// [`RunManifest::same_run_as`] compares). Equal fingerprints ⇔
    /// same-run manifests, up to hash collisions.
    pub fn fingerprint(&self) -> u64 {
        let canon = format!(
            "{}|{}|{}|{:016x}|{}|{}|{}|{}|{}",
            self.schema,
            self.model,
            self.seed,
            self.config_digest,
            self.events_scheduled,
            self.events_dispatched,
            self.sim_time.to_bits(),
            self.trace_records,
            self.trace_dropped,
        );
        fnv1a(canon.as_bytes())
    }

    /// One-line JSON rendering (the final line of a JSONL trace export).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"manifest\",\"schema\":{},\"model\":\"{}\",\"seed\":\"{}\",\
             \"config_digest\":\"{:016x}\",\"events_scheduled\":{},\
             \"events_dispatched\":{},\"sim_time\":{},\"trace_records\":{},\
             \"trace_dropped\":{},\"fingerprint\":\"{:016x}\",\"wall_ms\":{}}}",
            self.schema,
            json_escape(&self.model),
            self.seed,
            self.config_digest,
            self.events_scheduled,
            self.events_dispatched,
            json_f64(self.sim_time),
            self.trace_records,
            self.trace_dropped,
            self.fingerprint(),
            json_f64(self.wall_ms),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest {
            schema: MANIFEST_SCHEMA,
            model: "test.model".into(),
            seed: 42,
            config_digest: 0xabcd,
            events_scheduled: 10,
            events_dispatched: 9,
            sim_time: 12.5,
            trace_records: 19,
            trace_dropped: 0,
            wall_ms: 3.25,
        }
    }

    #[test]
    fn same_run_ignores_wall_time() {
        let a = manifest();
        let mut b = manifest();
        b.wall_ms = 99.0;
        assert!(a.same_run_as(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 43;
        assert!(!a.same_run_as(&b));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn config_digest_tracks_fields() {
        #[derive(Debug)]
        #[allow(dead_code)] // fields exist to reach the Debug rendering
        struct Cfg {
            a: f64,
            b: u32,
        }
        let x = Cfg { a: 1.0, b: 2 };
        let y = Cfg { a: 1.0, b: 2 };
        let z = Cfg { a: 1.0, b: 3 };
        assert_eq!(config_digest(&x), config_digest(&y));
        assert_ne!(config_digest(&x), config_digest(&z));
    }

    #[test]
    fn json_line_shape() {
        let j = manifest().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"manifest\""));
        assert!(j.contains("\"seed\":\"42\""));
        assert!(j.contains("\"sim_time\":12.5"));
    }
}
