//! Side-by-side equivalence: [`CalendarQueue`] vs the [`BinaryHeapFel`]
//! reference.
//!
//! The calendar queue may only replace the heap because it is *provably
//! indistinguishable*: for any schedule — including the adversarial
//! ones below (heavy ties, bimodal far-future bands, resize-triggering
//! skew, nine decades of time scale, interleaved push/pop) — both
//! backends pop the byte-for-byte identical
//! `(time, seq, parent, event)` sequence. Every domain experiment's
//! campaign metrics are a pure function of that sequence, so this suite
//! plus `campaign_engine`'s two-run regression test is what licenses
//! the kernel swap without re-validating seven domains event by event.

use atlarge_des::calendar::CalendarQueue;
use atlarge_des::fel::{BinaryHeapFel, FutureEventList};
use atlarge_des::queue::EventQueue;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One step of a queue program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(f64),
    Pop,
    PopUntil(f64),
}

type Popped = (f64, u64, Option<u64>, u32);

/// Runs a program on a fresh queue with the given backend, recording
/// every pop result (including `None`s — their positions must match
/// too), then drains the remainder.
fn run_program<F: FutureEventList<u32>>(ops: &[Op]) -> (Vec<Option<Popped>>, usize) {
    let mut q: EventQueue<u32, F> = EventQueue::default();
    let mut out = Vec::new();
    let mut payload: u32 = 0;
    for &op in ops {
        match op {
            Op::Push(t) => {
                // Deterministic causal parents so the `parent` slot is
                // exercised by the comparison as well.
                let parent = if payload.is_multiple_of(3) {
                    None
                } else {
                    Some(u64::from(payload / 2))
                };
                q.push_from(t, parent, payload);
                payload += 1;
            }
            Op::Pop => out.push(q.pop_entry()),
            Op::PopUntil(h) => out.push(q.pop_entry_until(h)),
        }
    }
    let leftover = q.len();
    while let Some(e) = q.pop_entry() {
        out.push(Some(e));
    }
    (out, leftover)
}

/// Asserts both backends produce identical pop streams for `ops`.
fn assert_backends_agree(ops: &[Op]) {
    let (calendar, cal_len) = run_program::<CalendarQueue<u32>>(ops);
    let (heap, heap_len) = run_program::<BinaryHeapFel<u32>>(ops);
    assert_eq!(cal_len, heap_len, "len() diverged");
    assert_eq!(
        calendar, heap,
        "calendar and heap backends popped different sequences"
    );
}

#[test]
fn equal_time_flood_with_interleaved_pops() {
    // 10k events on one instant, pops interleaved every few pushes:
    // the all-in-one-bucket worst case, FIFO carried purely by seq.
    let mut ops = Vec::new();
    for i in 0..10_000u32 {
        ops.push(Op::Push(42.0));
        if i % 7 == 3 {
            ops.push(Op::Pop);
        }
        if i % 11 == 5 {
            ops.push(Op::PopUntil(42.0));
        }
    }
    assert_backends_agree(&ops);
}

#[test]
fn steady_hold_churn_through_rebuilds() {
    // A classic hold pattern grown to 50k pending: pop one, push one a
    // deterministic pseudo-exponential step ahead. Crosses every grow
    // watermark; the closing drain crosses every shrink watermark.
    let mut ops = Vec::new();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut now = 0.0f64;
    for i in 0..50_000u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        now += u * 0.001;
        ops.push(Op::Push(now + u * 10.0));
        if i > 1000 && i % 2 == 0 {
            ops.push(Op::Pop);
        }
    }
    assert_backends_agree(&ops);
}

proptest! {
    /// Heavy ties: times quantized to quarters so most pushes collide,
    /// with pops and horizon-pops interleaved.
    #[test]
    fn prop_tie_heavy_schedules_agree(
        raw in proptest::collection::vec((0u8..5, 0u32..40), 1..400),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t)| {
                let time = f64::from(t) / 4.0;
                match sel {
                    0..=2 => Op::Push(time),
                    3 => Op::Pop,
                    _ => Op::PopUntil(time + 0.25),
                }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Bimodal times: a near mode in [0, 1) and a far mode around 1e6,
    /// which lives in the calendar's overflow band and forces window
    /// advances mid-schedule.
    #[test]
    fn prop_bimodal_schedules_agree(
        raw in proptest::collection::vec((0u8..6, 0.0f64..1.0, 0u8..2), 1..300),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t, mode)| {
                let time = if mode == 0 { t } else { 1e6 + t };
                match sel {
                    0..=2 => Op::Push(time),
                    3 => Op::Pop,
                    4 => Op::PopUntil(t),
                    _ => Op::PopUntil(1e6 + t),
                }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Resize-triggering skew: push-heavy programs long enough to cross
    /// several grow watermarks, with quartically-skewed times (gap
    /// distribution designed to fool a head-sampled width estimate),
    /// then a full drain across the shrink watermarks.
    #[test]
    fn prop_skewed_growth_schedules_agree(
        raw in proptest::collection::vec((0u8..5, 0.0f64..1.0), 1..1500),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t)| {
                let time = t * t * t * t * 5e3;
                if sel < 4 { Op::Push(time) } else { Op::Pop }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Nine decades of time scale (1e-9..1e9) in one schedule.
    #[test]
    fn prop_nine_decade_schedules_agree(
        raw in proptest::collection::vec((0u8..4, 0u8..19, 1.0f64..10.0), 1..300),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, exp, frac)| {
                let time = 1e-9 * 10f64.powi(i32::from(exp)) * frac;
                if sel < 3 { Op::Push(time) } else { Op::Pop }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Interleaved push/pop (not just push-all-pop-all) preserves the
    /// strict `(time, seq)` order: every pop returns exactly the
    /// minimum of the queue's current contents, checked against a
    /// BTreeSet reference model. Non-negative finite f64 bit patterns
    /// order like the numbers, so the model key is exact.
    #[test]
    fn prop_interleaved_pop_is_always_current_min(
        raw in proptest::collection::vec((0u8..3, 0.0f64..100.0), 1..600),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut payload = 0u32;
        for &(sel, t) in &raw {
            if sel < 2 {
                let time = (t * 8.0).round() / 8.0;
                let id = q.push(time, payload);
                model.insert((time.to_bits(), id));
                payload += 1;
            } else {
                let got = q.pop_entry().map(|(time, id, _, _)| (time.to_bits(), id));
                let want = model.iter().next().copied();
                prop_assert_eq!(got, want, "pop is not the current minimum");
                if let Some(k) = want {
                    model.remove(&k);
                }
            }
        }
        while let Some((time, id, _, _)) = q.pop_entry() {
            let want = model.iter().next().copied();
            prop_assert_eq!(Some((time.to_bits(), id)), want);
            if let Some(k) = want {
                model.remove(&k);
            }
        }
        prop_assert!(model.is_empty(), "queue lost events");
    }
}
