//! The six LDBC Graphalytics algorithms.
//!
//! Each algorithm exists twice: as a *direct* reference implementation
//! (this module) and as a synchronous vertex program executed by the
//! platforms of [`crate::platforms`]. The test suite checks the platforms
//! against these references — Graphalytics' own validation approach.

use crate::csr::Csr;
use std::collections::BinaryHeap;

/// Breadth-first search levels from `source` (`None` = unreachable).
pub fn bfs_levels(g: &Csr, source: usize) -> Vec<Option<u32>> {
    let mut levels = vec![None; g.num_vertices()];
    let mut frontier = vec![source];
    levels[source] = Some(0);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.out_neighbors(v) {
                if levels[w as usize].is_none() {
                    levels[w as usize] = Some(depth);
                    next.push(w as usize);
                }
            }
        }
        frontier = next;
    }
    levels
}

/// PageRank with uniform teleport, fixed iteration count (the
/// Graphalytics convention), damping 0.85.
///
/// Dangling-vertex mass is redistributed uniformly each iteration.
pub fn pagerank(g: &Csr, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices();
    let nf = n as f64;
    let d = 0.85;
    let mut rank = vec![1.0 / nf; n];
    for _ in 0..iterations {
        let dangling: f64 = (0..n)
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| rank[v])
            .sum();
        let mut next = vec![(1.0 - d) / nf + d * dangling / nf; n];
        for (v, &r) in rank.iter().enumerate() {
            let deg = g.out_degree(v);
            if deg > 0 {
                let share = d * r / deg as f64;
                for &w in g.out_neighbors(v) {
                    next[w as usize] += share;
                }
            }
        }
        rank = next;
    }
    rank
}

/// Weakly connected components via label propagation to the minimum
/// vertex id (treats edges as undirected by using both adjacencies).
pub fn wcc(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..n {
            let mut best = label[v];
            for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                best = best.min(label[w as usize]);
            }
            if best < label[v] {
                label[v] = best;
                changed = true;
            }
        }
    }
    label
}

/// Community detection by synchronous label propagation (CDLP): each
/// iteration every vertex adopts the most frequent label among its
/// neighbors (smallest label breaks ties), for a fixed iteration count.
pub fn cdlp(g: &Csr, iterations: u32) -> Vec<u32> {
    let n = g.num_vertices();
    let mut label: Vec<u32> = (0..n as u32).collect();
    for _ in 0..iterations {
        let mut next = label.clone();
        let mut counts: std::collections::BTreeMap<u32, usize> = Default::default();
        for (v, nx) in next.iter_mut().enumerate() {
            counts.clear();
            for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                *counts.entry(label[w as usize]).or_insert(0) += 1;
            }
            if let Some((&l, _)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            {
                *nx = l;
            }
        }
        label = next;
    }
    label
}

/// Local clustering coefficient per vertex over the undirected
/// neighborhood (out ∪ in, self-loops ignored).
pub fn lcc(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    // Deduplicated undirected neighborhoods.
    let neighborhoods: Vec<Vec<u32>> = (0..n)
        .map(|v| {
            let mut ns: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .chain(g.in_neighbors(v))
                .copied()
                .filter(|&w| w as usize != v)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect();
    (0..n)
        .map(|v| {
            let ns = &neighborhoods[v];
            let k = ns.len();
            if k < 2 {
                return 0.0;
            }
            let mut links = 0usize;
            for (i, &a) in ns.iter().enumerate() {
                let na = &neighborhoods[a as usize];
                for &b in &ns[i + 1..] {
                    if na.binary_search(&b).is_ok() {
                        links += 1;
                    }
                }
            }
            2.0 * links as f64 / (k * (k - 1)) as f64
        })
        .collect()
}

/// Single-source shortest paths with the deterministic hash weights of
/// [`Csr::weight`] (Dijkstra).
pub fn sssp(g: &Csr, source: usize) -> Vec<Option<f64>> {
    let n = g.num_vertices();
    let mut dist: Vec<Option<f64>> = vec![None; n];
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
    let key = |d: f64| std::cmp::Reverse(d.to_bits()); // non-negative floats order as bits
    dist[source] = Some(0.0);
    heap.push((key(0.0), source as u32));
    while let Some((std::cmp::Reverse(bits), v)) = heap.pop() {
        let d = f64::from_bits(bits);
        if dist[v as usize].is_none_or(|cur| d > cur) {
            continue;
        }
        for &w in g.out_neighbors(v as usize) {
            let nd = d + g.weight(v, w);
            if dist[w as usize].is_none_or(|cur| nd < cur) {
                dist[w as usize] = Some(nd);
                heap.push((key(nd), w));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid;

    fn path4() -> Csr {
        Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false)
    }

    #[test]
    fn bfs_on_path() {
        let levels = bfs_levels(&path4(), 0);
        assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3)]);
        let back = bfs_levels(&path4(), 3);
        assert_eq!(back, vec![None, None, None, Some(0)]);
    }

    #[test]
    fn pagerank_sums_to_one_and_orders_hubs() {
        // A star: center receives everyone's rank.
        let g = Csr::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)], false);
        let pr = pagerank(&g, 30);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for v in 1..5 {
            assert!(pr[0] > pr[v]);
        }
    }

    #[test]
    fn wcc_separates_components() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2), (3, 4)], false);
        let c = wcc(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn cdlp_converges_on_two_cliques() {
        // Two triangles joined by one edge: labels settle within cliques.
        let g = Csr::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
            true,
        );
        let l = cdlp(&g, 10);
        assert_eq!(l[0], l[1]);
        assert_eq!(l[3], l[4]);
    }

    #[test]
    fn lcc_of_triangle_and_path() {
        let tri = Csr::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true);
        assert_eq!(lcc(&tri), vec![1.0, 1.0, 1.0]);
        let path = Csr::from_edges(3, &[(0, 1), (1, 2)], true);
        assert_eq!(lcc(&path)[1], 0.0);
    }

    #[test]
    fn sssp_respects_triangle_inequality() {
        let g = grid(8);
        let d = sssp(&g, 0);
        // Every reachable vertex's distance <= neighbor distance + weight.
        for v in 0..g.num_vertices() {
            if let Some(dv) = d[v] {
                for &w in g.out_neighbors(v) {
                    let dw = d[w as usize].expect("grid connected");
                    assert!(dw <= dv + g.weight(v as u32, w) + 1e-9);
                }
            }
        }
        assert_eq!(d[0], Some(0.0));
    }

    #[test]
    fn sssp_unreachable_is_none() {
        let g = Csr::from_edges(3, &[(0, 1)], false);
        let d = sssp(&g, 0);
        assert!(d[2].is_none());
    }
}
