//! Shared statistics toolkit for the AtLarge reproduction.
//!
//! Every experiment in the workspace reports through the types in this crate:
//! descriptive summaries ([`descriptive::Summary`]), histograms
//! ([`histogram::Histogram`]), violin-plot statistics for Figure 3
//! ([`violin::ViolinSummary`]), regression and correlation
//! ([`regression`]), rank aggregation for the autoscaling head-to-head
//! comparisons of §6.7 ([`ranking`]), factorial effect analysis for the
//! PAD law of §6.5 ([`factorial`]), and reproducible random-variate
//! generation ([`dist`]).
//!
//! # Examples
//!
//! ```
//! use atlarge_stats::descriptive::Summary;
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean(), 2.5);
//! assert_eq!(s.median(), 2.5);
//! ```

pub mod descriptive;
pub mod dist;
pub mod factorial;
pub mod histogram;
pub mod ranking;
pub mod regression;
pub mod timeseries;
pub mod violin;

pub use descriptive::Summary;
pub use histogram::Histogram;
pub use violin::ViolinSummary;
