//! Property test: `allow::render` and the directive parser are
//! round-trip partners. Any directive we can render — arbitrary lint
//! ids, reasons full of quotes, backslashes, commas, and `)]` — must
//! lex and parse back to exactly the ids and reason it was built from.

use atlarge_lint::allow;
use atlarge_lint::lexer::lex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ID_HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
const ID_TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-";

fn gen_id(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..12);
    let mut id = String::new();
    id.push(ID_HEAD[rng.gen_range(0..ID_HEAD.len())] as char);
    for _ in 1..len {
        id.push(ID_TAIL[rng.gen_range(0..ID_TAIL.len())] as char);
    }
    // `reason...` at the head of an item is the reserved key prefix.
    if id.starts_with("reason") {
        id.insert(0, 'z');
    }
    id
}

/// Printable ASCII, quotes and backslashes and `)]` included.
fn gen_reason(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| rng.gen_range(0x20u8..0x7f) as char)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rendered_directives_round_trip(
        seed in 0u64..u64::MAX,
        n_lints in 0usize..4,
        reason_len in 0usize..40,
        has_reason in 0u8..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lints: Vec<String> = (0..n_lints).map(|_| gen_id(&mut rng)).collect();
        let reason: Option<String> = (has_reason == 1).then(|| gen_reason(&mut rng, reason_len));

        let rendered = allow::render(&lints, reason.as_deref());
        let lexed = lex(&format!("{rendered}\nlet marker = 1;\n"));
        let directives = allow::collect(&lexed);

        prop_assert_eq!(directives.len(), 1, "rendered: {}", rendered);
        let d = &directives[0];
        prop_assert_eq!(&d.lints, &lints, "rendered: {}", rendered);
        let parsed_reason = d.reason.as_deref().map(allow::unescape_reason);
        prop_assert_eq!(&parsed_reason, &reason, "rendered: {}", rendered);
        prop_assert_eq!(d.line, 1);
        prop_assert_eq!(d.target_line, Some(2));
    }
}
