//! What is good design? (challenge C2, Figure 3, Figure 4).
//!
//! Three instruments:
//!
//! - Altshuller's five *levels of creativity* and four *performance
//!   levels* (§5.1/C2), as ordered enums with classification helpers.
//! - The review-criteria triple (merit / quality / topic, integer scores
//!   1–4) behind Figure 3.
//! - A [`DesignDocument`] rubric encoding the specific defects the paper
//!   reads off the student design of Figure 4 (missing interconnections,
//!   no layering, no component descriptions, …).

use std::fmt;

/// Altshuller's five levels of creativity, ordered by long-term impact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CreativityLevel {
    /// (1) Using an existing design, minimally adapted.
    Trivial,
    /// (2) Selecting one of several designs and adapting it after careful
    /// reasoning.
    Normal,
    /// (3) Significant adaptation of an existing design.
    Novel,
    /// (4) A new design or important feature (e.g. big data, serverless).
    Fundamental,
    /// (5) A completely new ecosystem with major scientific advance
    /// (e.g. the Internet, the cloud).
    Outstanding,
}

impl CreativityLevel {
    /// All levels, lowest impact first.
    pub fn all() -> [CreativityLevel; 5] {
        [
            CreativityLevel::Trivial,
            CreativityLevel::Normal,
            CreativityLevel::Novel,
            CreativityLevel::Fundamental,
            CreativityLevel::Outstanding,
        ]
    }

    /// Altshuller's 1-based level number.
    pub fn level(&self) -> u8 {
        *self as u8 + 1
    }

    /// Classifies a design from how much of it is new (`new_fraction` in
    /// `[0,1]`) and whether it founded a new ecosystem.
    pub fn classify(new_fraction: f64, founds_new_ecosystem: bool) -> Self {
        assert!((0.0..=1.0).contains(&new_fraction), "fraction in [0,1]");
        if founds_new_ecosystem {
            CreativityLevel::Outstanding
        } else if new_fraction >= 0.75 {
            CreativityLevel::Fundamental
        } else if new_fraction >= 0.4 {
            CreativityLevel::Novel
        } else if new_fraction >= 0.1 {
            CreativityLevel::Normal
        } else {
            CreativityLevel::Trivial
        }
    }

    /// Conference rating systems roughly consider levels 1–4 (§5.1).
    pub fn conference_rating_range() -> std::ops::RangeInclusive<u8> {
        1..=4
    }
}

/// Altshuller's four performance baselines a design is judged against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PerformanceBaseline {
    /// Better than a random design.
    VsRandom,
    /// Better than a naïve design.
    VsNaive,
    /// Better than current practice.
    VsCurrentPractice,
    /// Close to the ideal or optimal alternative.
    VsOptimal,
}

impl PerformanceBaseline {
    /// All baselines, weakest first.
    pub fn all() -> [PerformanceBaseline; 4] {
        [
            PerformanceBaseline::VsRandom,
            PerformanceBaseline::VsNaive,
            PerformanceBaseline::VsCurrentPractice,
            PerformanceBaseline::VsOptimal,
        ]
    }

    /// Highest baseline a design clears given its quality and the
    /// qualities of the four reference designs.
    pub fn highest_cleared(
        design: f64,
        random: f64,
        naive: f64,
        practice: f64,
        optimal: f64,
    ) -> Option<Self> {
        let mut best = None;
        if design > random {
            best = Some(PerformanceBaseline::VsRandom);
        }
        if design > naive {
            best = Some(PerformanceBaseline::VsNaive);
        }
        if design > practice {
            best = Some(PerformanceBaseline::VsCurrentPractice);
        }
        if design >= 0.95 * optimal {
            best = Some(PerformanceBaseline::VsOptimal);
        }
        best
    }
}

/// An integer review score in 1–4, as used by the conference of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Score(u8);

impl Score {
    /// Creates a score.
    ///
    /// # Panics
    ///
    /// Panics unless `value` is within 1–4.
    pub fn new(value: u8) -> Self {
        assert!((1..=4).contains(&value), "scores are integers 1..=4");
        Score(value)
    }

    /// The numeric value.
    pub fn value(&self) -> u8 {
        self.0
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The three review criteria of Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Review {
    /// Overall merit of the work.
    pub merit: Score,
    /// Quality of the approach.
    pub quality: Score,
    /// Match with the conference topic.
    pub topic: Score,
}

/// A design document, scored by the rubric of Figure 4's critique.
///
/// The paper lists what the typical early student design lacks: a
/// believable solving description, interconnections (in the geo-distributed
/// datacenter and between stakeholders), layering, system packaging,
/// component descriptions, and a competent visual depiction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DesignDocument {
    /// A believable description of how the design solves (part of) the
    /// problem.
    pub believable_solving_description: bool,
    /// Interconnections within the geo-distributed infrastructure.
    pub infrastructure_interconnections: bool,
    /// Interconnections between stakeholders.
    pub stakeholder_interconnections: bool,
    /// Layering of the architecture.
    pub layering: bool,
    /// System packaging.
    pub system_packaging: bool,
    /// Descriptions of (sub)components.
    pub component_descriptions: bool,
    /// A legible visual depiction.
    pub legible_visuals: bool,
    /// Explicit treatment of non-functional requirements.
    pub addresses_nfrs: bool,
}

impl DesignDocument {
    /// Rubric score in `[0, 1]`: the fraction of criteria satisfied.
    pub fn score(&self) -> f64 {
        let checks = [
            self.believable_solving_description,
            self.infrastructure_interconnections,
            self.stakeholder_interconnections,
            self.layering,
            self.system_packaging,
            self.component_descriptions,
            self.legible_visuals,
            self.addresses_nfrs,
        ];
        checks.iter().filter(|&&c| c).count() as f64 / checks.len() as f64
    }

    /// The criteria a document fails, by name.
    pub fn missing(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if !self.believable_solving_description {
            out.push("believable solving description");
        }
        if !self.infrastructure_interconnections {
            out.push("infrastructure interconnections");
        }
        if !self.stakeholder_interconnections {
            out.push("stakeholder interconnections");
        }
        if !self.layering {
            out.push("layering");
        }
        if !self.system_packaging {
            out.push("system packaging");
        }
        if !self.component_descriptions {
            out.push("component descriptions");
        }
        if !self.legible_visuals {
            out.push("legible visuals");
        }
        if !self.addresses_nfrs {
            out.push("non-functional requirements");
        }
        out
    }

    /// The typical early student design of Figure 4: a high-level sketch
    /// with legible intent but none of the structural criteria.
    pub fn student_example() -> Self {
        DesignDocument::default()
    }

    /// A design produced after framework training: all criteria addressed.
    pub fn trained_example() -> Self {
        DesignDocument {
            believable_solving_description: true,
            infrastructure_interconnections: true,
            stakeholder_interconnections: true,
            layering: true,
            system_packaging: true,
            component_descriptions: true,
            legible_visuals: true,
            addresses_nfrs: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creativity_levels_are_ordered() {
        assert!(CreativityLevel::Trivial < CreativityLevel::Outstanding);
        assert_eq!(CreativityLevel::Fundamental.level(), 4);
        assert_eq!(CreativityLevel::all().len(), 5);
    }

    #[test]
    fn classification_by_new_fraction() {
        assert_eq!(
            CreativityLevel::classify(0.0, false),
            CreativityLevel::Trivial
        );
        assert_eq!(
            CreativityLevel::classify(0.2, false),
            CreativityLevel::Normal
        );
        assert_eq!(
            CreativityLevel::classify(0.5, false),
            CreativityLevel::Novel
        );
        assert_eq!(
            CreativityLevel::classify(0.9, false),
            CreativityLevel::Fundamental
        );
        assert_eq!(
            CreativityLevel::classify(0.1, true),
            CreativityLevel::Outstanding
        );
    }

    #[test]
    fn conference_ratings_span_1_to_4() {
        assert_eq!(CreativityLevel::conference_rating_range(), 1..=4);
    }

    #[test]
    fn performance_baseline_ladder() {
        // Beats practice but not near-optimal.
        let b = PerformanceBaseline::highest_cleared(0.8, 0.3, 0.5, 0.7, 1.0);
        assert_eq!(b, Some(PerformanceBaseline::VsCurrentPractice));
        // Near-optimal.
        let b = PerformanceBaseline::highest_cleared(0.96, 0.3, 0.5, 0.7, 1.0);
        assert_eq!(b, Some(PerformanceBaseline::VsOptimal));
        // Worse than random.
        let b = PerformanceBaseline::highest_cleared(0.1, 0.3, 0.5, 0.7, 1.0);
        assert_eq!(b, None);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn scores_outside_range_rejected() {
        Score::new(5);
    }

    #[test]
    fn student_design_fails_rubric_trained_passes() {
        let student = DesignDocument::student_example();
        let trained = DesignDocument::trained_example();
        assert_eq!(student.score(), 0.0);
        assert_eq!(trained.score(), 1.0);
        assert_eq!(student.missing().len(), 8);
        assert!(trained.missing().is_empty());
        // The specific Figure-4 critique items are reported.
        assert!(student
            .missing()
            .contains(&"infrastructure interconnections"));
        assert!(student.missing().contains(&"layering"));
    }

    #[test]
    fn partial_document_scores_fractionally() {
        let doc = DesignDocument {
            layering: true,
            component_descriptions: true,
            ..DesignDocument::default()
        };
        assert_eq!(doc.score(), 0.25);
        assert_eq!(doc.missing().len(), 6);
    }
}
