//! A minimal JSON reader for the telemetry export dialect.
//!
//! The telemetry crate hand-writes its JSONL (no serde in the
//! workspace), and this module is the matching hand-written reader: a
//! recursive-descent parser over the full JSON grammar, plus the
//! accessors the analyzers need. Being a *reader of our own writer* it
//! favors clear errors over leniency — any malformed line aborts the
//! analysis rather than silently skewing it.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (all are read as `f64`, like JavaScript).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved via first-wins de-duplication
    /// into a map for lookup.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Float member `key`, a convenience for the common case.
    pub fn f64_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Integer member `key`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// String member `key`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Boolean member `key`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses every non-empty line of `text` as a JSON object.
pub fn parse_lines(text: &str) -> Result<Vec<Json>, ParseError> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse)
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.entry(key).or_insert(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u hex"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u hex"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own exports;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_trace_line() {
        let v = parse(r#"{"t":1.5,"kind":"dispatch","label":"tick","queue":3,"id":7,"parent":2}"#)
            .unwrap();
        assert_eq!(v.str_field("kind"), Some("dispatch"));
        assert_eq!(v.u64_field("id"), Some(7));
        assert_eq!(v.u64_field("parent"), Some(2));
        assert_eq!(v.f64_field("t"), Some(1.5));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_arrays_and_nulls() {
        let v = parse(r#"{"points":[[0.5,1.0],[2.5,null]],"ok":true}"#).unwrap();
        let pts = v.get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].as_arr().unwrap()[1].as_f64(), Some(1.0));
        assert_eq!(pts[1].as_arr().unwrap()[1], Json::Null);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn parses_escapes_and_negative_exponents() {
        let v = parse(r#"{"s":"a\"b\nc","x":-1.5e-3}"#).unwrap();
        assert_eq!(v.str_field("s"), Some("a\"b\nc"));
        assert!((v.f64_field("x").unwrap() + 0.0015).abs() < 1e-12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parse_lines_skips_blank_lines() {
        let lines = parse_lines("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(lines.len(), 2);
    }
}
