//! The recorder: a shared, aggregating [`Tracer`] implementation.
//!
//! A [`Recorder`] is a cheaply cloneable handle over shared state, so the
//! same recorder can be attached to the simulation kernel as its tracer
//! *and* kept by the caller (or embedded in a model) to record
//! domain-level metrics and read everything back after the run.

use crate::export::{json_f64, json_object, json_str};
use crate::manifest::{RunManifest, MANIFEST_SCHEMA};
use crate::metrics::{Gauge, Tally};
use crate::tracer::Tracer;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Default bound of the event-trace ring buffer.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Bins of the per-tally quantile histograms in the metrics export.
pub const HISTOGRAM_BINS: usize = 32;

/// Maximum `(t, value)` points exported per timed metric stream; the
/// remainder is counted in the line's `omitted` field.
pub const SERIES_EXPORT_CAP: usize = 4096;

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// An event was scheduled to fire at `fire_at`.
    Schedule {
        /// Absolute simulated time the event will fire at.
        fire_at: f64,
        /// Kernel-assigned event id.
        id: u64,
        /// Id of the event whose handler scheduled this one (`None` for
        /// externally scheduled roots).
        parent: Option<u64>,
    },
    /// An event was dispatched; `queue_len` events remained pending.
    Dispatch {
        /// Pending events after the pop.
        queue_len: usize,
        /// Kernel-assigned event id.
        id: u64,
        /// Causal parent id, as in [`TraceKind::Schedule`].
        parent: Option<u64>,
    },
    /// An instrumented span was entered.
    SpanEnter,
    /// An instrumented span was exited.
    SpanExit,
}

/// One record in the bounded event trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Simulated time of the record.
    pub time: f64,
    /// Event or span label.
    pub label: String,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceRecord {
    /// One-line JSON rendering. Schedule and dispatch records carry the
    /// causal `id`/`parent` fields; `parent` is omitted for roots.
    pub fn to_json(&self) -> String {
        let mut fields = vec![("t", json_f64(self.time))];
        match &self.kind {
            TraceKind::Schedule {
                fire_at,
                id,
                parent,
            } => {
                fields.push(("kind", json_str("schedule")));
                fields.push(("label", json_str(&self.label)));
                fields.push(("fire_at", json_f64(*fire_at)));
                fields.push(("id", id.to_string()));
                if let Some(p) = parent {
                    fields.push(("parent", p.to_string()));
                }
            }
            TraceKind::Dispatch {
                queue_len,
                id,
                parent,
            } => {
                fields.push(("kind", json_str("dispatch")));
                fields.push(("label", json_str(&self.label)));
                fields.push(("queue", queue_len.to_string()));
                fields.push(("id", id.to_string()));
                if let Some(p) = parent {
                    fields.push(("parent", p.to_string()));
                }
            }
            TraceKind::SpanEnter => {
                fields.push(("kind", json_str("span_enter")));
                fields.push(("label", json_str(&self.label)));
            }
            TraceKind::SpanExit => {
                fields.push(("kind", json_str("span_exit")));
                fields.push(("label", json_str(&self.label)));
            }
        }
        json_object(&fields)
    }
}

/// Accumulated profile of one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Completed enter/exit pairs.
    pub entries: u64,
    /// Total simulated time spent inside the span.
    pub sim_time: f64,
    /// Total wall-clock nanoseconds spent inside the span.
    pub wall_ns: u64,
}

#[derive(Debug)]
struct State {
    started: Instant,
    run_info: Option<(String, u64, u64)>,
    scheduled: u64,
    dispatched: u64,
    sim_time: f64,
    wall_ms_at_run_end: Option<f64>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    tallies: BTreeMap<String, Tally>,
    timed: BTreeMap<String, Vec<(f64, f64)>>,
    dispatches_by_label: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStats>,
    open_spans: Vec<(String, f64, Instant)>,
    trace: VecDeque<TraceRecord>,
    trace_capacity: usize,
    dropped: u64,
}

impl State {
    fn push_trace(&mut self, record: TraceRecord) {
        if self.trace_capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.trace.len() == self.trace_capacity {
            self.trace.pop_front();
            self.dropped += 1;
        }
        self.trace.push_back(record);
    }

    fn see_time(&mut self, now: f64) {
        if now > self.sim_time {
            self.sim_time = now;
        }
    }

    fn manifest(&self) -> RunManifest {
        let (model, seed, config_digest) = match &self.run_info {
            Some((m, s, d)) => (m.clone(), *s, *d),
            None => ("unnamed".to_string(), 0, 0),
        };
        RunManifest {
            schema: MANIFEST_SCHEMA,
            model,
            seed,
            config_digest,
            events_scheduled: self.scheduled,
            events_dispatched: self.dispatched,
            sim_time: self.sim_time,
            trace_records: self.trace.len() as u64,
            trace_dropped: self.dropped,
            wall_ms: self
                .wall_ms_at_run_end
                .unwrap_or_else(|| self.started.elapsed().as_secs_f64() * 1e3),
        }
    }
}

/// Increments `map[key]` by `n` without allocating when the key exists.
fn bump(map: &mut BTreeMap<String, u64>, key: &str, n: u64) {
    if let Some(v) = map.get_mut(key) {
        *v += n;
    } else {
        map.insert(key.to_string(), n);
    }
}

/// A cloneable telemetry sink: metric registry, span profiles, bounded
/// event trace, and the run manifest.
///
/// # Examples
///
/// ```
/// use atlarge_telemetry::recorder::Recorder;
/// use atlarge_telemetry::tracer::Tracer;
///
/// let rec = Recorder::new();
/// rec.incr("requests");
/// rec.observe("latency_s", 0.25);
/// rec.on_dispatch(1.0, "invoke", 3, 0, None); // what the kernel calls
/// assert_eq!(rec.counter("requests"), 1);
/// assert_eq!(rec.events_dispatched(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<State>>,
}

impl Recorder {
    /// Creates a recorder with the default trace-buffer bound.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a recorder whose event trace keeps at most `capacity`
    /// records; older records are dropped (and counted) once full. A
    /// capacity of zero disables trace retention but keeps all metrics.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(State {
                started: Instant::now(),
                run_info: None,
                scheduled: 0,
                dispatched: 0,
                sim_time: 0.0,
                wall_ms_at_run_end: None,
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                tallies: BTreeMap::new(),
                timed: BTreeMap::new(),
                dispatches_by_label: BTreeMap::new(),
                spans: BTreeMap::new(),
                open_spans: Vec::new(),
                trace: VecDeque::new(),
                trace_capacity: capacity,
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.lock().expect("recorder mutex poisoned")
    }

    /// Declares what run this recorder observes: model name, RNG seed, and
    /// the [`crate::manifest::config_digest`] of the configuration. Called
    /// by the traced run wrappers of the domain simulators.
    pub fn set_run_info(&self, model: &str, seed: u64, config_digest: u64) {
        self.lock().run_info = Some((model.to_string(), seed, config_digest));
    }

    // -- Metric registry ---------------------------------------------------

    /// Adds one to counter `name`.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        bump(&mut self.lock().counters, name, n);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets time-weighted gauge `name` to `level` at simulated time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier update of the same gauge.
    pub fn gauge_set(&self, name: &str, now: f64, level: f64) {
        let mut st = self.lock();
        match st.gauges.get_mut(name) {
            Some(g) => g.set(now, level),
            None => {
                let mut g = Gauge::new(0.0);
                g.set(now, level);
                st.gauges.insert(name.to_string(), g);
            }
        }
    }

    /// A snapshot of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.lock().gauges.get(name).cloned()
    }

    /// Records one observation into tally `name`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe(&self, name: &str, x: f64) {
        let mut st = self.lock();
        match st.tallies.get_mut(name) {
            Some(t) => t.record(x),
            None => {
                let mut t = Tally::new();
                t.record(x);
                st.tallies.insert(name.to_string(), t);
            }
        }
    }

    /// A snapshot of tally `name`, if it ever saw an observation.
    pub fn tally(&self, name: &str) -> Option<Tally> {
        self.lock().tallies.get(name).cloned()
    }

    /// Records one observation into tally `name` *with its simulated
    /// timestamp*, making the metric a first-class time series: the value
    /// lands in the tally (so summaries and histograms still work) and the
    /// `(now, x)` point is appended to the metric's timed stream, which
    /// windowed aggregation in the analysis layer consumes.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn observe_at(&self, name: &str, now: f64, x: f64) {
        let mut st = self.lock();
        st.see_time(now);
        match st.tallies.get_mut(name) {
            Some(t) => t.record(x),
            None => {
                let mut t = Tally::new();
                t.record(x);
                st.tallies.insert(name.to_string(), t);
            }
        }
        st.timed.entry(name.to_string()).or_default().push((now, x));
    }

    /// The timed stream of metric `name` (points recorded through
    /// [`Recorder::observe_at`]), in recording order.
    pub fn timed(&self, name: &str) -> Option<Vec<(f64, f64)>> {
        self.lock().timed.get(name).cloned()
    }

    // -- Trace and kernel-derived state ------------------------------------

    /// Events scheduled so far (as seen through [`Tracer::on_schedule`]).
    pub fn events_scheduled(&self) -> u64 {
        self.lock().scheduled
    }

    /// Events dispatched so far (as seen through [`Tracer::on_dispatch`]).
    pub fn events_dispatched(&self) -> u64 {
        self.lock().dispatched
    }

    /// Dispatch count of one event label.
    pub fn dispatches(&self, label: &str) -> u64 {
        self.lock()
            .dispatches_by_label
            .get(label)
            .copied()
            .unwrap_or(0)
    }

    /// Dispatch counts per event label.
    pub fn dispatches_by_label(&self) -> BTreeMap<String, u64> {
        self.lock().dispatches_by_label.clone()
    }

    /// Latest simulated time observed through any hook.
    pub fn sim_time(&self) -> f64 {
        self.lock().sim_time
    }

    /// Records retained in the trace ring buffer.
    pub fn trace_len(&self) -> usize {
        self.lock().trace.len()
    }

    /// Records dropped after the ring buffer filled.
    pub fn trace_dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// A copy of the retained trace, oldest first.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.lock().trace.iter().cloned().collect()
    }

    /// Per-span profiles (completed enter/exit pairs only).
    pub fn span_stats(&self) -> BTreeMap<String, SpanStats> {
        self.lock().spans.clone()
    }

    /// The manifest of the run as recorded so far.
    pub fn manifest(&self) -> RunManifest {
        self.lock().manifest()
    }

    // -- Export ------------------------------------------------------------

    /// Writes the retained event trace as JSONL, one record per line,
    /// terminated by the run-manifest line.
    pub fn write_trace_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let st = self.lock();
        for r in &st.trace {
            writeln!(w, "{}", r.to_json())?;
        }
        writeln!(w, "{}", st.manifest().to_json())
    }

    /// Writes every registered metric as JSONL: counters, per-label
    /// dispatch counts, gauges, tallies, and span profiles.
    pub fn write_metrics_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let st = self.lock();
        for (name, v) in &st.counters {
            let line = json_object(&[
                ("kind", json_str("counter")),
                ("name", json_str(name)),
                ("value", v.to_string()),
            ]);
            writeln!(w, "{line}")?;
        }
        for (label, v) in &st.dispatches_by_label {
            let line = json_object(&[
                ("kind", json_str("dispatches")),
                ("label", json_str(label)),
                ("value", v.to_string()),
            ]);
            writeln!(w, "{line}")?;
        }
        for (name, g) in &st.gauges {
            let line = json_object(&[
                ("kind", json_str("gauge")),
                ("name", json_str(name)),
                ("last", json_f64(g.value())),
                ("mean", json_f64(g.mean())),
                ("min", json_f64(g.min_level())),
                ("max", json_f64(g.max_level())),
            ]);
            writeln!(w, "{line}")?;
        }
        for (name, t) in &st.tallies {
            let mut fields = vec![
                ("kind", json_str("tally")),
                ("name", json_str(name)),
                ("count", t.len().to_string()),
            ];
            if let Some(s) = t.summary() {
                fields.push(("mean", json_f64(s.mean())));
                fields.push(("min", json_f64(s.min())));
                fields.push(("p50", json_f64(s.median())));
                fields.push(("p95", json_f64(s.percentile(95.0))));
                fields.push(("p99", json_f64(s.percentile(99.0))));
                fields.push(("max", json_f64(s.max())));
            }
            writeln!(w, "{}", json_object(&fields))?;
        }
        // One fixed-bin quantile histogram per tally, so distributions
        // survive the export (and cross-run diffs) rather than collapsing
        // to scalar summaries.
        for (name, t) in &st.tallies {
            if let Some(s) = t.summary() {
                let lo = s.min();
                // Widen degenerate ranges so Histogram::new accepts them.
                let hi = if s.max() > lo { s.max() } else { lo + 1.0 };
                let h = t.histogram(lo, hi, HISTOGRAM_BINS);
                let bins: Vec<String> = (0..h.num_bins())
                    .map(|i| h.bin_count(i).to_string())
                    .collect();
                let line = json_object(&[
                    ("kind", json_str("histogram")),
                    ("name", json_str(name)),
                    ("lo", json_f64(lo)),
                    ("hi", json_f64(hi)),
                    ("bins", format!("[{}]", bins.join(","))),
                ]);
                writeln!(w, "{line}")?;
            }
        }
        // Timed streams (observe_at): raw (t, value) points, capped.
        for (name, points) in &st.timed {
            let kept = &points[..points.len().min(SERIES_EXPORT_CAP)];
            let rendered: Vec<String> = kept
                .iter()
                .map(|&(t, v)| format!("[{},{}]", json_f64(t), json_f64(v)))
                .collect();
            let line = json_object(&[
                ("kind", json_str("series")),
                ("name", json_str(name)),
                ("count", points.len().to_string()),
                ("omitted", (points.len() - kept.len()).to_string()),
                ("points", format!("[{}]", rendered.join(","))),
            ]);
            writeln!(w, "{line}")?;
        }
        for (name, s) in &st.spans {
            let line = json_object(&[
                ("kind", json_str("span")),
                ("name", json_str(name)),
                ("entries", s.entries.to_string()),
                ("sim_time", json_f64(s.sim_time)),
                ("wall_ns", s.wall_ns.to_string()),
            ]);
            writeln!(w, "{line}")?;
        }
        // Terminated by the manifest, like the trace export: a metrics
        // file then carries its own run identity, which is what lets
        // cross-run diffing key on `same_run_as` fingerprints without a
        // side channel.
        writeln!(w, "{}", st.manifest().to_json())
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer for Recorder {
    fn on_schedule(&self, now: f64, fire_at: f64, label: &str, id: u64, parent: Option<u64>) {
        let mut st = self.lock();
        st.scheduled += 1;
        st.see_time(now);
        st.push_trace(TraceRecord {
            time: now,
            label: label.to_string(),
            kind: TraceKind::Schedule {
                fire_at,
                id,
                parent,
            },
        });
    }

    fn on_dispatch(&self, now: f64, label: &str, queue_len: usize, id: u64, parent: Option<u64>) {
        let mut st = self.lock();
        st.dispatched += 1;
        st.see_time(now);
        bump(&mut st.dispatches_by_label, label, 1);
        st.push_trace(TraceRecord {
            time: now,
            label: label.to_string(),
            kind: TraceKind::Dispatch {
                queue_len,
                id,
                parent,
            },
        });
    }

    fn on_span_enter(&self, now: f64, name: &str) {
        let mut st = self.lock();
        st.see_time(now);
        st.open_spans.push((name.to_string(), now, Instant::now()));
        st.push_trace(TraceRecord {
            time: now,
            label: name.to_string(),
            kind: TraceKind::SpanEnter,
        });
    }

    fn on_span_exit(&self, now: f64, name: &str) {
        let mut st = self.lock();
        st.see_time(now);
        // Innermost matching enter wins; an exit without a matching enter
        // is recorded in the trace but contributes no profile.
        if let Some(pos) = st.open_spans.iter().rposition(|(n, _, _)| n == name) {
            let (_, entered_sim, entered_wall) = st.open_spans.remove(pos);
            let wall_ns = entered_wall.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            let span = st.spans.entry(name.to_string()).or_default();
            span.entries += 1;
            span.sim_time += now - entered_sim;
            span.wall_ns += wall_ns;
        }
        st.push_trace(TraceRecord {
            time: now,
            label: name.to_string(),
            kind: TraceKind::SpanExit,
        });
    }

    fn on_run_end(&self, now: f64, processed: u64) {
        let mut st = self.lock();
        st.see_time(now);
        // `processed` is cumulative across run calls; keep the largest.
        if processed > st.dispatched {
            st.dispatched = processed;
        }
        st.wall_ms_at_run_end = Some(st.started.elapsed().as_secs_f64() * 1e3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_accumulate_counts_and_labels() {
        let rec = Recorder::new();
        rec.on_schedule(0.0, 1.0, "tick", 0, None);
        rec.on_schedule(0.0, 2.0, "tick", 1, Some(0));
        rec.on_dispatch(1.0, "tick", 1, 0, None);
        rec.on_run_end(2.0, 1);
        assert_eq!(rec.events_scheduled(), 2);
        assert_eq!(rec.events_dispatched(), 1);
        assert_eq!(rec.dispatches("tick"), 1);
        assert_eq!(rec.sim_time(), 2.0);
        assert_eq!(rec.trace_len(), 3);
    }

    #[test]
    fn trace_records_carry_causal_ids() {
        let rec = Recorder::new();
        rec.on_schedule(0.0, 1.0, "tick", 0, None);
        rec.on_dispatch(1.0, "tick", 0, 0, None);
        rec.on_schedule(1.0, 2.0, "tick", 1, Some(0));
        let trace = rec.trace();
        assert_eq!(
            trace[0].kind,
            TraceKind::Schedule {
                fire_at: 1.0,
                id: 0,
                parent: None
            }
        );
        let json = trace[2].to_json();
        assert!(json.contains("\"id\":1"), "{json}");
        assert!(json.contains("\"parent\":0"), "{json}");
        // Roots omit the parent field entirely.
        assert!(!trace[0].to_json().contains("parent"));
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let rec = Recorder::with_trace_capacity(4);
        for i in 0..10 {
            rec.on_dispatch(i as f64, "e", 0, i, None);
        }
        assert_eq!(rec.trace_len(), 4);
        assert_eq!(rec.trace_dropped(), 6);
        // Oldest records were dropped: the first retained is t=6.
        assert_eq!(rec.trace()[0].time, 6.0);
        let m = rec.manifest();
        assert_eq!(m.trace_records, 4);
        assert_eq!(m.trace_dropped, 6);
    }

    #[test]
    fn zero_capacity_disables_trace_but_not_metrics() {
        let rec = Recorder::with_trace_capacity(0);
        rec.on_dispatch(1.0, "e", 0, 0, None);
        rec.incr("c");
        assert_eq!(rec.trace_len(), 0);
        assert_eq!(rec.trace_dropped(), 1);
        assert_eq!(rec.events_dispatched(), 1);
        assert_eq!(rec.counter("c"), 1);
    }

    #[test]
    fn spans_profile_sim_and_wall_time() {
        let rec = Recorder::new();
        rec.on_span_enter(1.0, "outer");
        rec.on_span_enter(2.0, "inner");
        rec.on_span_exit(5.0, "inner");
        rec.on_span_exit(9.0, "outer");
        let spans = rec.span_stats();
        assert_eq!(spans["inner"].entries, 1);
        assert!((spans["inner"].sim_time - 3.0).abs() < 1e-12);
        assert!((spans["outer"].sim_time - 8.0).abs() < 1e-12);
        // Unmatched exits are tolerated.
        rec.on_span_exit(10.0, "ghost");
        assert!(!rec.span_stats().contains_key("ghost"));
    }

    #[test]
    fn registry_round_trips() {
        let rec = Recorder::new();
        rec.incr("a");
        rec.add("a", 2);
        rec.gauge_set("g", 0.0, 1.0);
        rec.gauge_set("g", 10.0, 3.0);
        rec.observe("t", 2.0);
        assert_eq!(rec.counter("a"), 3);
        let g = rec.gauge("g").expect("gauge exists");
        assert_eq!(g.value(), 3.0);
        assert!((g.mean() - 1.0).abs() < 1e-12);
        assert_eq!(rec.tally("t").expect("tally exists").len(), 1);
        assert_eq!(rec.counter("missing"), 0);
        assert!(rec.gauge("missing").is_none());
    }

    #[test]
    fn jsonl_exports_have_one_object_per_line() {
        let rec = Recorder::new();
        rec.set_run_info("test.model", 7, 0xfeed);
        rec.on_schedule(0.0, 1.0, "tick", 0, None);
        rec.on_dispatch(1.0, "tick", 0, 0, None);
        rec.incr("n");
        rec.gauge_set("g", 0.5, 2.0);
        rec.observe("lat", 0.25);
        rec.observe_at("lat_t", 0.75, 0.5);
        rec.on_span_enter(0.0, "s");
        rec.on_span_exit(1.0, "s");
        rec.on_run_end(1.0, 1);

        let mut trace = Vec::new();
        rec.write_trace_jsonl(&mut trace).expect("write trace");
        let trace = String::from_utf8(trace).expect("utf8");
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 4 + 1, "4 records + manifest");
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line}");
        }
        assert!(lines
            .last()
            .expect("manifest")
            .contains("\"kind\":\"manifest\""));
        assert!(lines
            .last()
            .expect("manifest")
            .contains("\"model\":\"test.model\""));

        let mut metrics = Vec::new();
        rec.write_metrics_jsonl(&mut metrics)
            .expect("write metrics");
        let metrics = String::from_utf8(metrics).expect("utf8");
        for kind in [
            "counter",
            "dispatches",
            "gauge",
            "tally",
            "span",
            "histogram",
            "series",
        ] {
            assert!(
                metrics.contains(&format!("\"kind\":\"{kind}\"")),
                "missing {kind} in {metrics}"
            );
        }
        assert!(metrics.contains("\"p99\":"), "tallies report p99");
        assert!(
            metrics
                .lines()
                .last()
                .expect("manifest")
                .contains("\"kind\":\"manifest\""),
            "metrics export is self-identifying"
        );
    }

    #[test]
    fn observe_at_feeds_tally_and_timed_stream() {
        let rec = Recorder::new();
        rec.observe_at("lat", 1.0, 0.2);
        rec.observe_at("lat", 3.0, 0.4);
        assert_eq!(rec.tally("lat").expect("tally exists").len(), 2);
        assert_eq!(
            rec.timed("lat").expect("stream exists"),
            vec![(1.0, 0.2), (3.0, 0.4)]
        );
        assert_eq!(rec.sim_time(), 3.0);
        assert!(rec.timed("missing").is_none());
    }

    #[test]
    fn shared_handle_sees_one_state() {
        let a = Recorder::new();
        let b = a.clone();
        a.incr("x");
        b.incr("x");
        assert_eq!(a.counter("x"), 2);
    }
}
