//! Granula-style fine-grained performance analysis (\[100\]).
//!
//! Granula moved Graphalytics from "low-depth analysis, which is typical
//! of benchmarks" to *deep* results: per-phase breakdowns of where a run
//! spends its time. Here a [`Breakdown`] decomposes a [`RunCost`] into
//! load/compute/aggregate phases and per-iteration compute shares, and
//! can diagnose the run's dominant cost — the kind of insight Grade10
//! later automated.

use crate::platforms::RunCost;

/// The phases of a graph-processing job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph loading and partitioning (modeled proportional to |V|+|E|).
    Load,
    /// The iterative computation.
    Compute,
    /// Result aggregation and write-back.
    Aggregate,
}

/// A per-phase performance breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Critical-path cost of loading.
    pub load: f64,
    /// Critical-path cost of computing (sum of iterations).
    pub compute: f64,
    /// Critical-path cost of aggregation.
    pub aggregate: f64,
    /// Per-iteration compute costs.
    pub iterations: Vec<f64>,
}

/// Load/aggregate cost factors relative to one full sweep.
const LOAD_FACTOR: f64 = 2.0;
const AGGREGATE_FACTOR: f64 = 0.25;

impl Breakdown {
    /// Builds the breakdown of a run on a graph with `n` vertices and
    /// `m` edges.
    pub fn of(cost: &RunCost, n: usize, m: usize) -> Self {
        let sweep = (n + m) as f64;
        Breakdown {
            load: sweep * LOAD_FACTOR,
            compute: cost.critical_path,
            aggregate: sweep * AGGREGATE_FACTOR,
            iterations: cost.per_iteration.iter().map(|r| r.critical_path).collect(),
        }
    }

    /// Total cost across phases.
    pub fn total(&self) -> f64 {
        self.load + self.compute + self.aggregate
    }

    /// The dominant phase.
    pub fn bottleneck(&self) -> Phase {
        if self.load >= self.compute && self.load >= self.aggregate {
            Phase::Load
        } else if self.compute >= self.aggregate {
            Phase::Compute
        } else {
            Phase::Aggregate
        }
    }

    /// Fraction of compute spent in the costliest single iteration —
    /// a straggler-iteration diagnostic.
    pub fn max_iteration_share(&self) -> f64 {
        if self.compute <= 0.0 {
            return 0.0;
        }
        self.iterations.iter().copied().fold(0.0, f64::max) / self.compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid, preferential_attachment};
    use crate::platforms::{run, Algorithm, Platform};

    #[test]
    fn phases_sum_to_total() {
        let g = grid(12);
        let c = run(Platform::Sequential, Algorithm::Wcc, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        assert!((b.total() - (b.load + b.compute + b.aggregate)).abs() < 1e-9);
        assert_eq!(b.iterations.len() as u32, c.iterations);
    }

    #[test]
    fn long_jobs_are_compute_bound_short_ones_load_bound() {
        // Grid BFS runs many iterations -> compute dominates; a power-law
        // BFS is over in a few sweeps -> loading dominates.
        let grid_g = grid(24);
        let c = run(Platform::Sequential, Algorithm::Bfs, &grid_g);
        let b = Breakdown::of(&c, grid_g.num_vertices(), grid_g.num_edges());
        assert_eq!(b.bottleneck(), Phase::Compute);

        let pl = preferential_attachment(20_000, 4, 3);
        let c2 = run(Platform::Parallel { threads: 8 }, Algorithm::Bfs, &pl);
        let b2 = Breakdown::of(&c2, pl.num_vertices(), pl.num_edges());
        assert_eq!(b2.bottleneck(), Phase::Load);
    }

    #[test]
    fn iteration_share_is_a_fraction() {
        let g = grid(10);
        let c = run(Platform::EdgeCentric, Algorithm::Wcc, &g);
        let b = Breakdown::of(&c, g.num_vertices(), g.num_edges());
        let s = b.max_iteration_share();
        assert!(s > 0.0 && s <= 1.0, "share {s}");
    }
}
