//! Design spaces.
//!
//! A design space pairs a set of candidate designs with a quality function.
//! The framework's two traditional problems — "identify the design space
//! and explore it efficiently" (§3.2) — become concrete here: spaces know
//! their neighborhoods, can be *constrained* along the What/How axes of
//! Figure 6, and can *evolve* into a new problem (the co-evolving
//! problem-solution of Figure 7).
//!
//! Two concrete spaces are provided:
//!
//! - [`RuggedSpace`] — an NK-style rugged fitness landscape over bit
//!   strings. Ruggedness (the `k` parameter) models the interaction between
//!   design decisions; high `k` makes local search stall, which is what
//!   makes the exploration-process comparison of Figure 6 non-trivial.
//! - [`TechnologySpace`] — a factored concept × relationship space that
//!   mirrors the reasoning universe of Figure 5: a design fixes one
//!   technology ("what") and one pattern ("how").

use rand::Rng;

/// Which decision axis an exploration process may vary (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Vary everything (free and co-evolving exploration).
    All,
    /// The technology is fixed; only relationships may vary
    /// ("Fix the What").
    HowOnly,
    /// The relationship kinds are fixed; only concepts may vary
    /// ("Fix the How" / re-framing).
    WhatOnly,
}

/// A design space: candidates, neighborhoods, and a quality function.
pub trait DesignSpace: Clone {
    /// The representation of one design.
    type Design: Clone + PartialEq;

    /// Samples a uniformly random design.
    fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Design;

    /// Neighbors of `design` reachable by one decision change along
    /// `axis`.
    fn neighbors(&self, design: &Self::Design, axis: Axis) -> Vec<Self::Design>;

    /// Quality of a design in `[0, 1]`; a design *satisfices* a problem
    /// when its quality reaches the problem's threshold (Simon's
    /// satisficing, §2.4).
    fn quality(&self, design: &Self::Design) -> f64;

    /// Normalized distance between two designs in `[0, 1]`; exploration
    /// reports use it as a novelty measure.
    fn distance(&self, a: &Self::Design, b: &Self::Design) -> f64;

    /// Evolves the *problem*: returns a successor space, as when a design
    /// team replaces the ecosystem that proved too limited (Figure 7 (b)).
    /// The default keeps the problem unchanged.
    fn evolve<R: Rng + ?Sized>(&self, _rng: &mut R) -> Self {
        self.clone()
    }

    /// log2 of the number of designs, as a size measure of the space.
    fn log2_size(&self) -> f64;
}

/// An NK-style rugged landscape over `n`-bit designs.
///
/// Each bit position contributes a fitness that depends on itself and its
/// `k` cyclic successors; contributions are derived from a seeded hash so
/// the landscape is deterministic. `k = 0` yields a smooth, single-peak
/// landscape; larger `k` yields many local optima.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuggedSpace {
    n: usize,
    k: usize,
    seed: u64,
}

impl RuggedSpace {
    /// Creates a landscape over `n` bits with interaction degree `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n` and `k < n`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(n > 0, "space needs at least one decision");
        assert!(k < n, "interaction degree must be below n");
        RuggedSpace { n, k, seed }
    }

    /// Number of binary decisions.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Interaction degree (ruggedness).
    pub fn k(&self) -> usize {
        self.k
    }

    fn contribution(&self, locus: usize, pattern: u64) -> f64 {
        // SplitMix64-style hash of (seed, locus, pattern) -> [0,1).
        let mut z = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(locus as u64)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(pattern);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl DesignSpace for RuggedSpace {
    type Design = Vec<bool>;

    fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<bool> {
        (0..self.n).map(|_| rng.gen()).collect()
    }

    fn neighbors(&self, design: &Vec<bool>, axis: Axis) -> Vec<Vec<bool>> {
        // The What axis is the first half of the bits (the technology
        // choices); the How axis is the second half (the relationships).
        let half = self.n / 2;
        let range: Vec<usize> = match axis {
            Axis::All => (0..self.n).collect(),
            Axis::HowOnly => (half..self.n).collect(),
            Axis::WhatOnly => (0..half).collect(),
        };
        range
            .into_iter()
            .map(|i| {
                let mut d = design.clone();
                d[i] = !d[i];
                d
            })
            .collect()
    }

    fn quality(&self, design: &Vec<bool>) -> f64 {
        assert_eq!(design.len(), self.n, "design dimension mismatch");
        let mut total = 0.0;
        for i in 0..self.n {
            let mut pattern = 0u64;
            for j in 0..=self.k {
                let bit = design[(i + j) % self.n] as u64;
                pattern = (pattern << 1) | bit;
            }
            total += self.contribution(i, pattern);
        }
        total / self.n as f64
    }

    fn distance(&self, a: &Vec<bool>, b: &Vec<bool>) -> f64 {
        let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
        diff as f64 / self.n as f64
    }

    fn evolve<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        // A new problem: a fresh landscape, somewhat smoother — the paper's
        // Figure 7 narrative has the evolved problem admit "many new
        // solutions relatively easily".
        RuggedSpace {
            n: self.n,
            k: self.k.saturating_sub(1),
            seed: rng.gen(),
        }
    }

    fn log2_size(&self) -> f64 {
        self.n as f64
    }
}

/// A factored concept × relationship space mirroring Figure 5's universe.
///
/// A design is a `(what, how)` index pair; quality comes from a dense
/// compatibility matrix. Fix-the-What freezes the first coordinate,
/// Fix-the-How the second.
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologySpace {
    concepts: Vec<String>,
    relationships: Vec<String>,
    /// `quality[w][h]` in `[0, 1]`.
    quality: Vec<Vec<f64>>,
}

impl TechnologySpace {
    /// Creates a space with a random but seeded compatibility matrix.
    ///
    /// # Panics
    ///
    /// Panics if either list is empty.
    pub fn seeded(concepts: Vec<String>, relationships: Vec<String>, seed: u64) -> Self {
        assert!(!concepts.is_empty() && !relationships.is_empty());
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let quality = (0..concepts.len())
            .map(|_| (0..relationships.len()).map(|_| rng.gen()).collect())
            .collect();
        TechnologySpace {
            concepts,
            relationships,
            quality,
        }
    }

    /// The concept ("what") names.
    pub fn concepts(&self) -> &[String] {
        &self.concepts
    }

    /// The relationship ("how") names.
    pub fn relationships(&self) -> &[String] {
        &self.relationships
    }

    /// Human-readable name of a design.
    pub fn describe(&self, d: &(usize, usize)) -> String {
        format!("{} via {}", self.concepts[d.0], self.relationships[d.1])
    }
}

impl DesignSpace for TechnologySpace {
    type Design = (usize, usize);

    fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        (
            rng.gen_range(0..self.concepts.len()),
            rng.gen_range(0..self.relationships.len()),
        )
    }

    fn neighbors(&self, &(w, h): &(usize, usize), axis: Axis) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        if axis != Axis::HowOnly {
            for nw in 0..self.concepts.len() {
                if nw != w {
                    out.push((nw, h));
                }
            }
        }
        if axis != Axis::WhatOnly {
            for nh in 0..self.relationships.len() {
                if nh != h {
                    out.push((w, nh));
                }
            }
        }
        out
    }

    fn quality(&self, &(w, h): &(usize, usize)) -> f64 {
        self.quality[w][h]
    }

    fn distance(&self, a: &(usize, usize), b: &(usize, usize)) -> f64 {
        ((a.0 != b.0) as u8 + (a.1 != b.1) as u8) as f64 / 2.0
    }

    fn log2_size(&self) -> f64 {
        ((self.concepts.len() * self.relationships.len()) as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quality_is_bounded_and_deterministic() {
        let s = RuggedSpace::new(16, 4, 3);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let d = s.random(&mut rng);
            let q = s.quality(&d);
            assert!((0.0..=1.0).contains(&q));
            assert_eq!(q, s.quality(&d));
        }
    }

    #[test]
    fn neighbors_respect_axes() {
        let s = RuggedSpace::new(10, 2, 1);
        let d = vec![false; 10];
        assert_eq!(s.neighbors(&d, Axis::All).len(), 10);
        assert_eq!(s.neighbors(&d, Axis::WhatOnly).len(), 5);
        assert_eq!(s.neighbors(&d, Axis::HowOnly).len(), 5);
        for n in s.neighbors(&d, Axis::WhatOnly) {
            // Only the first half may differ.
            assert!(n[5..].iter().all(|&b| !b));
        }
    }

    #[test]
    fn smooth_landscape_hill_climbs_to_optimum() {
        // k=0: each bit contributes independently; greedy ascent from
        // anywhere must reach the global optimum.
        let s = RuggedSpace::new(12, 0, 11);
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = s.random(&mut rng);
        loop {
            let cur = s.quality(&d);
            let best = s
                .neighbors(&d, Axis::All)
                .into_iter()
                .max_by(|a, b| s.quality(a).partial_cmp(&s.quality(b)).unwrap())
                .unwrap();
            if s.quality(&best) <= cur {
                break;
            }
            d = best;
        }
        // Exhaustive check: no design beats the climbed one.
        let q = s.quality(&d);
        for code in 0u32..(1 << 12) {
            let cand: Vec<bool> = (0..12).map(|i| (code >> i) & 1 == 1).collect();
            assert!(s.quality(&cand) <= q + 1e-12);
        }
    }

    #[test]
    fn evolve_smooths_the_problem() {
        let s = RuggedSpace::new(10, 4, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let e = s.evolve(&mut rng);
        assert_eq!(e.k(), 3);
        assert_eq!(e.n(), 10);
    }

    #[test]
    fn distance_is_normalized_hamming() {
        let s = RuggedSpace::new(4, 0, 0);
        let a = vec![false, false, true, true];
        let b = vec![false, true, true, false];
        assert_eq!(s.distance(&a, &b), 0.5);
        assert_eq!(s.distance(&a, &a), 0.0);
    }

    #[test]
    fn technology_space_axes() {
        let s = TechnologySpace::seeded(
            vec!["cache".into(), "cdn".into(), "replica".into()],
            vec!["lru".into(), "geo".into()],
            7,
        );
        let d = (0, 0);
        assert_eq!(s.neighbors(&d, Axis::All).len(), 3);
        assert_eq!(s.neighbors(&d, Axis::WhatOnly).len(), 2);
        assert_eq!(s.neighbors(&d, Axis::HowOnly).len(), 1);
        assert_eq!(s.describe(&(1, 1)), "cdn via geo");
        assert!((s.log2_size() - (6f64).log2()).abs() < 1e-12);
    }

    proptest! {
        /// Quality stays in [0,1] for arbitrary designs and parameters.
        #[test]
        fn prop_quality_bounded(n in 1usize..20, k_frac in 0.0f64..1.0, seed in 0u64..100, dseed in 0u64..100) {
            let k = ((n - 1) as f64 * k_frac) as usize;
            let s = RuggedSpace::new(n, k, seed);
            let mut rng = StdRng::seed_from_u64(dseed);
            let d = s.random(&mut rng);
            let q = s.quality(&d);
            prop_assert!((0.0..=1.0).contains(&q));
        }

        /// Distance is a metric-ish: symmetric, zero on identity, bounded.
        #[test]
        fn prop_distance(n in 1usize..16, seed in 0u64..50) {
            let s = RuggedSpace::new(n, 0, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let a = s.random(&mut rng);
            let b = s.random(&mut rng);
            prop_assert_eq!(s.distance(&a, &b), s.distance(&b, &a));
            prop_assert_eq!(s.distance(&a, &a), 0.0);
            prop_assert!(s.distance(&a, &b) <= 1.0);
        }
    }
}
