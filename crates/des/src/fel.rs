//! The sealed future-event-list (FEL) abstraction behind
//! [`EventQueue`](crate::queue::EventQueue).
//!
//! A FEL is the kernel's priority structure: it stores [`Entry`] values
//! and yields them in strictly increasing `(time, seq)` order. Two
//! implementations exist:
//!
//! - [`CalendarQueue`](crate::calendar::CalendarQueue) — the default: a
//!   Brown-style bucketed ring with adaptive bucket width and a
//!   sorted-overflow far-future band. Amortised O(1) insert and pop.
//! - [`BinaryHeapFel`] — the original `std::collections::BinaryHeap`
//!   backend, O(log n) per operation. Retained as the reference
//!   implementation: the equivalence suite runs both side by side on
//!   adversarial schedules and asserts identical pop sequences, and the
//!   `des_kernel` bench measures the speedup against it.
//!
//! The trait is **sealed**: the total order over `(time, seq)` is the
//! reproducibility contract of every simulation in the workspace, and
//! only implementations proven equivalent by the in-tree suite may back
//! an `EventQueue`.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A scheduled event: fires at `time`, with `seq` breaking ties so
/// simultaneous events run in scheduling order (FIFO at equal times).
/// `parent` is the id (`seq`) of the event whose handler scheduled this
/// one, or `None` for externally scheduled roots — the provenance edge
/// causal trace analysis walks.
#[derive(Debug, Clone)]
pub struct Entry<E> {
    /// Absolute simulated firing time. Always finite and non-negative
    /// (enforced at the `EventQueue` API boundary).
    pub time: f64,
    /// Dense, unique sequence number — the event's id and the tie-break.
    pub seq: u64,
    /// Causal parent id, `None` for external roots.
    pub parent: Option<u64>,
    /// The event payload.
    pub event: E,
}

impl<E> Entry<E> {
    /// The total-order key: lexicographic `(time, seq)`.
    #[inline]
    pub fn key(&self) -> (f64, u64) {
        (self.time, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Ascending (time, seq): the natural pop order. `total_cmp`
        // keeps this hot comparison panic-free; `push_from` already
        // rejects non-finite times at the API boundary, where IEEE
        // total order and the usual `<` agree.
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

mod private {
    /// Seals [`super::FutureEventList`]: only in-tree backends proven
    /// order-equivalent may implement it.
    pub trait Sealed {}
}

impl<E> private::Sealed for BinaryHeapFel<E> {}
impl<E> private::Sealed for crate::calendar::CalendarQueue<E> {}

/// A deterministic future-event list: entries come back in strictly
/// increasing `(time, seq)` order.
///
/// This trait is sealed; see the [module docs](self) for why. All
/// methods must preserve one invariant — for any interleaving of
/// `insert` and `pop_min`, the popped `(time, seq)` pairs are exactly
/// the sorted order of the inserted keys still present.
pub trait FutureEventList<E>: private::Sealed {
    /// Creates a FEL pre-sized for about `events` pending entries.
    fn with_capacity(events: usize) -> Self;

    /// Adds an entry. Keys (`(time, seq)`) are unique by construction:
    /// `EventQueue` assigns `seq` from a dense counter.
    fn insert(&mut self, entry: Entry<E>);

    /// Removes and returns the entry with the smallest `(time, seq)`.
    fn pop_min(&mut self) -> Option<Entry<E>>;

    /// Removes and returns the minimum entry only if its time is at
    /// most `horizon` — the single-traversal fused peek-then-pop the
    /// dispatch loop runs on.
    fn pop_min_until(&mut self, horizon: f64) -> Option<Entry<E>>;

    /// Time of the minimum entry without removing it.
    fn peek_min_time(&self) -> Option<f64>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// Whether no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all entries.
    fn clear(&mut self);

    /// Pre-reserves room for `additional` more entries.
    fn reserve(&mut self, additional: usize);
}

/// The reference FEL: a `std::collections::BinaryHeap` min-ordered via
/// [`Reverse`]. O(log n) insert and pop, with a full `(time, seq)`
/// comparison at every sift step — the cost profile the calendar queue
/// exists to beat. Kept for the side-by-side equivalence proptests and
/// the `des_kernel` benchmark.
#[derive(Debug)]
pub struct BinaryHeapFel<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for BinaryHeapFel<E> {
    fn default() -> Self {
        Self::with_capacity(0)
    }
}

impl<E> FutureEventList<E> for BinaryHeapFel<E> {
    fn with_capacity(events: usize) -> Self {
        BinaryHeapFel {
            heap: BinaryHeap::with_capacity(events),
        }
    }

    fn insert(&mut self, entry: Entry<E>) {
        self.heap.push(Reverse(entry));
    }

    fn pop_min(&mut self) -> Option<Entry<E>> {
        self.heap.pop().map(|r| r.0)
    }

    fn pop_min_until(&mut self, horizon: f64) -> Option<Entry<E>> {
        match self.heap.peek() {
            Some(r) if r.0.time <= horizon => self.heap.pop().map(|r| r.0),
            _ => None,
        }
    }

    fn peek_min_time(&self) -> Option<f64> {
        self.heap.peek().map(|r| r.0.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }

    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_order_is_time_then_seq() {
        let e = |time, seq| Entry {
            time,
            seq,
            parent: None,
            event: (),
        };
        assert!(e(1.0, 5) < e(2.0, 0));
        assert!(e(1.0, 1) < e(1.0, 2));
        assert_eq!(e(1.0, 1), e(1.0, 1));
    }

    #[test]
    fn heap_fel_pops_sorted_and_honours_horizon() {
        let mut fel = BinaryHeapFel::with_capacity(4);
        for (t, s) in [(3.0, 0), (1.0, 1), (2.0, 2), (1.0, 3)] {
            fel.insert(Entry {
                time: t,
                seq: s,
                parent: None,
                event: s,
            });
        }
        assert_eq!(fel.peek_min_time(), Some(1.0));
        assert!(fel.pop_min_until(0.5).is_none());
        let a = fel.pop_min_until(1.0).map(|e| e.key());
        assert_eq!(a, Some((1.0, 1)));
        let rest: Vec<_> = std::iter::from_fn(|| fel.pop_min().map(|e| e.key())).collect();
        assert_eq!(rest, vec![(1.0, 3), (2.0, 2), (3.0, 0)]);
        assert!(fel.is_empty());
    }
}
