//! Function pools on the parallel-in-time kernel.
//!
//! The sealed [`platform`](crate::platform) model routes every
//! invocation through one global [`FaasPlatform`] state — exact, but
//! serial. This module decomposes the platform the way real FaaS
//! deployments shard it: each *function's pool* (warm instances, busy
//! count, billing meter) is an independent [`LogicalProcess`], and
//! workflow chains hop between pools through the router. Every hop pays
//! the router overhead in transit, and that overhead is exactly the
//! kernel lookahead: no function can influence another's pool sooner
//! than `router_overhead`, so shards simulate independently between
//! router hops and the merged run is byte-identical at any shard count.
//!
//! Per-invocation semantics mirror the sealed platform: an invocation
//! pays `router_overhead` (here: in transit to the pool) plus
//! `cold_start` when no warm instance is idle, then `exec_time`; idle
//! instances are reclaimed `keep_alive` seconds after going idle.

use crate::platform::{FaasConfig, FunctionSpec};
use atlarge_des::shard::{
    LogicalProcess, PartitionError, ShardCtx, ShardedSimulation, StaticPartition,
};
use atlarge_telemetry::tracer::EventLabel;
use std::sync::Arc;

/// Events of one function pool.
#[derive(Debug, Clone)]
pub enum PoolEvent {
    /// A request arrives at this function's pool (router overhead
    /// already paid in transit).
    Invoke {
        /// Unique request id, assigned in arrival order.
        req: u64,
        /// Workflow chain the request follows.
        chain: u32,
        /// Stage of the chain this invocation executes.
        stage: u32,
        /// When the request originally arrived at the router.
        enqueued: f64,
        /// Cold starts paid by the request so far.
        cold_hops: u32,
    },
    /// An instance finishes executing.
    Finish {
        /// Request id.
        req: u64,
        /// Workflow chain.
        chain: u32,
        /// Completed stage.
        stage: u32,
        /// Original arrival time.
        enqueued: f64,
        /// Cold starts paid so far (including this stage's, if any).
        cold_hops: u32,
    },
    /// A keep-alive timer fires for an idle instance.
    Expire {
        /// When the instance went idle.
        idle_since: f64,
    },
}

impl EventLabel for PoolEvent {
    fn label(&self) -> &'static str {
        match self {
            PoolEvent::Invoke { .. } => "invoke",
            PoolEvent::Finish { .. } => "finish",
            PoolEvent::Expire { .. } => "expire",
        }
    }
}

/// End-to-end outcome of one workflow request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Request id (arrival order).
    pub req: u64,
    /// Arrival time at the router.
    pub enqueued: f64,
    /// End-to-end latency through the whole chain.
    pub latency: f64,
    /// Cold starts the request paid across its stages.
    pub cold_hops: u32,
}

/// Result of a sharded platform run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedFaasResult {
    /// Completed requests, sorted by request id.
    pub requests: Vec<RequestOutcome>,
    /// Total function invocations executed (stages, not requests).
    pub invocations: usize,
    /// Invocations that paid a cold start.
    pub cold: usize,
    /// Total GB-seconds billed.
    pub gb_seconds: f64,
}

impl ShardedFaasResult {
    /// Fraction of invocations that paid a cold start.
    pub fn cold_fraction(&self) -> f64 {
        self.cold as f64 / self.invocations.max(1) as f64
    }

    /// Mean end-to-end request latency.
    pub fn mean_latency(&self) -> f64 {
        self.requests.iter().map(|r| r.latency).sum::<f64>() / self.requests.len().max(1) as f64
    }

    /// End-to-end latencies sorted ascending (for percentile reads and
    /// order-insensitive comparisons).
    pub fn sorted_latencies(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.requests.iter().map(|r| r.latency).collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// One function's pool: the per-function slice of the sealed platform's
/// state, plus the routing table of the workflow chains.
pub struct FunctionPool {
    spec: FunctionSpec,
    config: FaasConfig,
    chains: Arc<Vec<Vec<usize>>>,
    /// Warm idle instances, keyed by when they went idle.
    idle: Vec<f64>,
    busy: usize,
    /// Requests whose *final* stage ran here.
    completed: Vec<RequestOutcome>,
    invocations: usize,
    cold: usize,
    gb_seconds: f64,
}

impl FunctionPool {
    fn new(spec: FunctionSpec, config: FaasConfig, chains: Arc<Vec<Vec<usize>>>) -> Self {
        FunctionPool {
            spec,
            config,
            chains,
            idle: Vec::new(),
            busy: 0,
            completed: Vec::new(),
            invocations: 0,
            cold: 0,
            gb_seconds: 0.0,
        }
    }
}

impl LogicalProcess for FunctionPool {
    type Event = PoolEvent;

    fn handle(&mut self, ev: PoolEvent, ctx: &mut ShardCtx<'_, PoolEvent>) {
        match ev {
            PoolEvent::Invoke {
                req,
                chain,
                stage,
                enqueued,
                cold_hops,
            } => {
                self.invocations += 1;
                let warm = self.idle.pop().is_some();
                self.busy += 1;
                let mut delay = self.spec.exec_time;
                let mut cold_hops = cold_hops;
                if !warm {
                    self.cold += 1;
                    cold_hops += 1;
                    delay += self.config.cold_start;
                }
                self.gb_seconds += self.spec.exec_time * self.spec.memory_gb;
                ctx.schedule_in(
                    delay,
                    PoolEvent::Finish {
                        req,
                        chain,
                        stage,
                        enqueued,
                        cold_hops,
                    },
                );
            }
            PoolEvent::Finish {
                req,
                chain,
                stage,
                enqueued,
                cold_hops,
            } => {
                self.busy = self.busy.saturating_sub(1);
                self.idle.push(ctx.now());
                ctx.schedule_in(
                    self.config.keep_alive,
                    PoolEvent::Expire {
                        idle_since: ctx.now(),
                    },
                );
                let next = self
                    .chains
                    .get(chain as usize)
                    .and_then(|c| c.get(stage as usize + 1))
                    .copied();
                match next {
                    Some(func) => {
                        // The next router hop: its overhead is the
                        // lookahead the partition declared, so this send
                        // is legal from any shard to any other.
                        ctx.send_in(
                            self.config.router_overhead,
                            func as u32,
                            PoolEvent::Invoke {
                                req,
                                chain,
                                stage: stage + 1,
                                enqueued,
                                cold_hops,
                            },
                        );
                    }
                    None => self.completed.push(RequestOutcome {
                        req,
                        enqueued,
                        latency: ctx.now() - enqueued,
                        cold_hops,
                    }),
                }
            }
            PoolEvent::Expire { idle_since } => {
                // Reclaim the instance only if it is still idle since then.
                if let Some(pos) = self.idle.iter().position(|&t| t == idle_since) {
                    self.idle.remove(pos);
                }
            }
        }
    }
}

/// Runs workflow chains over sharded function pools.
///
/// `chains` lists each workflow as a sequence of function indices;
/// `requests` lists `(arrival_time, chain_index)` pairs. Functions are
/// distributed over `shards` shards block-wise with the router overhead
/// as lookahead (it must be strictly positive). The result is
/// byte-identical for every `shards`/`threads` combination.
///
/// # Panics
///
/// Panics if a chain is empty or names an unknown function, mirroring
/// [`FaasPlatform::new`](crate::platform::FaasPlatform::new)'s
/// up-front registry validation.
pub fn run_sharded_platform(
    functions: Vec<FunctionSpec>,
    config: FaasConfig,
    chains: Vec<Vec<usize>>,
    requests: &[(f64, usize)],
    seed: u64,
    shards: usize,
    threads: usize,
) -> Result<ShardedFaasResult, PartitionError> {
    assert!(!functions.is_empty(), "register at least one function");
    for chain in &chains {
        assert!(!chain.is_empty(), "workflow chains must have a stage");
        for &f in chain {
            assert!(f < functions.len(), "chain names unknown function {f}");
        }
    }
    let part = StaticPartition::block(functions.len(), shards, config.router_overhead);
    let chains = Arc::new(chains);
    let lps: Vec<FunctionPool> = functions
        .into_iter()
        .map(|spec| FunctionPool::new(spec, config, Arc::clone(&chains)))
        .collect();
    let mut sim: ShardedSimulation<_, _> =
        ShardedSimulation::new(part, lps, seed)?.with_threads(threads);
    for (req, &(t, chain)) in requests.iter().enumerate() {
        let Some(entry) = chains.get(chain).and_then(|c| c.first()).copied() else {
            continue;
        };
        // The entry router hop: requests reach the first pool one
        // router overhead after arriving at the router.
        sim.schedule(
            t + config.router_overhead,
            entry as u32,
            PoolEvent::Invoke {
                req: req as u64,
                chain: chain as u32,
                stage: 0,
                enqueued: t,
                cold_hops: 0,
            },
        );
    }
    sim.run();
    let mut requests_out = Vec::new();
    let mut invocations = 0;
    let mut cold = 0;
    let mut gb_seconds = 0.0;
    for pool in sim.into_lps() {
        requests_out.extend(pool.completed);
        invocations += pool.invocations;
        cold += pool.cold;
        gb_seconds += pool.gb_seconds;
    }
    requests_out.sort_by_key(|r| r.req);
    Ok(ShardedFaasResult {
        requests: requests_out,
        invocations,
        cold,
        gb_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::run_platform;

    fn specs(n: usize) -> Vec<FunctionSpec> {
        (0..n)
            .map(|i| FunctionSpec {
                name: format!("f{i}"),
                exec_time: 0.05 + 0.01 * i as f64,
                memory_gb: 0.128,
            })
            .collect()
    }

    #[test]
    fn results_are_identical_at_every_shard_and_thread_count() {
        let chains = vec![vec![0, 1, 2], vec![3, 4, 5], vec![2, 4], vec![5]];
        let requests: Vec<(f64, usize)> = (0..40).map(|i| (i as f64 * 0.3, i % 4)).collect();
        let reference = run_sharded_platform(
            specs(6),
            FaasConfig::default(),
            chains.clone(),
            &requests,
            5,
            1,
            1,
        )
        .expect("valid run");
        assert_eq!(reference.requests.len(), 40);
        for shards in [2usize, 3, 6] {
            for threads in [1usize, 2] {
                let got = run_sharded_platform(
                    specs(6),
                    FaasConfig::default(),
                    chains.clone(),
                    &requests,
                    5,
                    shards,
                    threads,
                )
                .expect("valid run");
                assert_eq!(
                    got, reference,
                    "platform diverged at {shards} shards / {threads} threads"
                );
            }
        }
    }

    #[test]
    fn single_stage_chains_match_the_sealed_platform() {
        // On one-function workflows the sharded pools degenerate to the
        // sealed platform's per-invocation semantics: router overhead +
        // optional cold start + exec time, with keep-alive reuse.
        let requests: Vec<(f64, usize)> = (0..20).map(|i| (i as f64 * 1.7, i % 3)).collect();
        let chains = vec![vec![0], vec![1], vec![2]];
        let sharded =
            run_sharded_platform(specs(3), FaasConfig::default(), chains, &requests, 9, 3, 2)
                .expect("valid run");
        let invocations: Vec<(f64, usize)> = requests.iter().map(|&(t, c)| (t, c)).collect();
        let sealed = run_platform(specs(3), FaasConfig::default(), &invocations, 9);
        let mut sealed_lat = sealed.latencies.clone();
        sealed_lat.sort_by(f64::total_cmp);
        let got = sharded.sorted_latencies();
        assert_eq!(got.len(), sealed_lat.len());
        for (g, s) in got.iter().zip(&sealed_lat) {
            // The sealed engine sums router + exec (+ cold) in one
            // expression; the sharded run splits the router hop out, so
            // the two associate differently — equal up to rounding.
            assert!((g - s).abs() < 1e-12, "latency {g} vs sealed {s}");
        }
        assert_eq!(sharded.cold_fraction(), sealed.cold_fraction);
        assert!((sharded.gb_seconds - sealed.gb_seconds).abs() < 1e-12);
    }

    #[test]
    fn chain_latency_adds_router_hops_and_cold_starts() {
        let config = FaasConfig::default();
        let result = run_sharded_platform(specs(2), config, vec![vec![0, 1]], &[(0.0, 0)], 1, 2, 2)
            .expect("valid run");
        assert_eq!(result.requests.len(), 1);
        let r = result.requests[0];
        assert_eq!(r.cold_hops, 2, "both stages start cold");
        let expected = 2.0 * config.router_overhead + 2.0 * config.cold_start + 0.05 + 0.06;
        assert!(
            (r.latency - expected).abs() < 1e-9,
            "latency {} expected {expected}",
            r.latency
        );
    }

    #[test]
    fn warm_instances_are_reused_within_keep_alive() {
        let result = run_sharded_platform(
            specs(2),
            FaasConfig::default(),
            vec![vec![0, 1]],
            &[(0.0, 0), (10.0, 0)],
            1,
            2,
            1,
        )
        .expect("valid run");
        assert_eq!(result.invocations, 4);
        assert_eq!(result.cold, 2, "second request must run warm end to end");
        assert_eq!(result.requests[1].cold_hops, 0);
        assert!(result.requests[1].latency < result.requests[0].latency);
    }

    #[test]
    fn zero_router_overhead_is_rejected() {
        let config = FaasConfig {
            router_overhead: 0.0,
            ..FaasConfig::default()
        };
        let err = run_sharded_platform(specs(2), config, vec![vec![0]], &[], 1, 2, 1).err();
        assert!(
            matches!(err, Some(PartitionError::BadLookahead { .. })),
            "expected BadLookahead, got {err:?}"
        );
    }
}
