//! `atlarge-lint` — workspace determinism & simulation-purity static
//! analysis.
//!
//! The AtLarge reproduction stakes everything on sound, repeatable
//! experiments: the campaign engine guarantees serial ≡ parallel
//! byte-identical results, the DES kernel guarantees same seed ⇒ same
//! trace. Those guarantees rest on coding rules — no wall-clock reads
//! in simulation code, no ambient entropy, no hash-order iteration
//! reaching results, no panicking shortcuts in kernel hot paths, no
//! order-sensitive float accumulation over merged results. This crate
//! turns the rules into machine-checked invariants, the same way
//! METHODA argues experiment toolchains need automated soundness gates.
//!
//! # Pipeline
//!
//! 1. [`lexer`] — a small Rust lexer: comments, strings, lifetimes and
//!    numeric literals are understood, so lints never fire inside a
//!    string or doc comment.
//! 2. [`lints`] — the catalogue: `wall-clock-in-sim`, `entropy-rng`,
//!    `unordered-iteration`, `panic-in-kernel`,
//!    `float-accumulation-order`.
//! 3. [`allow`] — the `#[allow_atlarge(lint, reason = "...")]` comment
//!    allowlist; reasons are mandatory, stale directives are flagged.
//! 4. [`config`] — `lint.toml`: scan roots plus per-lint `scope` /
//!    `exempt` path prefixes and `include_tests`.
//! 5. [`engine`] — walks the workspace, masks `#[cfg(test)]` regions,
//!    applies directives, and emits a stable-ordered [`engine::Report`].
//!
//! # Running
//!
//! ```sh
//! cargo run -p atlarge-lint                  # human diagnostics
//! cargo run -p atlarge-lint -- --format json # JSONL for tooling
//! ```
//!
//! Exit code 0 means zero non-allowlisted diagnostics; 1 means the
//! determinism contract has a hole; 2 means usage error.

pub mod allow;
pub mod config;
pub mod engine;
pub mod lexer;
pub mod lints;
pub mod parser;
pub mod structural;

pub use config::LintConfig;
pub use engine::{lint_source, lint_workspace, Diagnostic, Report};
