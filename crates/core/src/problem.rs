//! Problem structure and the problem-finding process (§2.4, §3.4).
//!
//! Simon's criteria separate well-structured from ill-structured problems;
//! Rittel & Webber's wicked problems lack final formulation altogether. The
//! ATLARGE framework does not claim to find all problems; it proposes five
//! *problem archetypes* (P1–P5) and three *sources* (S1–S3), implemented
//! here as a generative catalog the experiments and examples draw from.

use std::fmt;

/// Simon's five characteristics of a well-structured problem (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StructureChecklist {
    /// (1) A criterion exists to automatically evaluate results.
    pub automatic_evaluation: bool,
    /// (2) Goal, states, and legal transitions are unambiguous.
    pub unambiguous_representation: bool,
    /// (3) All domain knowledge can be represented clearly.
    pub complete_domain_knowledge: bool,
    /// (4) Interaction with the natural world can be captured accurately.
    pub accurate_nature_interface: bool,
    /// (5) The problem is tractable.
    pub tractable: bool,
}

impl StructureChecklist {
    /// A fully well-structured checklist.
    pub fn all_true() -> Self {
        StructureChecklist {
            automatic_evaluation: true,
            unambiguous_representation: true,
            complete_domain_knowledge: true,
            accurate_nature_interface: true,
            tractable: true,
        }
    }

    /// How many of the five characteristics hold.
    pub fn satisfied(&self) -> usize {
        [
            self.automatic_evaluation,
            self.unambiguous_representation,
            self.complete_domain_knowledge,
            self.accurate_nature_interface,
            self.tractable,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// Degree of problem structure (§2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Wickedness {
    /// All five Simon characteristics hold.
    WellStructured,
    /// At least one characteristic fails but stakeholders agree on what
    /// success means.
    IllStructured,
    /// No clear/final formulation; competing stakeholder interests; no
    /// universal success criterion.
    Wicked,
}

impl Wickedness {
    /// Classifies a problem from its checklist and stakeholder agreement.
    pub fn classify(checklist: &StructureChecklist, stakeholders_agree: bool) -> Self {
        if !stakeholders_agree {
            Wickedness::Wicked
        } else if checklist.satisfied() == 5 {
            Wickedness::WellStructured
        } else {
            Wickedness::IllStructured
        }
    }
}

impl fmt::Display for Wickedness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Wickedness::WellStructured => "well-structured",
            Wickedness::IllStructured => "ill-structured",
            Wickedness::Wicked => "wicked",
        })
    }
}

/// The five problem archetypes of §3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProblemArchetype {
    /// P1: ecosystem life-cycle problems (new/emerging processes,
    /// services, ecosystems).
    EcosystemLifecycle,
    /// P2: new/emerging needs of clients and operators; phenomena; new
    /// technology.
    EmergingNeeds,
    /// P3: leveraging and maintaining legacy components.
    Legacy,
    /// P4: understanding how technology works in practice (ecosystem
    /// morphology, natural-science style).
    Morphology,
    /// P5: previously unexplored parts of the design space
    /// (mathematics-style curiosity).
    UnexploredSpace,
}

impl ProblemArchetype {
    /// All archetypes P1–P5.
    pub fn all() -> [ProblemArchetype; 5] {
        [
            ProblemArchetype::EcosystemLifecycle,
            ProblemArchetype::EmergingNeeds,
            ProblemArchetype::Legacy,
            ProblemArchetype::Morphology,
            ProblemArchetype::UnexploredSpace,
        ]
    }

    /// The paper's index (P1..P5).
    pub fn index(&self) -> u8 {
        match self {
            ProblemArchetype::EcosystemLifecycle => 1,
            ProblemArchetype::EmergingNeeds => 2,
            ProblemArchetype::Legacy => 3,
            ProblemArchetype::Morphology => 4,
            ProblemArchetype::UnexploredSpace => 5,
        }
    }

    /// The sources §3.4 recommends for this archetype.
    pub fn sources(&self) -> Vec<ProblemSource> {
        match self {
            ProblemArchetype::EcosystemLifecycle
            | ProblemArchetype::EmergingNeeds
            | ProblemArchetype::Legacy => vec![
                ProblemSource::PeerReviewedStudies,
                ProblemSource::ExpertDiscussion,
                ProblemSource::ThoughtAndLabExperiments,
            ],
            ProblemArchetype::Morphology => vec![ProblemSource::EmpiricalScience],
            ProblemArchetype::UnexploredSpace => vec![ProblemSource::MorphologicalAnalysis],
        }
    }
}

/// Where problems come from (§3.4: S1–S3, plus the P4/P5 processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemSource {
    /// S1: qualitative/quantitative studies on ecosystems.
    PeerReviewedStudies,
    /// S2: experts, technical reports, best-practice books.
    ExpertDiscussion,
    /// S3: own thought and lab experiments on trends and limitations.
    ThoughtAndLabExperiments,
    /// P4 process: data-driven empirical science over workloads and
    /// operations.
    EmpiricalScience,
    /// P5 process: morphological analysis to spot unoccupied niches.
    MorphologicalAnalysis,
}

/// A design problem: statement, archetype, structure, and the satisficing
/// threshold its solutions must reach.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    /// One-line problem statement.
    pub statement: String,
    /// Which archetype the problem instantiates.
    pub archetype: ProblemArchetype,
    /// Structure classification.
    pub wickedness: Wickedness,
    /// Quality a design must reach to satisfice, in `[0, 1]`.
    pub satisficing_threshold: f64,
}

impl Problem {
    /// Creates a problem.
    ///
    /// # Panics
    ///
    /// Panics unless the threshold lies in `[0, 1]`.
    pub fn new(
        statement: &str,
        archetype: ProblemArchetype,
        wickedness: Wickedness,
        satisficing_threshold: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&satisficing_threshold),
            "threshold in [0,1]"
        );
        Problem {
            statement: statement.to_string(),
            archetype,
            wickedness,
            satisficing_threshold,
        }
    }
}

/// The problem catalog: one seeded problem per archetype, drawn from the
/// paper's own case studies. Used by examples and the Fig-8 experiment.
pub fn catalog() -> Vec<Problem> {
    vec![
        Problem::new(
            "orchestrate fragmented cloud workloads across providers",
            ProblemArchetype::EcosystemLifecycle,
            Wickedness::Wicked,
            0.7,
        ),
        Problem::new(
            "meet elasticity NFRs for workflow-based cloud workloads",
            ProblemArchetype::EmergingNeeds,
            Wickedness::IllStructured,
            0.7,
        ),
        Problem::new(
            "keep non-cloud-native legacy services operating efficiently",
            ProblemArchetype::Legacy,
            Wickedness::IllStructured,
            0.65,
        ),
        Problem::new(
            "characterize the global BitTorrent ecosystem's operation",
            ProblemArchetype::Morphology,
            Wickedness::WellStructured,
            0.75,
        ),
        Problem::new(
            "explore scheduling-portfolio designs nobody has tried",
            ProblemArchetype::UnexploredSpace,
            Wickedness::IllStructured,
            0.7,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_simon() {
        let all = StructureChecklist::all_true();
        assert_eq!(Wickedness::classify(&all, true), Wickedness::WellStructured);
        let mut partial = all;
        partial.tractable = false;
        assert_eq!(
            Wickedness::classify(&partial, true),
            Wickedness::IllStructured
        );
        assert_eq!(Wickedness::classify(&all, false), Wickedness::Wicked);
    }

    #[test]
    fn checklist_counts() {
        assert_eq!(StructureChecklist::all_true().satisfied(), 5);
        assert_eq!(StructureChecklist::default().satisfied(), 0);
    }

    #[test]
    fn archetypes_indexed_p1_to_p5() {
        let idx: Vec<u8> = ProblemArchetype::all().iter().map(|a| a.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn p1_to_p3_use_s1_to_s3() {
        for a in [
            ProblemArchetype::EcosystemLifecycle,
            ProblemArchetype::EmergingNeeds,
            ProblemArchetype::Legacy,
        ] {
            assert_eq!(a.sources().len(), 3);
        }
        assert_eq!(
            ProblemArchetype::Morphology.sources(),
            vec![ProblemSource::EmpiricalScience]
        );
        assert_eq!(
            ProblemArchetype::UnexploredSpace.sources(),
            vec![ProblemSource::MorphologicalAnalysis]
        );
    }

    #[test]
    fn catalog_covers_every_archetype() {
        let cat = catalog();
        for a in ProblemArchetype::all() {
            assert!(
                cat.iter().any(|p| p.archetype == a),
                "archetype {a:?} missing from catalog"
            );
        }
    }

    #[test]
    fn wickedness_orders_by_difficulty() {
        assert!(Wickedness::WellStructured < Wickedness::IllStructured);
        assert!(Wickedness::IllStructured < Wickedness::Wicked);
        assert_eq!(Wickedness::Wicked.to_string(), "wicked");
    }
}
