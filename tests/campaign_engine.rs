//! Property tests for the `atlarge-exp` campaign engine: the
//! determinism, independence, and seed-separation guarantees every
//! Section-6 harness now relies on.

use atlarge::exp::seed::derive_seed;
use atlarge::exp::{Campaign, Scenario};
use atlarge::telemetry::tracer::Tracer;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A stochastic scenario: a seeded random walk whose outcome depends on
/// every bit of the seed and on the configured length.
#[derive(Debug, Clone, Copy)]
struct WalkScenario;

impl Scenario for WalkScenario {
    type Config = usize;
    type Outcome = f64;

    fn run(&self, steps: &usize, seed: u64, _tracer: &dyn Tracer) -> f64 {
        let mut state = seed | 1;
        let mut sum = 0.0;
        for _ in 0..*steps {
            // xorshift64 keeps the walk cheap and seed-sensitive.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            sum += (state % 1_000) as f64 / 1_000.0 - 0.5;
        }
        sum
    }
}

fn walk_campaign(
    levels: usize,
    replications: usize,
    root_seed: u64,
    threads: usize,
) -> atlarge::exp::CampaignResult<usize, f64> {
    Campaign::new("prop.walk", WalkScenario)
        .factor("steps", (1..=levels).map(|s| (s * 10).to_string()))
        .replications(replications)
        .root_seed(root_seed)
        .threads(threads)
        .run(|cell| cell.level("steps").parse().expect("steps level parses"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Serial and parallel execution of the same campaign produce
    /// identical `CampaignResult`s — outcomes, seeds, manifests — for
    /// any root seed, grid size, and thread count.
    #[test]
    fn prop_serial_equals_parallel(
        root in 0u64..u64::MAX,
        levels in 1usize..6,
        replications in 1usize..4,
        threads in 2usize..8,
    ) {
        let serial = walk_campaign(levels, replications, root, 1);
        let parallel = walk_campaign(levels, replications, root, threads);
        prop_assert_eq!(&serial, &parallel);
        prop_assert!(serial.manifest().same_run_as(&parallel.manifest()));
    }

    /// (b) Distinct replications of a stochastic scenario produce
    /// nonzero variance: the replication seeds are genuinely different
    /// streams, not one stream repeated.
    #[test]
    fn prop_replications_vary(root in 0u64..u64::MAX, levels in 1usize..4) {
        let r = walk_campaign(levels, 8, root, 1);
        for cell in &r.cells {
            let s = cell.summarize(|&y| y);
            prop_assert!(
                s.variance() > 0.0,
                "cell {} collapsed to a single outcome across 8 replications",
                cell.spec.label()
            );
        }
    }

    /// (c) Derived sub-seeds are pairwise distinct across a 10k-cell
    /// grid, for any root seed and replication index.
    #[test]
    fn prop_derived_seeds_distinct_across_10k_cells(
        root in 0u64..u64::MAX,
        replication in 0u64..4,
    ) {
        let mut seen = BTreeSet::new();
        for cell in 0..10_000u64 {
            prop_assert!(
                seen.insert(derive_seed(root, cell, replication)),
                "seed collision at cell {cell} (root {root}, replication {replication})"
            );
        }
    }

    /// Replications are also distinct from each other for a fixed cell,
    /// and cells from replications: the two derivation axes do not alias.
    #[test]
    fn prop_seed_axes_do_not_alias(root in 0u64..u64::MAX) {
        let mut seen = BTreeSet::new();
        for cell in 0..100u64 {
            for replication in 0..100u64 {
                prop_assert!(
                    seen.insert(derive_seed(root, cell, replication)),
                    "collision at cell {cell} x replication {replication}"
                );
            }
        }
    }
}

/// Two executions of the same campaign render byte-identical output —
/// the end-to-end regression guard for the `unordered-iteration` lint:
/// no iteration-order nondeterminism anywhere between scenario outcomes
/// and the exported JSONL (the manifest line's digest included).
#[test]
fn identical_campaign_output_across_two_runs() {
    let render = || {
        let r = walk_campaign(4, 3, 2026, 4);
        let mut buf = Vec::new();
        let mean: &dyn Fn(&f64) -> f64 = &|&y| y;
        r.write_metrics_jsonl(&mut buf, &[("walk", mean)])
            .expect("in-memory write succeeds");
        // Drop the manifest's wall_ms field (report-only, wall-clock):
        // everything else must match byte-for-byte.
        let text = String::from_utf8(buf).expect("JSONL is UTF-8");
        text.lines()
            .map(|l| match l.find("\"wall_ms\"") {
                Some(i) => &l[..i],
                None => l,
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(), render());
}
