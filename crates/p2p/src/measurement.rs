//! Sampling bias in ecosystem measurements (\[65\]).
//!
//! \[65\] is the meta-analysis row of Table 5: "study the systematic bias
//! introduced by the measurement instruments, and ... catalog and
//! characterize various sources of bias". Here a ground-truth ecosystem of
//! swarms is observed through imperfect instruments — partial tracker
//! coverage, peer-sampling, and short observation windows — and each
//! instrument's view of the swarm-size distribution is compared to truth
//! by total-variation distance.

use atlarge_stats::dist::{Sample, Zipf};
use atlarge_stats::histogram::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground truth: swarm sizes across the ecosystem.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// Swarm sizes (concurrent peers), one per swarm.
    pub sizes: Vec<u64>,
    /// Which tracker hosts each swarm.
    pub tracker_of: Vec<usize>,
    /// Number of trackers.
    pub trackers: usize,
}

impl GroundTruth {
    /// Generates a Zipf-sized ecosystem over `swarms` swarms and
    /// `trackers` trackers.
    pub fn generate(swarms: usize, trackers: usize, seed: u64) -> Self {
        assert!(swarms > 0 && trackers > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(100_000, 1.1);
        let sizes = (0..swarms).map(|_| zipf.sample(&mut rng) as u64).collect();
        let tracker_of = (0..swarms).map(|_| rng.gen_range(0..trackers)).collect();
        GroundTruth {
            sizes,
            tracker_of,
            trackers,
        }
    }

    fn histogram_of(&self, sizes: impl Iterator<Item = u64>) -> Histogram {
        // Log-scale bins over swarm sizes.
        let mut h = Histogram::new(0.0, 6.0, 24);
        for s in sizes {
            h.record((s.max(1) as f64).log10());
        }
        h
    }

    /// Histogram of the true size distribution (log10 bins).
    pub fn true_histogram(&self) -> Histogram {
        self.histogram_of(self.sizes.iter().copied())
    }
}

/// A measurement instrument with explicit bias sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instrument {
    /// Fraction of trackers the instrument scrapes.
    pub tracker_coverage: f64,
    /// Probability each peer is observed when a swarm is scraped
    /// (short-window and NAT effects undercount peers).
    pub peer_detection: f64,
    /// Swarms below this observed size are dropped (crawler cut-off).
    pub min_observable: u64,
}

impl Instrument {
    /// A BTWorld-like wide-but-shallow instrument.
    pub fn wide() -> Self {
        Instrument {
            tracker_coverage: 0.9,
            peer_detection: 0.8,
            min_observable: 1,
        }
    }

    /// A MultiProbe-like deep-but-narrow instrument.
    pub fn narrow() -> Self {
        Instrument {
            tracker_coverage: 0.2,
            peer_detection: 0.95,
            min_observable: 1,
        }
    }

    /// Observes the ecosystem; returns the observed sizes.
    pub fn observe(&self, truth: &GroundTruth, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let covered: Vec<bool> = (0..truth.trackers)
            .map(|_| rng.gen::<f64>() < self.tracker_coverage)
            .collect();
        truth
            .sizes
            .iter()
            .zip(&truth.tracker_of)
            .filter(|&(_, &t)| covered[t])
            .filter_map(|(&size, _)| {
                // Binomial thinning approximated by expectation with noise.
                let seen = (size as f64 * self.peer_detection * (0.9 + 0.2 * rng.gen::<f64>()))
                    .round() as u64;
                (seen >= self.min_observable).then_some(seen.max(1))
            })
            .collect()
    }

    /// Total-variation distance between the instrument's view of the
    /// size distribution and the truth — the bias statistic.
    pub fn bias(&self, truth: &GroundTruth, seed: u64) -> f64 {
        let observed = self.observe(truth, seed);
        let view = truth.histogram_of(observed.into_iter());
        truth.true_histogram().total_variation(&view)
    }
}

/// The bias-vs-coverage ablation: sweeps tracker coverage and reports
/// `(coverage, bias)` rows.
pub fn coverage_ablation(truth: &GroundTruth, seed: u64) -> Vec<(f64, f64)> {
    [0.1, 0.25, 0.5, 0.75, 0.95]
        .iter()
        .map(|&cov| {
            let inst = Instrument {
                tracker_coverage: cov,
                peer_detection: 0.9,
                min_observable: 1,
            };
            (cov, inst.bias(truth, seed))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::generate(5_000, 40, 17)
    }

    #[test]
    fn perfect_instrument_has_low_bias() {
        let perfect = Instrument {
            tracker_coverage: 1.0,
            peer_detection: 1.0,
            min_observable: 1,
        };
        let b = perfect.bias(&truth(), 2);
        assert!(b < 0.1, "perfect instrument bias {b}");
    }

    #[test]
    fn cutoff_censors_small_swarms() {
        let t = truth();
        let cutty = Instrument {
            tracker_coverage: 1.0,
            peer_detection: 1.0,
            min_observable: 50,
        };
        let seen = cutty.observe(&t, 3);
        assert!(seen.len() < t.sizes.len() / 2, "cut-off should censor most");
        assert!(cutty.bias(&t, 3) > 0.2);
    }

    #[test]
    fn undercounting_shifts_distribution() {
        let t = truth();
        let shallow = Instrument {
            tracker_coverage: 1.0,
            peer_detection: 0.3,
            min_observable: 1,
        };
        assert!(shallow.bias(&t, 4) > 0.05);
    }

    #[test]
    fn wide_sees_more_swarms_than_narrow() {
        let t = truth();
        let w = Instrument::wide().observe(&t, 5).len();
        let n = Instrument::narrow().observe(&t, 5).len();
        assert!(w > 2 * n, "wide {w} vs narrow {n}");
    }

    #[test]
    fn coverage_ablation_is_monotone_ish() {
        // More coverage, less bias (the ablation DESIGN.md calls out).
        let rows = coverage_ablation(&truth(), 6);
        assert_eq!(rows.len(), 5);
        let first = rows.first().unwrap().1;
        let last = rows.last().unwrap().1;
        assert!(
            last < first,
            "bias should fall with coverage: {first} -> {last}"
        );
    }
}
