//! Metric time-series analysis: windowed aggregation and exported
//! histogram quantiles.

use crate::jsonl::Json;

/// A `kind:"series"` metrics line: a timed metric stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesLine {
    /// Metric name.
    pub name: String,
    /// Exported `(t, value)` points (possibly capped by the writer).
    pub points: Vec<(f64, f64)>,
    /// Points the writer omitted beyond its export cap.
    pub omitted: u64,
}

/// A `kind:"histogram"` metrics line: fixed-bin counts over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramLine {
    /// Metric name.
    pub name: String,
    /// Range start.
    pub lo: f64,
    /// Range end.
    pub hi: f64,
    /// Per-bin counts.
    pub bins: Vec<u64>,
}

impl SeriesLine {
    /// Reads a parsed metrics line; `None` if it is not a series.
    pub fn from_json(v: &Json) -> Option<SeriesLine> {
        if v.str_field("kind") != Some("series") {
            return None;
        }
        let points = v
            .get("points")?
            .as_arr()?
            .iter()
            .filter_map(|p| {
                let p = p.as_arr()?;
                Some((p.first()?.as_f64()?, p.get(1)?.as_f64()?))
            })
            .collect();
        Some(SeriesLine {
            name: v.str_field("name")?.to_string(),
            points,
            omitted: v.u64_field("omitted").unwrap_or(0),
        })
    }
}

impl HistogramLine {
    /// Reads a parsed metrics line; `None` if it is not a histogram.
    pub fn from_json(v: &Json) -> Option<HistogramLine> {
        if v.str_field("kind") != Some("histogram") {
            return None;
        }
        Some(HistogramLine {
            name: v.str_field("name")?.to_string(),
            lo: v.f64_field("lo")?,
            hi: v.f64_field("hi")?,
            bins: v
                .get("bins")?
                .as_arr()?
                .iter()
                .map(|b| b.as_u64())
                .collect::<Option<Vec<u64>>>()?,
        })
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Nearest-rank quantile estimate: the upper edge of the bin holding
    /// the sample of rank `ceil(q * count)` — the same estimator as
    /// `atlarge_stats::histogram::Histogram::quantile`, applied to the
    /// exported bins. Within one bin width of the exact quantile for
    /// in-range samples. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.count();
        if total == 0 || self.bins.is_empty() {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(self.lo + width * (i + 1) as f64);
            }
        }
        unreachable!("cumulative count reaches total")
    }

    /// The standard latency triple: (p50, p95, p99).
    pub fn percentiles(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.quantile(0.50)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
        ))
    }
}

/// A `kind:"pulse"` line from the exploration server's `/watch`
/// stream: one aggregation window of live serving telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseLine {
    /// Server uptime at window close, milliseconds (wall, report-only).
    pub t_ms: f64,
    /// Window length, milliseconds.
    pub window_ms: f64,
    /// Requests whose spans completed inside the window.
    pub requests: u64,
    /// Requests per second over the window.
    pub rps: f64,
    /// Cache hit rate among answered queries, `[0, 1]`.
    pub hit_rate: f64,
    /// Shed (`503`) fraction of admission decisions, `[0, 1]`.
    pub shed_rate: f64,
    /// Server errors inside the window.
    pub errors: u64,
    /// Pool queue depth sampled at window close.
    pub queue_depth: u64,
    /// End-to-end latency median; `None` for an empty window.
    pub p50_ms: Option<f64>,
    /// End-to-end latency p99; `None` for an empty window.
    pub p99_ms: Option<f64>,
    /// SLO state: `"ok"`, `"warn"`, or `"critical"`.
    pub slo_state: String,
    /// Whether the availability objective is not critically burning.
    pub slo_healthy: bool,
}

impl PulseLine {
    /// Reads a parsed `/watch` line; `None` if it is not a pulse.
    pub fn from_json(v: &Json) -> Option<PulseLine> {
        if v.str_field("kind") != Some("pulse") {
            return None;
        }
        let slo = v.get("slo")?;
        Some(PulseLine {
            t_ms: v.f64_field("t_ms")?,
            window_ms: v.f64_field("window_ms")?,
            requests: v.u64_field("requests")?,
            rps: v.f64_field("rps")?,
            hit_rate: v.f64_field("hit_rate")?,
            shed_rate: v.f64_field("shed_rate")?,
            errors: v.u64_field("errors")?,
            queue_depth: v.u64_field("queue_depth")?,
            p50_ms: v.f64_field("p50_ms"),
            p99_ms: v.f64_field("p99_ms"),
            slo_state: slo.str_field("state")?.to_string(),
            slo_healthy: slo.bool_field("healthy")?,
        })
    }
}

/// One aggregation window of a timed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Window start time (inclusive).
    pub start: f64,
    /// Samples in the window.
    pub count: u64,
    /// Mean value, 0 when empty.
    pub mean: f64,
    /// Max value, 0 when empty.
    pub max: f64,
}

/// Aggregates `(t, value)` points into fixed `width` windows starting
/// at t=0. Empty leading/inner windows are emitted (zeroed) so plots
/// keep their time axis; trailing windows stop at the last sample.
///
/// # Panics
///
/// Panics unless `width > 0`.
pub fn windowed(points: &[(f64, f64)], width: f64) -> Vec<Window> {
    assert!(width > 0.0, "window width must be positive");
    let Some(last_t) = points
        .iter()
        .map(|&(t, _)| t)
        .fold(None, |m: Option<f64>, t| Some(m.map_or(t, |m| m.max(t))))
    else {
        return Vec::new();
    };
    let n = (last_t / width).floor() as usize + 1;
    let mut sums = vec![(0u64, 0.0f64, 0.0f64); n];
    for &(t, v) in points {
        let i = ((t / width).floor() as usize).min(n - 1);
        let w = &mut sums[i];
        w.0 += 1;
        w.1 += v;
        w.2 = if w.0 == 1 { v } else { w.2.max(v) };
    }
    sums.into_iter()
        .enumerate()
        .map(|(i, (count, sum, max))| Window {
            start: i as f64 * width,
            count,
            mean: if count > 0 { sum / count as f64 } else { 0.0 },
            max,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::parse;

    #[test]
    fn reads_series_and_histogram_lines() {
        let s = parse(
            r#"{"kind":"series","name":"lat","count":3,"omitted":1,"points":[[0.5,1.0],[1.5,2.0]]}"#,
        )
        .unwrap();
        let s = SeriesLine::from_json(&s).unwrap();
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.omitted, 1);

        let h = parse(r#"{"kind":"histogram","name":"lat","lo":0.0,"hi":4.0,"bins":[1,0,2,1]}"#)
            .unwrap();
        let h = HistogramLine::from_json(&h).unwrap();
        assert_eq!(h.count(), 4);
        // rank(0.5)=2 -> cumulative reaches 2 in bin 2 (edge 3.0).
        assert_eq!(h.quantile(0.5), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn non_matching_kinds_read_as_none() {
        let v = parse(r#"{"kind":"counter","name":"n","value":3}"#).unwrap();
        assert!(SeriesLine::from_json(&v).is_none());
        assert!(HistogramLine::from_json(&v).is_none());
        assert!(PulseLine::from_json(&v).is_none());
    }

    #[test]
    fn reads_pulse_lines_with_and_without_quantiles() {
        let line = r#"{"kind":"pulse","t_ms":1500.0,"window_ms":1000.0,"requests":42,"rps":42.0,"hit_rate":0.5,"shed_rate":0.0,"errors":0,"queue_depth":3,"p50_ms":1.2,"p99_ms":9.5,"stages":{},"slo":{"state":"ok","healthy":true},"slowest":null}"#;
        let p = PulseLine::from_json(&parse(line).unwrap()).expect("pulse");
        assert_eq!(p.requests, 42);
        assert_eq!(p.queue_depth, 3);
        assert_eq!(p.p99_ms, Some(9.5));
        assert_eq!(p.slo_state, "ok");
        assert!(p.slo_healthy);

        // An idle window carries null quantiles.
        let idle = r#"{"kind":"pulse","t_ms":2500.0,"window_ms":1000.0,"requests":0,"rps":0.0,"hit_rate":0.0,"shed_rate":0.0,"errors":0,"queue_depth":0,"p50_ms":null,"p99_ms":null,"slo":{"state":"ok","healthy":true}}"#;
        let p = PulseLine::from_json(&parse(idle).unwrap()).expect("pulse");
        assert_eq!(p.requests, 0);
        assert_eq!(p.p50_ms, None);
        assert_eq!(p.p99_ms, None);
    }

    #[test]
    fn windows_aggregate_and_keep_empty_slots() {
        let pts = [(0.5, 2.0), (0.9, 4.0), (2.5, 10.0)];
        let w = windowed(&pts, 1.0);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].count, 2);
        assert!((w[0].mean - 3.0).abs() < 1e-12);
        assert!((w[0].max - 4.0).abs() < 1e-12);
        assert_eq!(w[1].count, 0);
        assert_eq!(w[2].count, 1);
        assert!((w[2].start - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = HistogramLine {
            name: "x".into(),
            lo: 0.0,
            hi: 1.0,
            bins: vec![0, 0],
        };
        assert_eq!(h.quantile(0.5), None);
        assert!(h.percentiles().is_none());
    }
}
