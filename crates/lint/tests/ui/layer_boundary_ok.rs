//@ path: crates/p2p/src/layer_boundary_ok_fixture.rs
// ui fixture (negative): the sealed public API and simulated time are
// the sanctioned ways through both boundaries.

use atlarge_des::{EventQueue, Simulation};
use std::time::Duration;

pub fn through_the_api(sim: &mut Simulation) {
    let _now = sim.now();
}
