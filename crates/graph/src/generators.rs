//! Dataset generators.
//!
//! The "D" of the PAD triangle: datasets differ in the structural
//! properties that interact with algorithms and platforms — degree skew
//! (power-law vs uniform) and diameter (small-world vs grid). Three
//! families cover the corners, standing in for the LDBC Datagen and
//! real-world graphs of the benchmark.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dataset families of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Preferential attachment: power-law degrees, tiny diameter.
    PowerLaw,
    /// Erdős–Rényi: concentrated degrees, small diameter.
    Random,
    /// 2-D grid: uniform degree 4, large diameter.
    Grid,
}

impl Dataset {
    /// All dataset families.
    pub fn all() -> [Dataset; 3] {
        [Dataset::PowerLaw, Dataset::Random, Dataset::Grid]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::PowerLaw => "powerlaw",
            Dataset::Random => "random",
            Dataset::Grid => "grid",
        }
    }

    /// Generates an instance with roughly `n` vertices (grid rounds to a
    /// square). Undirected.
    pub fn generate(&self, n: usize, seed: u64) -> Csr {
        match self {
            Dataset::PowerLaw => preferential_attachment(n, 4, seed),
            Dataset::Random => erdos_renyi(n, 4 * n, seed),
            Dataset::Grid => grid((n as f64).sqrt().round() as usize),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Barabási–Albert-style preferential attachment: each new vertex
/// attaches `m` edges to existing vertices chosen proportionally to
/// degree.
///
/// # Panics
///
/// Panics unless `n > m` and `m > 0`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> Csr {
    assert!(m > 0 && n > m, "need n > m > 0");
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoints list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 vertices.
    for i in 0..=m as u32 {
        for j in 0..i {
            edges.push((j, i));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v as u32 && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v as u32, t));
            endpoints.push(v as u32);
            endpoints.push(t);
        }
    }
    Csr::from_edges(n, &edges, true)
}

/// Erdős–Rényi `G(n, m)`: `m` uniformly random undirected edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| {
            let a = rng.gen_range(0..n as u32);
            let mut b = rng.gen_range(0..n as u32);
            while b == a {
                b = rng.gen_range(0..n as u32);
            }
            (a, b)
        })
        .collect();
    Csr::from_edges(n, &edges, true)
}

/// A `side × side` 2-D grid (undirected, 4-neighborhood).
///
/// # Panics
///
/// Panics if `side < 2`.
pub fn grid(side: usize) -> Csr {
    assert!(side >= 2, "grid side must be at least 2");
    let n = side * side;
    let mut edges = Vec::with_capacity(2 * n);
    let at = |r: usize, c: usize| (r * side + c) as u32;
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < side {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    Csr::from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs_levels;

    #[test]
    fn powerlaw_is_skewed() {
        let g = preferential_attachment(2_000, 4, 5);
        let max = g.max_out_degree();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "max degree {max} should dwarf mean {mean}"
        );
    }

    #[test]
    fn grid_is_uniform_and_high_diameter() {
        let g = grid(20);
        assert_eq!(g.num_vertices(), 400);
        assert!(g.max_out_degree() <= 4);
        // BFS eccentricity from the corner = 2*(side-1).
        let levels = bfs_levels(&g, 0);
        let max_level = levels.iter().flatten().max().copied().unwrap();
        assert_eq!(max_level, 38);
    }

    #[test]
    fn powerlaw_has_tiny_diameter() {
        let g = preferential_attachment(2_000, 4, 7);
        let levels = bfs_levels(&g, 0);
        let max_level = levels.iter().flatten().max().copied().unwrap();
        assert!(max_level < 8, "power-law diameter ~log n, got {max_level}");
    }

    #[test]
    fn er_edge_count_and_connectivity_scale() {
        let g = erdos_renyi(1_000, 4_000, 3);
        assert_eq!(g.num_edges(), 8_000); // undirected doubling
        let levels = bfs_levels(&g, 0);
        let reached = levels.iter().flatten().count();
        assert!(reached > 900, "G(n, 4n) is almost surely connected");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = preferential_attachment(200, 3, 9);
        let b = preferential_attachment(200, 3, 9);
        assert_eq!(a, b);
        assert_eq!(erdos_renyi(100, 300, 1), erdos_renyi(100, 300, 1));
    }

    #[test]
    fn dataset_enum_generates_all() {
        for d in Dataset::all() {
            let g = d.generate(400, 11);
            assert!(g.num_vertices() >= 396, "{d} too small");
            assert!(g.num_edges() > 0);
        }
    }
}
