//! Trace archives with FAIR metadata.
//!
//! §3.6 and §6.1/§6.2 emphasize sharing workload and operational traces as
//! FAIR / free open-access data (the Peer-to-Peer Trace Archive \[64\], the
//! Game Trace Archive \[83\]). This module implements a small line-oriented
//! trace format with a metadata descriptor, round-trippable through
//! strings, so every simulator can export what it observed and experiments
//! can be replayed from traces instead of generators.

use crate::job::{Job, JobId, Task};
use std::fmt;

/// FAIR-style descriptor of a trace: who, what, when, how collected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Name of the trace (findable).
    pub name: String,
    /// Producing system or instrument (provenance).
    pub source: String,
    /// License string (reusable).
    pub license: String,
    /// Free-form description (accessible/interoperable).
    pub description: String,
}

/// A job trace: metadata plus a job list sorted by submission time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct JobTrace {
    /// FAIR descriptor.
    pub meta: TraceMeta,
    jobs: Vec<Job>,
}

/// Errors arising when parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// A line did not have the expected field count.
    BadFieldCount {
        /// The 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// The 1-based line number.
        line: usize,
    },
    /// Jobs were not sorted by submission time.
    Unsorted,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadFieldCount { line } => {
                write!(f, "line {line}: unexpected field count")
            }
            ParseTraceError::BadNumber { line } => write!(f, "line {line}: invalid number"),
            ParseTraceError::Unsorted => write!(f, "jobs not sorted by submit time"),
        }
    }
}

impl std::error::Error for ParseTraceError {}

impl JobTrace {
    /// Creates a trace from jobs, sorting them by submission time.
    pub fn new(meta: TraceMeta, mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.submit.partial_cmp(&b.submit).expect("finite submits"));
        JobTrace { meta, jobs }
    }

    /// The jobs, sorted by submission time.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Serializes to the archive's line format:
    ///
    /// ```text
    /// # name: ...
    /// # source: ...
    /// # license: ...
    /// # description: ...
    /// job_id submit task_runtime task_cpus
    /// ```
    ///
    /// One line per task; tasks of a job share its id and submit time.
    pub fn to_archive_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# name: {}\n", self.meta.name));
        out.push_str(&format!("# source: {}\n", self.meta.source));
        out.push_str(&format!("# license: {}\n", self.meta.license));
        out.push_str(&format!("# description: {}\n", self.meta.description));
        for j in &self.jobs {
            for t in &j.tasks {
                out.push_str(&format!(
                    "{} {} {} {}\n",
                    j.id.0, j.submit, t.runtime, t.cpus
                ));
            }
        }
        out
    }

    /// Parses the archive line format produced by
    /// [`JobTrace::to_archive_string`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] on malformed lines or unsorted jobs.
    pub fn from_archive_string(s: &str) -> Result<Self, ParseTraceError> {
        let mut meta = TraceMeta::default();
        let mut jobs: Vec<Job> = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line_no = i + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                let rest = rest.trim();
                if let Some((k, v)) = rest.split_once(':') {
                    let v = v.trim().to_string();
                    match k.trim() {
                        "name" => meta.name = v,
                        "source" => meta.source = v,
                        "license" => meta.license = v,
                        "description" => meta.description = v,
                        _ => {}
                    }
                }
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseTraceError::BadFieldCount { line: line_no });
            }
            let id: u64 = fields[0]
                .parse()
                .map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
            let submit: f64 = fields[1]
                .parse()
                .map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
            let runtime: f64 = fields[2]
                .parse()
                .map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
            let cpus: u32 = fields[3]
                .parse()
                .map_err(|_| ParseTraceError::BadNumber { line: line_no })?;
            let task = Task::new(runtime, cpus);
            match jobs.last_mut() {
                Some(j) if j.id == JobId(id) => j.tasks.push(task),
                _ => jobs.push(Job::new(JobId(id), submit, vec![task])),
            }
        }
        if !jobs.windows(2).all(|w| w[0].submit <= w[1].submit) {
            return Err(ParseTraceError::Unsorted);
        }
        Ok(JobTrace { meta, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> JobTrace {
        JobTrace::new(
            TraceMeta {
                name: "gwa-like".into(),
                source: "atlarge-workload generator".into(),
                license: "CC-BY-4.0".into(),
                description: "unit-test trace".into(),
            },
            vec![
                Job::new(JobId(1), 0.0, vec![Task::new(10.0, 1), Task::new(20.0, 2)]),
                Job::new(JobId(2), 5.0, vec![Task::new(3.0, 1)]),
            ],
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let s = t.to_archive_string();
        let back = JobTrace::from_archive_string(&s).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn constructor_sorts_by_submit() {
        let t = JobTrace::new(
            TraceMeta::default(),
            vec![
                Job::new(JobId(2), 9.0, vec![Task::new(1.0, 1)]),
                Job::new(JobId(1), 1.0, vec![Task::new(1.0, 1)]),
            ],
        );
        assert_eq!(t.jobs()[0].id, JobId(1));
    }

    #[test]
    fn bad_field_count_reported_with_line() {
        let err = JobTrace::from_archive_string("1 2 3\n").unwrap_err();
        assert_eq!(err, ParseTraceError::BadFieldCount { line: 1 });
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn bad_number_reported() {
        let err = JobTrace::from_archive_string("1 x 3 1\n").unwrap_err();
        assert_eq!(err, ParseTraceError::BadNumber { line: 1 });
    }

    #[test]
    fn unsorted_jobs_rejected() {
        let s = "2 10.0 1.0 1\n1 0.0 1.0 1\n";
        assert_eq!(
            JobTrace::from_archive_string(s).unwrap_err(),
            ParseTraceError::Unsorted
        );
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let s = "# name: x\n\n# unknown: y\n1 0.0 2.0 1\n";
        let t = JobTrace::from_archive_string(s).unwrap();
        assert_eq!(t.meta.name, "x");
        assert_eq!(t.len(), 1);
    }
}
