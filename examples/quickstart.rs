//! Quickstart: a five-minute tour of the AtLarge reproduction.
//!
//! Runs one piece of each layer: the design framework's Basic Design
//! Cycle, a design-space exploration, a calibrated queueing simulation,
//! and a slice of the portfolio-scheduling experiment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use atlarge::core::exploration::{compare_processes, ExplorationProcess, Explorer};
use atlarge::core::process::{BasicDesignCycle, BdcStage, StoppingCriterion};
use atlarge::core::space::RuggedSpace;
use atlarge::des::queueing::{mmc_mean_wait, simulate_mmc};
use atlarge::scheduling::experiments::{run_row, Scale};
use atlarge::workload::mixes::Mix;
use atlarge_datacenter::environment::Environment;

fn main() {
    println!("== 1. The Basic Design Cycle (Figure 8) ==");
    let mut bdc = BasicDesignCycle::new(vec![
        StoppingCriterion::Satisfice { threshold: 0.8 },
        StoppingCriterion::Budget { iterations: 20 },
    ]);
    bdc.on(BdcStage::Design, |quality: &mut f64, ctx| {
        *quality += 0.15; // each iteration improves the design
        ctx.report_design(quality.min(1.0));
    });
    let mut quality = 0.0;
    let report = bdc.run(&mut quality);
    println!(
        "   stopped after {} iterations because {:?}; final quality {quality:.2}\n",
        report.iterations, report.reason
    );

    println!("== 2. Design-space exploration (Figure 6) ==");
    let space = RuggedSpace::new(40, 3, 7);
    for (process, satisfice_rate, novelty, quality) in compare_processes(&space, 0.64, 400, 20) {
        println!(
            "   {process:<12} satisfice rate {satisfice_rate:.2}  novelty {novelty:.2}  best quality {quality:.3}"
        );
    }
    let coev = Explorer::new(ExplorationProcess::CoEvolving, 2_000).run(&space, 0.75, 1);
    println!(
        "   co-evolving run visited {} problems, found {} satisficing designs\n",
        coev.problems_visited,
        coev.solutions_found()
    );

    println!("== 3. A calibrated simulation kernel ==");
    let (wait, _) = simulate_mmc(2.4, 1.0, 3, 50_000, 11);
    let theory = mmc_mean_wait(3, 2.4, 1.0);
    println!("   M/M/3 mean wait: simulated {wait:.3}s vs Erlang-C {theory:.3}s\n");

    println!("== 4. One Table-9 cell: portfolio scheduling on big data ==");
    let row = run_row(
        "[120] ('18)",
        Mix::BigData,
        Environment::OwnCluster,
        Scale::Quick,
        7,
    );
    let (best_policy, best) = row.best_single_slowdown();
    println!(
        "   portfolio slowdown {:.2} vs best single policy {best_policy} {best:.2} -> finding: \"{}\"",
        row.portfolio.mean_bounded_slowdown,
        row.finding()
    );
}
