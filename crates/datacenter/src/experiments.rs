//! The datacenter capacity campaign: cluster sizing as an
//! `atlarge-exp` factor grid.
//!
//! Section 6.2's reference architecture asks how a datacenter's serving
//! capacity scales with its shape. This module sweeps host count ×
//! cores-per-host over a fixed open-arrival workload through the
//! campaign engine, replicated over derived seeds, and summarizes
//! makespan and utilization per cell.

use crate::loadgen::{run_cluster, ClusterRunStats};
use atlarge_exp::registry::{parse_param, run_replicated, CellOutput, CellScenario, ParamSpec};
use atlarge_exp::{Campaign, CampaignResult, CancelToken, CellSummary, Scenario};
use atlarge_stats::descriptive::Summary;
use atlarge_telemetry::tracer::Tracer;
use std::collections::BTreeMap;

/// One capacity cell's config: the cluster shape and offered load.
#[derive(Debug, Clone, Copy)]
pub struct ClusterSpec {
    /// Number of hosts.
    pub hosts: usize,
    /// Cores per host.
    pub cores_per_host: u32,
    /// Rigid jobs offered over the run.
    pub jobs: usize,
}

/// The capacity scenario: one seeded cluster run per execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterScenario;

impl Scenario for ClusterScenario {
    type Config = ClusterSpec;
    type Outcome = ClusterRunStats;

    fn run(&self, config: &ClusterSpec, seed: u64, _tracer: &dyn Tracer) -> ClusterRunStats {
        run_cluster(config.hosts, config.cores_per_host, config.jobs, seed, None)
    }
}

/// Runs the capacity campaign: `hosts` × `cores-per-host` levels, the
/// same `jobs`-job workload family per cell, `replications` derived
/// seeds each.
pub fn capacity_campaign(
    hosts: &[usize],
    cores: &[u32],
    jobs: usize,
    seed: u64,
    replications: usize,
) -> CampaignResult<ClusterSpec, ClusterRunStats> {
    Campaign::new("datacenter.capacity", ClusterScenario)
        .factor("hosts", hosts.iter().map(|h| h.to_string()))
        .factor("cores", cores.iter().map(|c| c.to_string()))
        .replications(replications)
        .root_seed(seed)
        .run(|cell| ClusterSpec {
            hosts: cell.level("hosts").parse().expect("hosts level parses"),
            cores_per_host: cell.level("cores").parse().expect("cores level parses"),
            jobs,
        })
}

/// The default capacity grid used by the paper-tables driver.
pub fn default_capacity_campaign(
    seed: u64,
    replications: usize,
) -> CampaignResult<ClusterSpec, ClusterRunStats> {
    capacity_campaign(&[2, 4, 8], &[8, 16], 400, seed, replications)
}

/// Per-cell makespan summaries of a capacity campaign.
pub fn makespan_summaries(
    result: &CampaignResult<ClusterSpec, ClusterRunStats>,
) -> Vec<CellSummary> {
    result.summarize(|s| s.makespan)
}

/// Renders the campaign as a text table: one line per cell with
/// makespan (mean ± CI over replications) and mean utilization.
pub fn render_capacity(result: &CampaignResult<ClusterSpec, ClusterRunStats>) -> String {
    let mut out = format!(
        "{:<18}{:>10}{:>22}{:>12}\n",
        "cell", "completed", "makespan", "util"
    );
    for cell in &result.cells {
        let makespan = cell.summarize(|s| s.makespan);
        let util = cell.summarize(|s| s.mean_utilization);
        out.push_str(&format!(
            "{:<18}{:>10}{:>15.1} ±{:<5.1}{:>12.2}\n",
            cell.spec.label(),
            cell.first().completed,
            makespan.mean(),
            makespan.ci95_half_width(),
            util.mean()
        ));
    }
    out
}

/// One capacity-planning cell as a servable exploration query: cluster
/// shape and offered load as numeric knobs, replicated with
/// campaign-compatible seeding.
#[derive(Debug, Clone, Copy, Default)]
pub struct CapacityCell;

impl CellScenario for CapacityCell {
    fn domain(&self) -> &str {
        "datacenter"
    }

    fn describe(&self) -> &str {
        "seeded rigid-job capacity run against a homogeneous cluster"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::optional("hosts", "number of hosts", "4"),
            ParamSpec::optional("cores_per_host", "cores per host", "16"),
            ParamSpec::optional("jobs", "rigid jobs offered over the run", "400"),
        ]
    }

    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        let hosts: usize = parse_param(params, "hosts")?;
        let cores_per_host: u32 = parse_param(params, "cores_per_host")?;
        let jobs: usize = parse_param(params, "jobs")?;
        if hosts == 0 || cores_per_host == 0 {
            return Err("parameters 'hosts' and 'cores_per_host' must be positive".to_string());
        }
        if jobs == 0 || jobs > 100_000 {
            return Err(format!("parameter 'jobs': {jobs} outside 1..=100000"));
        }
        let spec = ClusterSpec {
            hosts,
            cores_per_host,
            jobs,
        };
        let runs = run_replicated(&ClusterScenario, &spec, seed, replications, cancel, tracer)?;
        let summarize =
            |f: &dyn Fn(&ClusterRunStats) -> f64| Summary::from_iter(runs.iter().map(f));
        Ok(CellOutput {
            metrics: vec![
                ("makespan".to_string(), summarize(&|s| s.makespan)),
                (
                    "utilization".to_string(),
                    summarize(&|s| s.mean_utilization),
                ),
                ("completed".to_string(), summarize(&|s| s.completed as f64)),
                (
                    "queued_peak".to_string(),
                    summarize(&|s| s.queued_peak as f64),
                ),
            ],
            notes: vec![(
                "cluster".to_string(),
                format!("{hosts} hosts x {cores_per_host} cores, {jobs} jobs"),
            )],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_the_grid_and_completes_all_jobs() {
        let r = capacity_campaign(&[2, 4], &[8], 100, 17, 2);
        assert_eq!(r.cells.len(), 2);
        for cell in &r.cells {
            for run in &cell.runs {
                assert_eq!(run.outcome.completed, 100, "{}", cell.spec.label());
            }
        }
    }

    #[test]
    fn more_hosts_shrink_the_makespan() {
        let r = capacity_campaign(&[2, 8], &[8], 300, 17, 3);
        let small = r.cells[0].summarize(|s| s.makespan).mean();
        let big = r.cells[1].summarize(|s| s.makespan).mean();
        assert!(big < small, "8 hosts ({big}) should beat 2 hosts ({small})");
    }

    #[test]
    fn replications_vary_the_runs() {
        // Distinct derived seeds must produce distinct workloads.
        let r = capacity_campaign(&[4], &[8], 200, 17, 3);
        let makespans: std::collections::BTreeSet<String> = r.cells[0]
            .runs
            .iter()
            .map(|run| format!("{:.6}", run.outcome.makespan))
            .collect();
        assert!(makespans.len() > 1, "replications collapsed: {makespans:?}");
    }

    #[test]
    fn render_lists_every_cell() {
        let r = default_capacity_campaign(17, 2);
        let s = render_capacity(&r);
        assert_eq!(r.cells.len(), 6);
        for cell in &r.cells {
            assert!(s.contains(&cell.spec.label()));
        }
        assert_eq!(makespan_summaries(&r).len(), 6);
    }

    #[test]
    fn serve_cell_matches_campaign_cell_statistics() {
        // A served "4 hosts x 16 cores, 400 jobs" query must reproduce
        // the matching cell of the declared capacity campaign.
        let r = capacity_campaign(&[4], &[16], 400, 17, 3);
        let campaign_makespan = r.cells[0].summarize(|s| s.makespan);

        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(CapacityCell));
        let params = reg
            .validate("datacenter", &BTreeMap::new())
            .expect("defaults fill");
        assert_eq!(params["hosts"], "4");
        let tracer = atlarge_telemetry::NullTracer;
        let out = CapacityCell
            .run_cell(&params, 17, 3, &CancelToken::new(), &tracer)
            .expect("runs clean");
        assert_eq!(out.metrics[0].0, "makespan");
        assert_eq!(out.metrics[0].1.mean(), campaign_makespan.mean());
        assert_eq!(out.metrics[0].1.len(), 3);
    }

    #[test]
    fn serve_cell_rejects_degenerate_clusters() {
        let tracer = atlarge_telemetry::NullTracer;
        let raw = BTreeMap::from([
            ("hosts".to_string(), "0".to_string()),
            ("cores_per_host".to_string(), "16".to_string()),
            ("jobs".to_string(), "10".to_string()),
        ]);
        let err = CapacityCell
            .run_cell(&raw, 1, 1, &CancelToken::new(), &tracer)
            .unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }
}
