//@ path: crates/exp/src/entropy_fixture.rs
// ui fixture: all randomness derives from campaign seeds.

pub fn violate() {
    let mut _a = rand::thread_rng();
    let _b = StdRng::from_entropy();
    let _c = OsRng;
}

pub fn seeded() {
    let _r = StdRng::seed_from_u64(42);
}
