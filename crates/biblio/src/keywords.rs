//! The Figure-1 analysis: keyword presence in top systems venues.

use crate::corpus::{Corpus, KEYWORDS};

/// The Figure-1 table: per venue, per keyword, the fraction of articles
/// mentioning the keyword.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordPresence {
    /// Venue names, row order.
    pub venues: Vec<&'static str>,
    /// Keyword names, column order.
    pub keywords: Vec<&'static str>,
    /// `fractions[v][k]` in `[0, 1]`.
    pub fractions: Vec<Vec<f64>>,
}

impl KeywordPresence {
    /// Looks up a fraction by names.
    pub fn fraction(&self, venue: &str, keyword: &str) -> Option<f64> {
        let v = self.venues.iter().position(|&n| n == venue)?;
        let k = self.keywords.iter().position(|&n| n == keyword)?;
        Some(self.fractions[v][k])
    }

    /// Renders the table as aligned text (the harness prints this as the
    /// Figure-1 series).
    pub fn to_table_string(&self) -> String {
        let mut out = format!("{:<10}", "venue");
        for k in &self.keywords {
            out.push_str(&format!("{k:>14}"));
        }
        out.push('\n');
        for (vi, v) in self.venues.iter().enumerate() {
            out.push_str(&format!("{v:<10}"));
            for f in &self.fractions[vi] {
                out.push_str(&format!("{:>13.1}%", f * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes keyword presence per venue over the whole corpus.
pub fn keyword_presence(corpus: &Corpus) -> KeywordPresence {
    let nv = corpus.venues().len();
    let mut hits = vec![[0u64; 6]; nv];
    let mut totals = vec![0u64; nv];
    for a in corpus.articles() {
        totals[a.venue] += 1;
        for (k, &present) in a.keywords.iter().enumerate() {
            if present {
                hits[a.venue][k] += 1;
            }
        }
    }
    KeywordPresence {
        venues: corpus.venues().iter().map(|v| v.name).collect(),
        keywords: KEYWORDS.to_vec(),
        fractions: (0..nv)
            .map(|v| {
                (0..KEYWORDS.len())
                    .map(|k| hits[v][k] as f64 / totals[v].max(1) as f64)
                    .collect()
            })
            .collect(),
    }
}

/// Keyword presence restricted to a year range (used to show era effects).
pub fn keyword_presence_in_years(corpus: &Corpus, from: u32, to: u32) -> KeywordPresence {
    let nv = corpus.venues().len();
    let mut hits = vec![[0u64; 6]; nv];
    let mut totals = vec![0u64; nv];
    for a in corpus
        .articles()
        .iter()
        .filter(|a| a.year >= from && a.year <= to)
    {
        totals[a.venue] += 1;
        for (k, &present) in a.keywords.iter().enumerate() {
            if present {
                hits[a.venue][k] += 1;
            }
        }
    }
    KeywordPresence {
        venues: corpus.venues().iter().map(|v| v.name).collect(),
        keywords: KEYWORDS.to_vec(),
        fractions: (0..nv)
            .map(|v| {
                (0..KEYWORDS.len())
                    .map(|k| hits[v][k] as f64 / totals[v].max(1) as f64)
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_is_a_common_keyword_everywhere() {
        // Figure 1's finding: design is a common keyword in top venues,
        // including ICDCS.
        let c = Corpus::generate(10);
        let t = keyword_presence(&c);
        for v in &t.venues {
            let f = t.fraction(v, "design").unwrap();
            assert!(f > 0.10, "{v} design fraction {f}");
        }
    }

    #[test]
    fn performance_dominates_design() {
        let c = Corpus::generate(11);
        let t = keyword_presence(&c);
        let perf = t.fraction("ICDCS", "performance").unwrap();
        let design = t.fraction("ICDCS", "design").unwrap();
        assert!(perf > design);
    }

    #[test]
    fn elasticity_absent_pre_cloud() {
        let c = Corpus::generate(12);
        let early = keyword_presence_in_years(&c, 1980, 2005);
        let late = keyword_presence_in_years(&c, 2010, 2018);
        assert_eq!(early.fraction("ICDCS", "elasticity").unwrap(), 0.0);
        assert!(late.fraction("ICDCS", "elasticity").unwrap() > 0.05);
    }

    #[test]
    fn fractions_are_probabilities() {
        let c = Corpus::generate(13);
        let t = keyword_presence(&c);
        for row in &t.fractions {
            for &f in row {
                assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn table_string_has_all_rows() {
        let c = Corpus::generate(14);
        let t = keyword_presence(&c);
        let s = t.to_table_string();
        for v in &t.venues {
            assert!(s.contains(v));
        }
        assert!(s.contains("design"));
    }

    #[test]
    fn unknown_lookup_is_none() {
        let c = Corpus::generate(15);
        let t = keyword_presence(&c);
        assert!(t.fraction("NOPE", "design").is_none());
        assert!(t.fraction("ICDCS", "nope").is_none());
    }
}
