//! Public fingerprint canonicalization over run manifests.
//!
//! [`RunManifest::fingerprint`](atlarge_telemetry::RunManifest::fingerprint)
//! hashes a canonical rendering of a run's identity; until now both the
//! rendering and its uses were internal to regression diffing. A result
//! cache needs the *string itself* as a key — collision-free where the
//! 64-bit hash is merely collision-resistant, and printable for logs
//! and HTTP headers — so this module makes the canonical form public
//! with a documented contract:
//!
//! - [`canonical_key`] covers exactly the fields
//!   [`same_run_as`](atlarge_telemetry::RunManifest::same_run_as)
//!   compares: schema, model, seed, config digest, event counts,
//!   simulated horizon, and trace extent. **Wall-clock time is
//!   excluded**, so two executions of the same logical run — serial or
//!   parallel, today or tomorrow — produce the same key.
//! - The mapping is injective on those fields: every field lands in a
//!   fixed position with an unambiguous encoding (the free-form model
//!   string is length-prefixed so embedded separators cannot alias two
//!   manifests onto one key; floats are encoded by bit pattern, not by
//!   display rounding).
//!
//! Equal keys ⇔ `same_run_as` — the cache-key contract an exploration
//! service relies on when it serves a cached body for a repeated query.

use atlarge_telemetry::RunManifest;

/// Version tag of the canonical encoding. Bump when the format changes
/// so persisted keys from older encodings can never alias new ones.
pub const KEY_SCHEMA: &str = "ak1";

/// The canonical cache key of a manifest.
///
/// Deterministic, printable (no whitespace or control characters for
/// any model string the workspace produces), and equal for two
/// manifests iff
/// [`same_run_as`](atlarge_telemetry::RunManifest::same_run_as) holds
/// between them — in particular, manifests differing only in wall-clock
/// metadata share a key.
///
/// # Examples
///
/// ```
/// use atlarge_obsv::fingerprint::canonical_key;
/// use atlarge_telemetry::manifest::{RunManifest, MANIFEST_SCHEMA};
///
/// let run = RunManifest {
///     schema: MANIFEST_SCHEMA,
///     model: "serve.autoscaling".into(),
///     seed: 2026,
///     config_digest: 0xABCD,
///     events_scheduled: 5,
///     events_dispatched: 5,
///     sim_time: 4000.0,
///     trace_records: 0,
///     trace_dropped: 0,
///     wall_ms: 17.3,
/// };
/// let mut rerun = run.clone();
/// rerun.wall_ms = 9000.0; // slower machine, same run
/// assert_eq!(canonical_key(&run), canonical_key(&rerun));
/// ```
pub fn canonical_key(manifest: &RunManifest) -> String {
    // The model string is the only free-form field; prefixing its byte
    // length keeps the encoding injective even if a model name were to
    // contain the separator.
    format!(
        "{KEY_SCHEMA}|{}|{}:{}|{}|{:016x}|{}|{}|{:016x}|{}|{}",
        manifest.schema,
        manifest.model.len(),
        manifest.model,
        manifest.seed,
        manifest.config_digest,
        manifest.events_scheduled,
        manifest.events_dispatched,
        manifest.sim_time.to_bits(),
        manifest.trace_records,
        manifest.trace_dropped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlarge_telemetry::manifest::MANIFEST_SCHEMA;

    fn base() -> RunManifest {
        RunManifest {
            schema: MANIFEST_SCHEMA,
            model: "obsv.fixture".into(),
            seed: 42,
            config_digest: 0xDEAD_BEEF,
            events_scheduled: 100,
            events_dispatched: 99,
            sim_time: 250.5,
            trace_records: 10,
            trace_dropped: 1,
            wall_ms: 12.0,
        }
    }

    #[test]
    fn wall_clock_only_differences_share_a_key() {
        let a = base();
        let mut b = base();
        b.wall_ms = 99_999.0;
        assert!(a.same_run_as(&b));
        assert_eq!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn every_identity_field_changes_the_key() {
        let reference = canonical_key(&base());
        let variants: Vec<RunManifest> = vec![
            {
                let mut m = base();
                m.schema += 1;
                m
            },
            {
                let mut m = base();
                m.model = "obsv.other".into();
                m
            },
            {
                let mut m = base();
                m.seed += 1;
                m
            },
            {
                let mut m = base();
                m.config_digest ^= 1;
                m
            },
            {
                let mut m = base();
                m.events_scheduled += 1;
                m
            },
            {
                let mut m = base();
                m.events_dispatched += 1;
                m
            },
            {
                let mut m = base();
                m.sim_time += 0.5;
                m
            },
            {
                let mut m = base();
                m.trace_records += 1;
                m
            },
            {
                let mut m = base();
                m.trace_dropped += 1;
                m
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert!(!v.same_run_as(&base()), "variant {i} should differ");
            assert_ne!(canonical_key(v), reference, "variant {i} aliased");
        }
    }

    #[test]
    fn model_length_prefix_blocks_separator_aliasing() {
        // Adversarial pair: model strings that would collide if the
        // encoding simply joined fields with '|'.
        let mut a = base();
        a.model = "m|1".into();
        a.seed = 2;
        let mut b = base();
        b.model = "m".into();
        // Without the length prefix "m|1|2|…" could also parse as
        // model="m", seed=1 followed by 2. Keys must differ.
        b.seed = 1;
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }

    #[test]
    fn key_is_stable_and_printable() {
        let key = canonical_key(&base());
        assert!(key.starts_with("ak1|"));
        assert_eq!(key, canonical_key(&base()));
        assert!(key.chars().all(|c| !c.is_whitespace() && !c.is_control()));
    }
}
