//! The self-test corpus: every `tests/ui/*.rs` fixture is linted under
//! the default configuration and its rendered diagnostics must match
//! the sibling `*.expected` file byte for byte.
//!
//! Each fixture's first line is a `//@ path: <virtual path>` header —
//! the workspace-relative path the file pretends to live at, which is
//! what drives per-lint scope and exemption matching.
//!
//! Set `ATLARGE_LINT_BLESS=1` to rewrite the `.expected` files from the
//! current output instead of comparing (then review the diff).

use atlarge_lint::{lint_source, LintConfig, Report};
use std::fs;
use std::path::PathBuf;

/// Renders a report the way the CLI's human printer does, minus the
/// trailing summary line (fixture-independent noise).
fn render(report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        out.push_str(&d.headline());
        out.push('\n');
        out.push_str("    = help: ");
        out.push_str(&d.suggestion);
        out.push('\n');
    }
    out
}

#[test]
fn ui_fixtures_match_expected() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let cfg = LintConfig::default_config();
    let mut entries: Vec<_> = fs::read_dir(&dir)
        .expect("tests/ui exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 6,
        "expected a fixture per lint plus the allowlist corpus, found {}",
        entries.len()
    );

    let bless = std::env::var_os("ATLARGE_LINT_BLESS").is_some();
    for path in entries {
        let source = fs::read_to_string(&path).expect("fixture readable");
        let virt = source
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ path: "))
            .unwrap_or_else(|| panic!("{}: missing `//@ path:` header", path.display()))
            .trim();
        let actual = render(&lint_source(virt, &source, &cfg));
        if bless {
            fs::write(path.with_extension("expected"), &actual).expect("bless writable");
            continue;
        }
        let expected = fs::read_to_string(path.with_extension("expected"))
            .unwrap_or_else(|_| panic!("{}: missing sibling .expected file", path.display()));
        assert_eq!(
            actual,
            expected,
            "fixture {} diverged from its .expected file",
            path.display()
        );
    }
}

/// The reasoned directive in the wall-clock fixture must actually
/// suppress (not merely hide) — the suppression count proves the
/// allowlist path ran.
#[test]
fn fixtures_report_suppressions() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let cfg = LintConfig::default_config();
    let source = fs::read_to_string(dir.join("wall_clock.rs")).expect("fixture readable");
    let report = lint_source("crates/des/src/wall_clock_fixture.rs", &source, &cfg);
    assert_eq!(report.suppressed, 1);
}
