//! Ideation-effectiveness metrics (challenge C2, \[51\]).
//!
//! C2 notes that "the academic community has proposed some quantitative
//! measures for quantifying the creativity and effectiveness of designs"
//! and asks how they could be put in practice for MCS design. This module
//! adapts Shah et al.'s four ideation metrics — **quantity**, **quality**,
//! **novelty**, and **variety** — to design-space exploration outcomes:
//! any set of designs in a [`DesignSpace`] can be scored, including the
//! outputs of the Figure-6 exploration processes.

use crate::space::DesignSpace;

/// The four ideation-effectiveness metrics over a set of designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdeationReport {
    /// Quantity: number of distinct designs produced.
    pub quantity: usize,
    /// Quality: the best quality achieved, in `[0, 1]`.
    pub best_quality: f64,
    /// Quality: the mean quality of the set.
    pub mean_quality: f64,
    /// Novelty: mean distance from each design to its nearest prior-art
    /// design, in `[0, 1]` (0 = everything already known).
    pub novelty: f64,
    /// Variety: mean pairwise distance within the set, in `[0, 1]`
    /// (0 = all ideas alike).
    pub variety: f64,
}

impl IdeationReport {
    /// A single aggregate effectiveness score: the geometric-style blend
    /// Shah et al. recommend weighting per study; here equal weights over
    /// the three normalized dimensions (quality, novelty, variety), with
    /// quantity entering logarithmically.
    pub fn effectiveness(&self) -> f64 {
        let qty = (1.0 + self.quantity as f64).ln() / (1.0 + 20.0f64).ln();
        0.25 * qty.min(1.0) + 0.35 * self.best_quality + 0.2 * self.novelty + 0.2 * self.variety
    }
}

/// Measures the ideation metrics of `designs` within `space`, against a
/// `prior_art` set (known designs; may be empty, in which case novelty
/// is 1 for a non-empty design set).
pub fn measure<S: DesignSpace>(
    space: &S,
    designs: &[S::Design],
    prior_art: &[S::Design],
) -> IdeationReport {
    // Deduplicate (quantity counts distinct ideas).
    let mut distinct: Vec<&S::Design> = Vec::new();
    for d in designs {
        if !distinct.contains(&d) {
            distinct.push(d);
        }
    }
    let n = distinct.len();
    if n == 0 {
        return IdeationReport {
            quantity: 0,
            best_quality: 0.0,
            mean_quality: 0.0,
            novelty: 0.0,
            variety: 0.0,
        };
    }
    let qualities: Vec<f64> = distinct.iter().map(|d| space.quality(d)).collect();
    let best_quality = qualities.iter().copied().fold(0.0, f64::max);
    let mean_quality = qualities.iter().sum::<f64>() / n as f64;
    let novelty = if prior_art.is_empty() {
        1.0
    } else {
        distinct
            .iter()
            .map(|d| {
                prior_art
                    .iter()
                    .map(|p| space.distance(d, p))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / n as f64
    };
    let variety = if n < 2 {
        0.0
    } else {
        let mut sum = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                sum += space.distance(distinct[i], distinct[j]);
                pairs += 1;
            }
        }
        sum / pairs as f64
    };
    IdeationReport {
        quantity: n,
        best_quality,
        mean_quality,
        novelty,
        variety,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::RuggedSpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> RuggedSpace {
        RuggedSpace::new(16, 2, 5)
    }

    fn designs(n: usize, seed: u64) -> Vec<Vec<bool>> {
        let s = space();
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| s.random(&mut rng)).collect()
    }

    #[test]
    fn empty_set_scores_zero() {
        let r = measure(&space(), &[], &[]);
        assert_eq!(r.quantity, 0);
        assert_eq!(r.effectiveness(), 0.0);
    }

    #[test]
    fn duplicates_do_not_inflate_quantity() {
        let d = designs(1, 1);
        let copies = vec![d[0].clone(), d[0].clone(), d[0].clone()];
        let r = measure(&space(), &copies, &[]);
        assert_eq!(r.quantity, 1);
        assert_eq!(r.variety, 0.0);
    }

    #[test]
    fn prior_art_kills_novelty() {
        let d = designs(4, 2);
        let r = measure(&space(), &d, &d);
        assert_eq!(r.novelty, 0.0);
        let fresh = measure(&space(), &d, &[]);
        assert_eq!(fresh.novelty, 1.0);
    }

    #[test]
    fn variety_reflects_spread() {
        let s = space();
        let all_false = vec![vec![false; 16], vec![false; 16]];
        let spread = vec![vec![false; 16], vec![true; 16]];
        assert_eq!(measure(&s, &all_false, &[]).variety, 0.0);
        assert_eq!(measure(&s, &spread, &[]).variety, 1.0);
    }

    #[test]
    fn quality_metrics_bound_each_other() {
        let d = designs(10, 3);
        let r = measure(&space(), &d, &[]);
        assert!(r.best_quality >= r.mean_quality);
        assert!((0.0..=1.0).contains(&r.best_quality));
        assert!((0.0..=1.0).contains(&r.effectiveness()));
    }

    #[test]
    fn effectiveness_rises_with_more_distinct_good_designs() {
        let s = space();
        let few = measure(&s, &designs(2, 4), &[]);
        let many = measure(&s, &designs(15, 4), &[]);
        assert!(many.quantity > few.quantity);
        assert!(many.effectiveness() > 0.0);
    }
}
