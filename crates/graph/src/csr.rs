//! Compressed sparse row graphs.

/// A directed graph in CSR form, with both out- and in-adjacency, plus
/// deterministic per-edge weights for SSSP.
///
/// # Examples
///
/// ```
/// use atlarge_graph::csr::Csr;
///
/// let g = Csr::from_edges(3, &[(0, 1), (0, 2)], false);
/// assert_eq!(g.out_neighbors(0), &[1, 2]);
/// assert_eq!(g.in_neighbors(2), &[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<u32>,
    in_offsets: Vec<usize>,
    in_targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR graph over `n` vertices from an edge list.
    /// `undirected` inserts both directions. Self-loops and duplicate
    /// edges are kept (they are legal and the algorithms tolerate them).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= n`.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], undirected: bool) -> Self {
        let mut dir: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!((a as usize) < n && (b as usize) < n, "edge out of range");
            dir.push((a, b));
            if undirected && a != b {
                dir.push((b, a));
            }
        }
        let build =
            |pairs: &[(u32, u32)], key: fn(&(u32, u32)) -> u32, val: fn(&(u32, u32)) -> u32| {
                let mut counts = vec![0usize; n + 1];
                for p in pairs {
                    counts[key(p) as usize + 1] += 1;
                }
                for i in 0..n {
                    counts[i + 1] += counts[i];
                }
                let offsets = counts.clone();
                let mut pos = counts;
                let mut targets = vec![0u32; pairs.len()];
                for p in pairs {
                    let k = key(p) as usize;
                    targets[pos[k]] = val(p);
                    pos[k] += 1;
                }
                // Sort each adjacency run for determinism.
                let mut offs = offsets;
                for v in 0..n {
                    targets[offs[v]..offs[v + 1]].sort_unstable();
                }
                offs.truncate(n + 1);
                (offs, targets)
            };
        let (out_offsets, out_targets) = build(&dir, |p| p.0, |p| p.1);
        let (in_offsets, in_targets) = build(&dir, |p| p.1, |p| p.0);
        Csr {
            n,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges stored.
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn out_neighbors(&self, v: usize) -> &[u32] {
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v`.
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        &self.in_targets[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// Deterministic positive weight of edge `(u, v)` for SSSP: derived
    /// from a hash of the endpoints so every platform sees identical
    /// weights without storing them.
    pub fn weight(&self, u: u32, v: u32) -> f64 {
        let mut z = (u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        1.0 + (z >> 11) as f64 / (1u64 << 53) as f64 * 9.0 // in [1, 10)
    }

    /// Maximum out-degree (the skew statistic of the PAD analysis).
    pub fn max_out_degree(&self) -> usize {
        (0..self.n).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn adjacency_is_correct_and_sorted() {
        let g = Csr::from_edges(4, &[(0, 2), (0, 1), (2, 3), (1, 2)], false);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn undirected_doubles_edges() {
        let g = Csr::from_edges(3, &[(0, 1), (1, 2)], true);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(1), &[0, 2]);
    }

    #[test]
    fn self_loops_kept_once_in_undirected() {
        let g = Csr::from_edges(2, &[(0, 0), (0, 1)], true);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
    }

    #[test]
    fn weights_are_deterministic_and_bounded() {
        let g = Csr::from_edges(3, &[(0, 1)], false);
        let w = g.weight(0, 1);
        assert_eq!(w, g.weight(0, 1));
        assert!((1.0..10.0).contains(&w));
        assert_ne!(g.weight(0, 1), g.weight(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        Csr::from_edges(2, &[(0, 5)], false);
    }

    proptest! {
        /// Every inserted edge appears in both adjacency directions.
        #[test]
        fn prop_edges_round_trip(
            n in 2usize..40,
            edges in proptest::collection::vec((0u32..40, 0u32..40), 0..120)
        ) {
            let edges: Vec<(u32, u32)> = edges
                .into_iter()
                .map(|(a, b)| (a % n as u32, b % n as u32))
                .collect();
            let g = Csr::from_edges(n, &edges, false);
            prop_assert_eq!(g.num_edges(), edges.len());
            for &(a, b) in &edges {
                prop_assert!(g.out_neighbors(a as usize).contains(&b));
                prop_assert!(g.in_neighbors(b as usize).contains(&a));
            }
            // Degree sums match edge count.
            let total: usize = (0..n).map(|v| g.out_degree(v)).sum();
            prop_assert_eq!(total, edges.len());
        }
    }
}
