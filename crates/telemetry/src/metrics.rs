//! The metric vocabulary: counters, time-weighted gauges, tallies.
//!
//! These types originated as `atlarge_des::monitor`; they now live here so
//! every layer (kernel, domain simulators, the [`crate::recorder::Recorder`]
//! registry) shares one implementation. Relative to the old monitor the edge
//! cases are defined instead of panicking or returning NaN:
//!
//! - [`Gauge::mean`] over a zero-duration observation window (a gauge set at
//!   a single instant, or never set) is the gauge's level, not `0/0`;
//! - [`Tally`] summaries of an empty tally return `None` rather than
//!   panicking inside the order statistics.

use atlarge_stats::descriptive::Summary;
use atlarge_stats::histogram::Histogram;
use atlarge_stats::timeseries::StepSeries;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }
}

/// A time-weighted gauge: records a level over simulated time and reports
/// time-averaged statistics (e.g. utilization, queue length, swarm size).
#[derive(Debug, Clone, PartialEq)]
pub struct Gauge {
    series: StepSeries,
    first_time: Option<f64>,
    last_time: f64,
}

impl Gauge {
    /// Creates a gauge with the given initial level at time zero.
    pub fn new(initial: f64) -> Self {
        Gauge {
            series: StepSeries::new(initial),
            first_time: None,
            last_time: 0.0,
        }
    }

    /// Sets the level at simulated time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier update.
    pub fn set(&mut self, now: f64, level: f64) {
        self.series.push(now, level);
        self.first_time.get_or_insert(now);
        self.last_time = self.last_time.max(now);
    }

    /// Adjusts the level by `delta` at time `now`.
    pub fn add(&mut self, now: f64, delta: f64) {
        let cur = self.series.value_at(now);
        self.set(now, cur + delta);
    }

    /// The level at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        self.series.value_at(t)
    }

    /// Current (latest) level.
    pub fn value(&self) -> f64 {
        self.series.value_at(self.last_time)
    }

    /// Time-weighted average over `[from, to]`. A zero-duration window
    /// (`to <= from`) yields the instantaneous level at `from`.
    pub fn time_average(&self, from: f64, to: f64) -> f64 {
        self.series.time_average(from, to)
    }

    /// Time-weighted mean over the gauge's own observation window — from
    /// its first update to its last. A gauge observed for zero duration
    /// (never updated, or updated at a single instant) reports its current
    /// level rather than `0/0`.
    pub fn mean(&self) -> f64 {
        match self.first_time {
            Some(first) if self.last_time > first => {
                self.series.time_average(first, self.last_time)
            }
            _ => self.value(),
        }
    }

    /// Smallest level ever set (including the initial level when the gauge
    /// was never updated).
    pub fn min_level(&self) -> f64 {
        self.levels().fold(f64::INFINITY, f64::min)
    }

    /// Largest level ever set (including the initial level when the gauge
    /// was never updated).
    pub fn max_level(&self) -> f64 {
        self.levels().fold(f64::NEG_INFINITY, f64::max)
    }

    fn levels(&self) -> impl Iterator<Item = f64> + '_ {
        let updates = self.series.points().iter().map(|&(_, v)| v);
        let initial = if self.series.is_empty() {
            Some(self.series.value_at(f64::NEG_INFINITY))
        } else {
            None
        };
        initial.into_iter().chain(updates)
    }

    /// The underlying step series (for metric computations).
    pub fn series(&self) -> &StepSeries {
        &self.series
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new(0.0)
    }
}

/// A tally: accumulates independent observations (response times, download
/// durations) for summary statistics at the end of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tally {
    samples: Vec<f64>,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "tally observations must be finite");
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the tally is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw observations in recording order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Descriptive summary, or `None` when the tally is empty — the order
    /// statistics of zero samples are undefined, and the old monitor
    /// panicked deep inside them instead of saying so.
    pub fn summary(&self) -> Option<Summary> {
        if self.samples.is_empty() {
            None
        } else {
            Some(Summary::from_slice(&self.samples))
        }
    }

    /// Mean of the observations (0 when empty, matching the old monitor).
    pub fn mean(&self) -> f64 {
        self.summary().map_or(0.0, |s| s.mean())
    }

    /// Bins the observations into a [`Histogram`] over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        h.record_all(self.samples.iter().copied());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_time_average() {
        let mut g = Gauge::new(0.0);
        g.set(0.0, 2.0);
        g.set(10.0, 6.0);
        assert!((g.time_average(0.0, 20.0) - 4.0).abs() < 1e-12);
        assert_eq!(g.value(), 6.0);
    }

    #[test]
    fn gauge_mean_over_observation_window() {
        let mut g = Gauge::new(0.0);
        g.set(10.0, 2.0);
        g.set(20.0, 6.0);
        // Observed over [10, 20]: level 2 throughout.
        assert!((g.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_mean_zero_duration_window_is_level() {
        // Never updated: the mean is the initial level, not NaN.
        let g = Gauge::new(3.0);
        assert_eq!(g.mean(), 3.0);
        // Updated at a single instant: the mean is that level.
        let mut g = Gauge::new(0.0);
        g.set(5.0, 7.0);
        assert_eq!(g.mean(), 7.0);
        assert!(g.mean().is_finite());
    }

    #[test]
    fn gauge_min_max_levels() {
        let mut g = Gauge::new(1.0);
        g.set(0.0, 4.0);
        g.set(1.0, -2.0);
        assert_eq!(g.min_level(), -2.0);
        assert_eq!(g.max_level(), 4.0);
        let fresh = Gauge::new(9.0);
        assert_eq!(fresh.min_level(), 9.0);
        assert_eq!(fresh.max_level(), 9.0);
    }

    #[test]
    fn tally_summary_and_histogram() {
        let mut t = Tally::new();
        for x in [1.0, 2.0, 3.0] {
            t.record(x);
        }
        let s = t.summary().expect("non-empty");
        assert_eq!(s.median(), 2.0);
        assert_eq!(t.mean(), 2.0);
        let h = t.histogram(0.0, 4.0, 4);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn empty_tally_does_not_panic() {
        let t = Tally::new();
        assert!(t.summary().is_none());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.histogram(0.0, 1.0, 2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn tally_rejects_nan() {
        Tally::new().record(f64::NAN);
    }
}
