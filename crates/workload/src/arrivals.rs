//! Arrival processes.
//!
//! The seminal BitTorrent study the paper builds on (§6.1) "debunk\[ed\]
//! theoretical assumptions such as Poisson arrivals"; the flashcrowd study
//! \[66\] modeled sudden arrival spikes; the MMOG studies found strong
//! diurnal cycles. All of those arrival shapes live here so every simulator
//! draws from the same vocabulary.

use atlarge_stats::dist::{Exponential, Sample};
use rand::Rng;

/// Generates arrival instants over a window of simulated time.
pub trait ArrivalProcess {
    /// Returns sorted arrival times in `[from, to)`.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R, from: f64, to: f64) -> Vec<f64>;

    /// The long-run average arrival rate (arrivals per unit time).
    fn mean_rate(&self) -> f64;
}

/// Homogeneous Poisson arrivals at `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    rate: f64,
}

impl Poisson {
    /// Creates a Poisson process.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R, from: f64, to: f64) -> Vec<f64> {
        assert!(from <= to, "window reversed");
        let exp = Exponential::new(self.rate);
        let mut t = from;
        let mut out = Vec::new();
        loop {
            t += exp.sample(rng);
            if t >= to {
                break;
            }
            out.push(t);
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        self.rate
    }
}

/// A two-state on/off bursty process (a simple MMPP): alternates between a
/// high-rate and a low-rate regime with exponentially distributed dwell
/// times. Captures the burstiness real traces show that Poisson misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bursty {
    high_rate: f64,
    low_rate: f64,
    mean_high_dwell: f64,
    mean_low_dwell: f64,
}

impl Bursty {
    /// Creates a bursty process.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are positive.
    pub fn new(high_rate: f64, low_rate: f64, mean_high_dwell: f64, mean_low_dwell: f64) -> Self {
        assert!(
            high_rate > 0.0 && low_rate > 0.0 && mean_high_dwell > 0.0 && mean_low_dwell > 0.0,
            "bursty parameters must be positive"
        );
        Bursty {
            high_rate,
            low_rate,
            mean_high_dwell,
            mean_low_dwell,
        }
    }
}

impl ArrivalProcess for Bursty {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R, from: f64, to: f64) -> Vec<f64> {
        assert!(from <= to, "window reversed");
        let mut out = Vec::new();
        let mut t = from;
        let mut high = false;
        while t < to {
            let (rate, dwell) = if high {
                (self.high_rate, self.mean_high_dwell)
            } else {
                (self.low_rate, self.mean_low_dwell)
            };
            let regime_end = (t + Exponential::with_mean(dwell).sample(rng)).min(to);
            let exp = Exponential::new(rate);
            let mut a = t;
            loop {
                a += exp.sample(rng);
                if a >= regime_end {
                    break;
                }
                out.push(a);
            }
            t = regime_end;
            high = !high;
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        let total = self.mean_high_dwell + self.mean_low_dwell;
        (self.high_rate * self.mean_high_dwell + self.low_rate * self.mean_low_dwell) / total
    }
}

/// A flashcrowd: a baseline Poisson process plus a sudden spike that decays
/// exponentially after onset — the model of \[66\] ("Identifying, analyzing,
/// and modeling flashcrowds in BitTorrent").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flashcrowd {
    baseline: f64,
    spike_start: f64,
    spike_magnitude: f64,
    decay: f64,
}

impl Flashcrowd {
    /// Creates a flashcrowd: baseline rate, spike onset time, peak extra
    /// rate at onset, and exponential decay constant of the spike.
    ///
    /// # Panics
    ///
    /// Panics unless all rates and the decay constant are positive.
    pub fn new(baseline: f64, spike_start: f64, spike_magnitude: f64, decay: f64) -> Self {
        assert!(
            baseline > 0.0 && spike_magnitude > 0.0 && decay > 0.0,
            "flashcrowd parameters must be positive"
        );
        Flashcrowd {
            baseline,
            spike_start,
            spike_magnitude,
            decay,
        }
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        if t < self.spike_start {
            self.baseline
        } else {
            self.baseline + self.spike_magnitude * (-(t - self.spike_start) / self.decay).exp()
        }
    }

    fn peak_rate(&self) -> f64 {
        self.baseline + self.spike_magnitude
    }
}

impl ArrivalProcess for Flashcrowd {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R, from: f64, to: f64) -> Vec<f64> {
        assert!(from <= to, "window reversed");
        // Thinning (Lewis–Shedler): simulate at the peak rate, accept with
        // probability rate(t)/peak.
        let peak = self.peak_rate();
        let exp = Exponential::new(peak);
        let mut t = from;
        let mut out = Vec::new();
        loop {
            t += exp.sample(rng);
            if t >= to {
                break;
            }
            if rng.gen::<f64>() < self.rate_at(t) / peak {
                out.push(t);
            }
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        self.baseline
    }
}

/// Diurnal arrivals: a sinusoidal day/night rate, as in the MMOG dynamics
/// studies (§6.2, \[71\]–\[73\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    mean: f64,
    amplitude: f64,
    period: f64,
    phase: f64,
}

impl Diurnal {
    /// Creates a diurnal process: `rate(t) = mean * (1 + amplitude *
    /// sin(2π (t/period + phase)))`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0`, `0 <= amplitude < 1`, and `period > 0`.
    pub fn new(mean: f64, amplitude: f64, period: f64, phase: f64) -> Self {
        assert!(mean > 0.0, "mean rate must be positive");
        assert!((0.0..1.0).contains(&amplitude), "amplitude in [0,1)");
        assert!(period > 0.0, "period must be positive");
        Diurnal {
            mean,
            amplitude,
            period,
            phase,
        }
    }

    /// Instantaneous rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.mean
            * (1.0
                + self.amplitude * (std::f64::consts::TAU * (t / self.period + self.phase)).sin())
    }
}

impl ArrivalProcess for Diurnal {
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R, from: f64, to: f64) -> Vec<f64> {
        assert!(from <= to, "window reversed");
        let peak = self.mean * (1.0 + self.amplitude);
        let exp = Exponential::new(peak);
        let mut t = from;
        let mut out = Vec::new();
        loop {
            t += exp.sample(rng);
            if t >= to {
                break;
            }
            if rng.gen::<f64>() < self.rate_at(t) / peak {
                out.push(t);
            }
        }
        out
    }

    fn mean_rate(&self) -> f64 {
        self.mean
    }
}

/// Index of dispersion for counts (IDC) over fixed windows: 1 for Poisson,
/// substantially above 1 for bursty/flashcrowd processes. This is the
/// statistic the P2P studies used to debunk the Poisson assumption.
pub fn index_of_dispersion(arrivals: &[f64], window: f64, from: f64, to: f64) -> f64 {
    assert!(window > 0.0, "window must be positive");
    assert!(from < to, "range must be non-empty");
    let n_windows = ((to - from) / window).floor() as usize;
    if n_windows < 2 {
        return 1.0;
    }
    let mut counts = vec![0.0f64; n_windows];
    for &a in arrivals {
        if a >= from && a < from + n_windows as f64 * window {
            counts[((a - from) / window) as usize] += 1.0;
        }
    }
    let mean = counts.iter().sum::<f64>() / n_windows as f64;
    if mean == 0.0 {
        return 1.0;
    }
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n_windows - 1) as f64;
    var / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn poisson_rate_converges() {
        let p = Poisson::new(3.0);
        let arr = p.generate(&mut rng(), 0.0, 10_000.0);
        let rate = arr.len() as f64 / 10_000.0;
        assert!((rate - 3.0).abs() < 0.1, "rate {rate}");
    }

    #[test]
    fn poisson_idc_near_one() {
        let p = Poisson::new(5.0);
        let arr = p.generate(&mut rng(), 0.0, 5_000.0);
        let idc = index_of_dispersion(&arr, 10.0, 0.0, 5_000.0);
        assert!((idc - 1.0).abs() < 0.25, "idc {idc}");
    }

    #[test]
    fn bursty_idc_exceeds_one() {
        let b = Bursty::new(20.0, 0.5, 10.0, 50.0);
        let arr = b.generate(&mut rng(), 0.0, 5_000.0);
        let idc = index_of_dispersion(&arr, 10.0, 0.0, 5_000.0);
        assert!(idc > 2.0, "idc {idc} should reveal burstiness");
    }

    #[test]
    fn flashcrowd_spikes_after_onset() {
        let f = Flashcrowd::new(1.0, 500.0, 30.0, 50.0);
        let arr = f.generate(&mut rng(), 0.0, 1000.0);
        let before = arr.iter().filter(|&&t| (400.0..500.0).contains(&t)).count();
        let after = arr.iter().filter(|&&t| (500.0..600.0).contains(&t)).count();
        assert!(
            after as f64 > 4.0 * before as f64,
            "before {before} after {after}"
        );
    }

    #[test]
    fn flashcrowd_rate_decays() {
        let f = Flashcrowd::new(1.0, 100.0, 10.0, 20.0);
        assert_eq!(f.rate_at(50.0), 1.0);
        assert!((f.rate_at(100.0) - 11.0).abs() < 1e-12);
        assert!(f.rate_at(200.0) < 1.2);
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        let d = Diurnal::new(10.0, 0.8, 24.0, 0.0);
        let arr = d.generate(&mut rng(), 0.0, 24.0 * 200.0);
        // Peak near t=6h (sin max), trough near t=18h of each day.
        let mut peak = 0;
        let mut trough = 0;
        for &a in &arr {
            let h = a % 24.0;
            if (5.0..7.0).contains(&h) {
                peak += 1;
            }
            if (17.0..19.0).contains(&h) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 3.0 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn generated_times_sorted_within_window() {
        let p = Poisson::new(2.0);
        let arr = p.generate(&mut rng(), 10.0, 20.0);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&t| (10.0..20.0).contains(&t)));
    }

    #[test]
    fn mean_rates_reported() {
        assert_eq!(Poisson::new(2.0).mean_rate(), 2.0);
        let b = Bursty::new(10.0, 1.0, 1.0, 3.0);
        assert!((b.mean_rate() - (10.0 + 3.0) / 4.0).abs() < 1e-12);
    }
}
