//! End-to-end properties of the observability pipeline: traced domain
//! runs exported as JSONL, then analyzed with `atlarge-obsv` — the same
//! path `trace_lens` and the CI regression gate walk.

use atlarge::datacenter::run_cluster_traced;
use atlarge::obsv::{critical_path, diff_exports, parse_trace, CriticalPath};
use atlarge::stats::Histogram;
use atlarge::telemetry::Recorder;
use proptest::prelude::*;

fn trace_string(rec: &Recorder) -> String {
    let mut buf = Vec::new();
    rec.write_trace_jsonl(&mut buf).expect("write to memory");
    String::from_utf8(buf).expect("exports are UTF-8")
}

fn metrics_string(rec: &Recorder) -> String {
    let mut buf = Vec::new();
    rec.write_metrics_jsonl(&mut buf).expect("write to memory");
    String::from_utf8(buf).expect("exports are UTF-8")
}

/// One traced datacenter run, exported and re-parsed — the round trip
/// every analysis in this file starts from.
fn traced_cluster_path(seed: u64) -> CriticalPath {
    let rec = Recorder::new();
    run_cluster_traced(4, 8, 60, seed, &rec);
    let trace = parse_trace(&trace_string(&rec)).expect("export parses");
    critical_path(&trace).expect("a run with events has a path")
}

proptest! {
    // Each case is a full DES run; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism end to end: same seed, same trace, same critical path
    /// — byte-level export and analysis included.
    #[test]
    fn same_seed_runs_have_identical_critical_paths(seed in 0u64..1_000) {
        let a = traced_cluster_path(seed);
        let b = traced_cluster_path(seed);
        prop_assert_eq!(a, b);
    }

    /// A causal chain cannot span more simulated time than the run took.
    #[test]
    fn critical_path_time_is_bounded_by_total(seed in 0u64..1_000) {
        let cp = traced_cluster_path(seed);
        prop_assert!(cp.path_time <= cp.total_time + 1e-9);
        prop_assert!(cp.coverage() <= 1.0 + 1e-9);
        prop_assert!(!cp.steps.is_empty());
    }

    /// The binned nearest-rank quantile is within one bin width of the
    /// exact sample quantile, for both the stats-side estimator and the
    /// obsv-side reader of its export.
    #[test]
    fn histogram_quantile_within_one_bin_of_exact(
        samples in proptest::collection::vec(0.0f64..100.0, 1..400),
        q in 0.0f64..=1.0,
    ) {
        let mut h = Histogram::new(0.0, 100.0, 32);
        h.record_all(samples.iter().copied());
        let est = h.quantile(q).expect("non-empty");

        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        let width = 100.0 / 32.0;
        prop_assert!(
            (est - exact).abs() <= width + 1e-9,
            "estimate {est} vs exact {exact} (q={q}, width {width})"
        );
    }

    /// Diffing a run against an identical re-execution reports zero
    /// regressions at any threshold: fingerprints match and wall-clock
    /// fields are excluded from comparison.
    #[test]
    fn self_diff_reports_zero_regressions(seed in 0u64..1_000) {
        let export = || {
            let rec = Recorder::new();
            run_cluster_traced(4, 8, 60, seed, &rec);
            metrics_string(&rec)
        };
        let d = diff_exports(&export(), &export()).expect("exports parse");
        prop_assert!(d.comparable, "same seed must be same_run_as-comparable");
        prop_assert!(d.changed.is_empty(), "unexpected deltas: {:?}", d.changed);
        prop_assert!(d.unmatched.is_empty());
        prop_assert!(d.regressions(0.0).is_empty());
    }
}

/// A ring buffer too small for the run must say so in the manifest — on
/// the recorder, in the export, and through the obsv reader — and the
/// analysis must still produce a (truncated) path rather than fail.
#[test]
fn saturated_ring_reports_drops_and_still_yields_a_path() {
    let rec = Recorder::with_trace_capacity(64);
    run_cluster_traced(4, 8, 200, 9, &rec);
    assert!(rec.trace_dropped() > 0, "200 jobs must overflow 64 records");

    let trace = parse_trace(&trace_string(&rec)).expect("export parses");
    let manifest = trace.manifest.as_ref().expect("manifest exported");
    assert_eq!(manifest.trace_dropped, rec.trace_dropped());

    let cp = critical_path(&trace).expect("retained suffix still chains");
    assert!(cp.path_time <= cp.total_time + 1e-9);
}
