//! A small Rust lexer: just enough token structure for pattern-based
//! lints, with exact line numbers and comment capture.
//!
//! The lexer understands everything that would otherwise produce false
//! positives in a grep-style scan: line and (nested) block comments,
//! string/raw-string/byte-string literals, raw identifiers (`r#type`),
//! char literals vs. lifetimes, and numeric literals with suffixes. It
//! does not build a syntax tree itself — [`crate::parser`] grows one on
//! top for the structural lints, while the token-sequence lints match
//! short runs (`Instant :: now`, `. unwrap (`) directly.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive glued punct tokens: `::` is `:` then a glued `:`).
    Punct,
    /// Lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// Numeric literal, suffix included (`0.5f64`).
    Num,
    /// String, raw-string, byte-string, or char literal.
    Literal,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Literal`] this is the raw literal
    /// including delimiters (`"abc"`, `r#"x"#`) — the token-sequence
    /// lints never match literals (they filter on kind), while the
    /// structural lints read string contents via [`Tok::str_content`].
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// True when no whitespace or comment separates this token from the
    /// previous one (`arr[` vs `arr  [`).
    pub glued: bool,
}

impl Tok {
    /// The inner text of a plain or raw *string* literal (escape
    /// sequences left as written — both sides of a structural
    /// comparison see the same spelling). `None` for non-literals,
    /// char literals, and byte/C strings.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind != TokKind::Literal {
            return None;
        }
        let t = self.text.as_str();
        if let Some(rest) = t.strip_prefix('"') {
            return rest.strip_suffix('"').or(Some(rest));
        }
        if let Some(rest) = t.strip_prefix('r') {
            let hashes = rest.len() - rest.trim_start_matches('#').len();
            let rest = &rest[hashes..];
            let rest = rest.strip_prefix('"')?;
            let rest = rest.strip_suffix(&"#".repeat(hashes)).unwrap_or(rest);
            return rest.strip_suffix('"').or(Some(rest));
        }
        None
    }
}

/// A captured comment (line or block), for allowlist-directive parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text, delimiters included.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// 1-based lines that carry at least one token (used to resolve
    /// which line an allowlist comment targets).
    pub token_lines: Vec<u32>,
}

impl Lexed {
    /// The first token-bearing line strictly after `line`, if any.
    pub fn next_code_line_after(&self, line: u32) -> Option<u32> {
        self.token_lines.iter().copied().find(|&l| l > line)
    }

    /// Whether any token sits on `line`.
    pub fn has_tokens_on(&self, line: u32) -> bool {
        self.token_lines.binary_search(&line).is_ok()
    }
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    // Position one past the previous token's last byte, for `glued`.
    let mut prev_end = usize::MAX;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: source[start..i].to_string(),
                    line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: source[start..i.min(b.len())].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let glued = prev_end == i;
                let start = i;
                i = skip_string(b, i, &mut line);
                push(
                    &mut out,
                    TokKind::Literal,
                    source[start..i].to_string(),
                    line,
                    glued,
                );
                prev_end = i;
            }
            b'\'' => {
                let glued = prev_end == i;
                // Lifetime: 'ident not closed by a quote. Char literal
                // otherwise ('a', '\n', '\u{1F600}').
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    && !(i + 2 < b.len() && b[i + 2] == b'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push(
                        &mut out,
                        TokKind::Lifetime,
                        source[start..i].to_string(),
                        line,
                        glued,
                    );
                } else {
                    let start = i;
                    i = skip_char_literal(b, i, &mut line);
                    push(
                        &mut out,
                        TokKind::Literal,
                        source[start..i].to_string(),
                        line,
                        glued,
                    );
                }
                prev_end = i;
            }
            c if c.is_ascii_digit() => {
                let glued = prev_end == i;
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        // Exponent sign: 1e-3, 2.5E+8.
                        if (d == b'e' || d == b'E')
                            && i + 1 < b.len()
                            && (b[i + 1] == b'+' || b[i + 1] == b'-')
                            && i + 2 < b.len()
                            && b[i + 2].is_ascii_digit()
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                        // Fractional part, but not a `0..n` range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                push(
                    &mut out,
                    TokKind::Num,
                    source[start..i].to_string(),
                    line,
                    glued,
                );
                prev_end = i;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let glued = prev_end == i;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                // Raw/byte/C string prefixes: r"", r#""#, b"", br#""#, c"".
                if i < b.len()
                    && matches!(text, "r" | "b" | "c" | "br" | "rb" | "cr" | "rc")
                    && (b[i] == b'"' || (text.contains('r') && b[i] == b'#'))
                {
                    if let Some(end) = skip_raw_or_plain_string(b, i, &mut line) {
                        i = end;
                        push(
                            &mut out,
                            TokKind::Literal,
                            source[start..i].to_string(),
                            line,
                            glued,
                        );
                        prev_end = i;
                        continue;
                    }
                    // Not a raw string after all: `r#ident` is a raw
                    // identifier. Lex the identifier part so keywords
                    // escaped this way still tokenize as one Ident.
                    if text == "r"
                        && b[i] == b'#'
                        && i + 1 < b.len()
                        && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_')
                    {
                        i += 1;
                        let id_start = i;
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                            i += 1;
                        }
                        push(
                            &mut out,
                            TokKind::Ident,
                            source[id_start..i].to_string(),
                            line,
                            glued,
                        );
                        prev_end = i;
                        continue;
                    }
                }
                push(&mut out, TokKind::Ident, text.to_string(), line, glued);
                prev_end = i;
            }
            _ => {
                let glued = prev_end == i;
                push(
                    &mut out,
                    TokKind::Punct,
                    (c as char).to_string(),
                    line,
                    glued,
                );
                i += 1;
                prev_end = i;
            }
        }
    }
    out.token_lines.dedup();
    out
}

fn push(out: &mut Lexed, kind: TokKind, text: String, line: u32, glued: bool) {
    if out.token_lines.last() != Some(&line) {
        out.token_lines.push(line);
    }
    out.tokens.push(Tok {
        kind,
        text,
        line,
        glued,
    });
}

/// Skips a `"…"` string starting at `i` (the opening quote); returns the
/// index one past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escaped newline (line-continuation) still ends a
                // source line — keep the line counter honest.
                if i + 1 < b.len() && b[i + 1] == b'\n' {
                    *line += 1;
                }
                i += 2;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal starting at the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// At `i` sits either `"` (plain string body after a `b`/`c` prefix) or
/// `#…#"` (raw string). Returns the index one past the closing delimiter,
/// or `None` if this is not actually a string start.
fn skip_raw_or_plain_string(b: &[u8], mut i: usize, line: &mut u32) -> Option<usize> {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    if hashes == 0 {
        return Some(skip_string(b, i, line));
    }
    // Raw string: scan for `"` followed by `hashes` hash marks.
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // Instant::now in a comment
            /* HashMap in /* a nested */ block */
            let s = "thread_rng()";
            let r = r#"SystemTime::now()"#;
            let b = b"from_entropy";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|t| t.contains("Instant")
            || t.contains("HashMap")
            || t.contains("thread_rng")
            || t.contains("SystemTime")
            || t.contains("from_entropy")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn numbers_keep_suffixes_and_ranges_split() {
        let toks = lex("fold(0.0f64, f64::max); for i in 0..10 {}").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0.0f64", "0", "10"]);
    }

    #[test]
    fn lines_and_glue_are_tracked() {
        let toks = lex("a\n  b [0]\nc []").tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
        // `b [` is not glued; in `c []` the bracket follows a space too.
        let brackets: Vec<_> = toks.iter().filter(|t| t.text == "[").collect();
        assert!(brackets.iter().all(|t| !t.glued));
        let glued = lex("b[0]").tokens;
        assert!(glued.iter().any(|t| t.text == "[" && t.glued));
    }

    #[test]
    fn raw_strings_with_hashes_hide_contents_and_keep_lines() {
        // Hash counts 0–2, embedded quotes and hash runs shorter than
        // the delimiter, and a newline that must advance line tracking.
        let src = "let a = r\"Instant::now\";\nlet b = r#\"say \"hi\" HashMap\"#;\nlet c = r##\"one \"# two\nthree\"##;\nafter();";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(!ids.contains(&"Instant") && !ids.contains(&"HashMap"));
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 5, "raw-string newline must advance the line");
        let lits: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.str_content().unwrap())
            .collect();
        assert_eq!(
            lits,
            vec!["Instant::now", "say \"hi\" HashMap", "one \"# two\nthree"]
        );
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "/* a /* b /* c */ b */ a */ code(); /* tail */";
        let lexed = lex(src);
        let ids: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["code"]);
        assert_eq!(lexed.comments.len(), 2);
        // Unterminated nesting must not loop or panic.
        let open = lex("/* x /* y */ still-open\ncode();");
        assert!(open.tokens.is_empty());
    }

    #[test]
    fn lifetime_char_ambiguity_covers_the_edge_forms() {
        // `'a` (lifetime), `'a'` (char), `'_` (anonymous lifetime),
        // `'\''` and `'\n'` (escaped chars), `'static` (keyword lifetime).
        let toks = lex("fn f<'a>(x: &'_ u8) -> &'static str { ('a', '\\'', '\\n') }").tokens;
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "_", "static"]);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            3
        );
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        let toks = lex("let r#fn = r#type + other;").tokens;
        let ids: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ids, vec!["let", "fn", "type", "other"]);
        // And `r` alone, or `r` before `#` without an ident, stays split.
        let ids2: Vec<String> = lex("r + 1")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect();
        assert_eq!(ids2, vec!["r"]);
    }

    #[test]
    fn escaped_newline_in_string_advances_line() {
        let lexed = lex("let s = \"one \\\ntwo\";\nnext();");
        let next = lexed.tokens.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn str_content_strips_delimiters_only_for_strings() {
        let toks = lex("(\"plain\", r\"raw\", r##\"h\"#sh\"##, 'c', b\"bytes\")").tokens;
        let contents: Vec<Option<&str>> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.str_content())
            .collect();
        assert_eq!(
            contents,
            vec![Some("plain"), Some("raw"), Some("h\"#sh"), None, None]
        );
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("x();\n// #[allow_atlarge(x, reason = \"y\")]\ny();");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow_atlarge"));
        assert_eq!(lexed.next_code_line_after(2), Some(3));
        assert!(lexed.has_tokens_on(1));
        assert!(!lexed.has_tokens_on(2));
    }
}
