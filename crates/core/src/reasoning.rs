//! Dorst's reasoning model (Figure 5), executably.
//!
//! The reasoning universe consists of *concepts* ("What?"), *relationships*
//! ("How?"), and *outcomes*. A [`KnowledgeBase`] stores known triples
//! `(what, how) → outcome`. Each reasoning mode of Figure 5 is then a query
//! shape over the base:
//!
//! | Mode | Given | Sought |
//! |---|---|---|
//! | Deduction | what + how | outcome |
//! | Induction | what + outcome | how |
//! | Abduction (problem solving) | how + outcome | what |
//! | Abduction (design) | outcome | what + how |
//! | Unreasoning | nothing need hold | anything |
//!
//! Design abduction — the paper's central observation — is the
//! under-constrained mode: many `(what, how)` pairs may produce the same
//! outcome, so [`KnowledgeBase::design_abduction`] returns *all* candidate
//! pairs and the framework's exploration processes (Figure 6) exist to
//! search that set when it is too large to enumerate.

use std::collections::BTreeSet;

/// A concept: the "What?" of Dorst's model (objects, people, technology).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Concept(pub String);

/// A relationship: the "How?" (laws, principles, patterns).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relationship(pub String);

/// An outcome: an observable phenomenon or working system.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Outcome(pub String);

/// The reasoning modes of Figure 5 (with the paper's added unreasoning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReasoningMode {
    /// Popperian science: what + how → predict outcome.
    Deduction,
    /// The scientific method: what + outcome → infer how.
    Induction,
    /// Normal abduction, as in everyday engineering: how + outcome → what.
    AbductionProblemSolving,
    /// Design abduction: outcome → (what, how). The designerly mode.
    AbductionDesign,
    /// "Facts don't matter": anything goes. Included as the degenerate
    /// extreme the paper warns about.
    Unreasoning,
}

impl ReasoningMode {
    /// All modes in the order of Figure 5's rows.
    pub fn all() -> [ReasoningMode; 5] {
        [
            ReasoningMode::Deduction,
            ReasoningMode::Induction,
            ReasoningMode::AbductionProblemSolving,
            ReasoningMode::AbductionDesign,
            ReasoningMode::Unreasoning,
        ]
    }

    /// How many of the three slots (what, how, outcome) are unknown in
    /// this mode — design abduction's two unknowns are what makes it the
    /// hardest constrained mode.
    pub fn unknowns(&self) -> usize {
        match self {
            ReasoningMode::Deduction
            | ReasoningMode::Induction
            | ReasoningMode::AbductionProblemSolving => 1,
            ReasoningMode::AbductionDesign => 2,
            ReasoningMode::Unreasoning => 3,
        }
    }
}

/// A known triple: applying `how` to `what` yields `outcome`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Triple {
    /// The concept.
    pub what: Concept,
    /// The relationship.
    pub how: Relationship,
    /// The produced outcome.
    pub outcome: Outcome,
}

/// A knowledge base of `(what, how) → outcome` triples.
///
/// # Examples
///
/// ```
/// use atlarge_core::reasoning::*;
///
/// let mut kb = KnowledgeBase::new();
/// kb.insert("turing-machine", "deterministic-algorithm", "computed-result");
/// let out = kb.deduce(
///     &Concept("turing-machine".into()),
///     &Relationship("deterministic-algorithm".into()),
/// );
/// assert_eq!(out, vec![Outcome("computed-result".into())]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KnowledgeBase {
    triples: BTreeSet<Triple>,
}

impl KnowledgeBase {
    /// Creates an empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple from string shorthand.
    pub fn insert(&mut self, what: &str, how: &str, outcome: &str) {
        self.triples.insert(Triple {
            what: Concept(what.into()),
            how: Relationship(how.into()),
            outcome: Outcome(outcome.into()),
        });
    }

    /// Number of known triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the base is empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Deduction: all outcomes known to follow from `(what, how)`.
    pub fn deduce(&self, what: &Concept, how: &Relationship) -> Vec<Outcome> {
        self.triples
            .iter()
            .filter(|t| &t.what == what && &t.how == how)
            .map(|t| t.outcome.clone())
            .collect()
    }

    /// Induction: all relationships that connect `what` to `outcome`.
    pub fn induce(&self, what: &Concept, outcome: &Outcome) -> Vec<Relationship> {
        self.triples
            .iter()
            .filter(|t| &t.what == what && &t.outcome == outcome)
            .map(|t| t.how.clone())
            .collect()
    }

    /// Problem-solving abduction: all concepts that, under `how`, yield
    /// `outcome`.
    pub fn abduce_what(&self, how: &Relationship, outcome: &Outcome) -> Vec<Concept> {
        self.triples
            .iter()
            .filter(|t| &t.how == how && &t.outcome == outcome)
            .map(|t| t.what.clone())
            .collect()
    }

    /// Design abduction: *all* `(what, how)` pairs that yield `outcome`.
    ///
    /// This is the designerly query: typically many candidates exist, and
    /// for a desired outcome not yet in the base the answer is empty — the
    /// designer must *extend the base* (create), which is exactly why the
    /// paper argues design is not reducible to normal engineering.
    pub fn design_abduction(&self, outcome: &Outcome) -> Vec<(Concept, Relationship)> {
        self.triples
            .iter()
            .filter(|t| &t.outcome == outcome)
            .map(|t| (t.what.clone(), t.how.clone()))
            .collect()
    }

    /// Unreasoning: returns an arbitrary triple regardless of the query —
    /// any concept, relationship, and outcome "put together". Present to
    /// make Figure 5's degenerate row testable; no framework process uses
    /// it.
    pub fn unreason(&self) -> Option<&Triple> {
        self.triples.iter().next()
    }

    /// Consistency check used in tests: deduction of any stored triple's
    /// inputs must include its outcome.
    pub fn is_consistent(&self) -> bool {
        self.triples
            .iter()
            .all(|t| self.deduce(&t.what, &t.how).contains(&t.outcome))
    }
}

/// A small distributed-systems seed base used by examples and tests:
/// classic mechanisms and the outcomes they produce.
pub fn seed_distributed_systems_base() -> KnowledgeBase {
    let mut kb = KnowledgeBase::new();
    kb.insert("cache", "lookup-before-compute", "low-latency-reads");
    kb.insert("replica-set", "quorum-consensus", "fault-tolerant-writes");
    kb.insert("replica-set", "async-replication", "eventual-consistency");
    kb.insert("load-balancer", "round-robin", "even-load");
    kb.insert("load-balancer", "least-connections", "even-load");
    kb.insert("autoscaler", "feedback-control", "elastic-capacity");
    kb.insert("scheduler", "backfilling", "high-utilization");
    kb.insert("p2p-swarm", "tit-for-tat", "incentivized-sharing");
    kb.insert("cdn", "geo-replication", "low-latency-reads");
    kb
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        seed_distributed_systems_base()
    }

    #[test]
    fn deduction_finds_unique_outcome() {
        let out = kb().deduce(
            &Concept("scheduler".into()),
            &Relationship("backfilling".into()),
        );
        assert_eq!(out, vec![Outcome("high-utilization".into())]);
    }

    #[test]
    fn induction_finds_relationship() {
        let how = kb().induce(
            &Concept("replica-set".into()),
            &Outcome("eventual-consistency".into()),
        );
        assert_eq!(how, vec![Relationship("async-replication".into())]);
    }

    #[test]
    fn problem_solving_abduction_finds_concepts() {
        let what = kb().abduce_what(
            &Relationship("geo-replication".into()),
            &Outcome("low-latency-reads".into()),
        );
        assert_eq!(what, vec![Concept("cdn".into())]);
    }

    #[test]
    fn design_abduction_is_underdetermined() {
        // Two distinct designs produce low-latency reads: this multiplicity
        // is the point of Figure 5's design-abduction row.
        let pairs = kb().design_abduction(&Outcome("low-latency-reads".into()));
        assert_eq!(pairs.len(), 2);
        // "even-load" also has two mechanisms through one concept.
        let pairs = kb().design_abduction(&Outcome("even-load".into()));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn novel_outcome_has_no_design_yet() {
        let pairs = kb().design_abduction(&Outcome("quantum-speedup".into()));
        assert!(pairs.is_empty(), "the base cannot design what it lacks");
    }

    #[test]
    fn unknown_counts_match_figure5() {
        assert_eq!(ReasoningMode::Deduction.unknowns(), 1);
        assert_eq!(ReasoningMode::AbductionDesign.unknowns(), 2);
        assert_eq!(ReasoningMode::Unreasoning.unknowns(), 3);
        assert_eq!(ReasoningMode::all().len(), 5);
    }

    #[test]
    fn base_is_consistent() {
        assert!(kb().is_consistent());
        assert!(!kb().is_empty());
        assert_eq!(kb().len(), 9);
    }

    #[test]
    fn unreason_returns_something_arbitrary() {
        assert!(kb().unreason().is_some());
        assert!(KnowledgeBase::new().unreason().is_none());
    }
}
