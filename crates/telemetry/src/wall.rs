//! Wall-clock access for measurement code — the *only* sanctioned door
//! to the host clock.
//!
//! Simulation code must never read wall time: host speed would leak
//! into results and break the serial ≡ parallel determinism contract
//! (see `lint.toml`, lint `wall-clock-in-sim`). Measurement layers do
//! legitimately need it — run manifests report how long a campaign
//! took, profilers bracket spans in real time. Those layers call this
//! module instead of `std::time::Instant` directly, so the workspace
//! linter can allowlist exactly one crate (`atlarge-telemetry`) and
//! flag every other wall-clock read as a determinism bug.
//!
//! The contract for callers: a [`Stopwatch`] reading may feed *reports*
//! (manifest `wall_ms` fields, profiler output) but never *results* —
//! nothing compared for equality between runs, nothing written to
//! result JSONL lines that `trace_lens diff` gates on.

use std::time::Instant;

/// A started wall-clock timer.
///
/// # Examples
///
/// ```
/// use atlarge_telemetry::wall::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let ms = sw.elapsed_ms();
/// assert!(ms >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1e3
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Whole nanoseconds elapsed since [`Stopwatch::start`] — the
    /// resolution the lock-free latency histograms
    /// ([`crate::hist`]) record at. Saturates after ~584 years.
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!((sw.elapsed_secs() * 1e3 - sw.elapsed_ms()).abs() < 1e3);
        assert!(sw.elapsed_nanos() >= (b * 1e6) as u64);
    }
}
