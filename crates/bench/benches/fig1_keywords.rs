//! Bench: regenerate Figure 1 (keyword presence per venue).

use atlarge_biblio::corpus::Corpus;
use atlarge_biblio::keywords::keyword_presence;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let corpus = Corpus::generate(1);
    let mut g = c.benchmark_group("fig1_keywords");
    g.sample_size(10);
    g.bench_function("corpus_generate", |b| {
        b.iter(|| Corpus::generate(std::hint::black_box(1)))
    });
    g.bench_function("keyword_presence", |b| {
        b.iter(|| keyword_presence(std::hint::black_box(&corpus)))
    });
    g.finish();
    // Print the figure's series once so `cargo bench` regenerates it.
    println!("{}", keyword_presence(&corpus).to_table_string());
}

criterion_group!(benches, bench);
criterion_main!(benches);
