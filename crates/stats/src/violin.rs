//! Violin-plot statistics (Figure 3).
//!
//! Figure 3 of the paper shows violin plots of review scores: a kernel
//! density estimate, the mean (star), median (white dot), IQR (thick bar),
//! and whiskers at 1.5 × IQR clipped to the actual min/max. This module
//! computes exactly those elements so the `atlarge-biblio` experiments can
//! regenerate the figure's series as numbers.

use crate::descriptive::Summary;

/// All statistics a violin plot renders for one group of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolinSummary {
    mean: f64,
    median: f64,
    q1: f64,
    q3: f64,
    whisker_lo: f64,
    whisker_hi: f64,
    density: Vec<(f64, f64)>,
    n: usize,
}

impl ViolinSummary {
    /// Computes the violin summary of `samples`, with the KDE evaluated at
    /// `grid_points` evenly spaced points across the whisker range.
    ///
    /// The KDE uses a Gaussian kernel with Silverman's rule-of-thumb
    /// bandwidth, the default of most plotting packages.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `grid_points == 0`.
    pub fn from_samples(samples: &[f64], grid_points: usize) -> Self {
        assert!(!samples.is_empty(), "violin of empty sample set");
        assert!(grid_points > 0, "violin needs at least one grid point");
        let s = Summary::from_slice(samples);
        let q1 = s.quantile(0.25);
        let q3 = s.quantile(0.75);
        let iqr = q3 - q1;
        // Whiskers: 1.5×IQR, clipped to the observed min/max (paper caption).
        let whisker_lo = (q1 - 1.5 * iqr).max(s.min());
        let whisker_hi = (q3 + 1.5 * iqr).min(s.max());

        let bw = silverman_bandwidth(&s);
        let lo = whisker_lo - 3.0 * bw;
        let hi = whisker_hi + 3.0 * bw;
        let density = kde_gaussian(samples, bw, lo, hi, grid_points);

        ViolinSummary {
            mean: s.mean(),
            median: s.median(),
            q1,
            q3,
            whisker_lo,
            whisker_hi,
            density,
            n: samples.len(),
        }
    }

    /// The mean (plotted as a star in the paper).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The median (white dot).
    pub fn median(&self) -> f64 {
        self.median
    }

    /// First quartile (bottom of the thick IQR bar).
    pub fn q1(&self) -> f64 {
        self.q1
    }

    /// Third quartile (top of the thick IQR bar).
    pub fn q3(&self) -> f64 {
        self.q3
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lower whisker (1.5 × IQR below Q1, clipped to the min).
    pub fn whisker_lo(&self) -> f64 {
        self.whisker_lo
    }

    /// Upper whisker (1.5 × IQR above Q3, clipped to the max).
    pub fn whisker_hi(&self) -> f64 {
        self.whisker_hi
    }

    /// Kernel density estimate as `(x, density)` pairs.
    pub fn density(&self) -> &[(f64, f64)] {
        &self.density
    }

    /// Number of samples summarized.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Density mode location (x of the maximum density).
    pub fn mode(&self) -> f64 {
        self.density
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite density"))
            .map(|(x, _)| x)
            .unwrap_or(self.median)
    }
}

/// Silverman's rule-of-thumb bandwidth.
///
/// Falls back to a small positive bandwidth for degenerate (zero-spread)
/// samples so the KDE stays well-defined.
pub fn silverman_bandwidth(s: &Summary) -> f64 {
    let n = s.len() as f64;
    let sigma = s.std_dev();
    let iqr = s.iqr();
    let spread = if iqr > 0.0 {
        sigma.min(iqr / 1.34)
    } else {
        sigma
    };
    let bw = 0.9 * spread * n.powf(-0.2);
    if bw > 0.0 {
        bw
    } else {
        0.1
    }
}

/// Gaussian kernel density estimate of `samples` on an even grid.
///
/// # Panics
///
/// Panics if `bandwidth <= 0`, `samples` is empty, or `points == 0`.
pub fn kde_gaussian(
    samples: &[f64],
    bandwidth: f64,
    lo: f64,
    hi: f64,
    points: usize,
) -> Vec<(f64, f64)> {
    assert!(bandwidth > 0.0, "bandwidth must be positive");
    assert!(!samples.is_empty(), "kde of empty sample set");
    assert!(points > 0, "kde needs at least one grid point");
    let norm = 1.0 / (samples.len() as f64 * bandwidth * (std::f64::consts::TAU).sqrt());
    let step = if points > 1 {
        (hi - lo) / (points as f64 - 1.0)
    } else {
        0.0
    };
    (0..points)
        .map(|i| {
            let x = lo + step * i as f64;
            let d: f64 = samples
                .iter()
                .map(|&xi| {
                    let z = (x - xi) / bandwidth;
                    (-0.5 * z * z).exp()
                })
                .sum::<f64>()
                * norm;
            (x, d)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_bracket_median() {
        let v = ViolinSummary::from_samples(&[1.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0], 64);
        assert!(v.q1() <= v.median());
        assert!(v.median() <= v.q3());
        assert_eq!(v.n(), 7);
    }

    #[test]
    fn whiskers_clip_to_observed_range() {
        let v = ViolinSummary::from_samples(&[1.0, 2.0, 3.0, 4.0], 16);
        assert!(v.whisker_lo() >= 1.0);
        assert!(v.whisker_hi() <= 4.0);
    }

    #[test]
    fn kde_integrates_to_about_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let s = Summary::from_slice(&samples);
        let bw = silverman_bandwidth(&s);
        let pts = kde_gaussian(&samples, bw, -5.0, 15.0, 400);
        let step = pts[1].0 - pts[0].0;
        let integral: f64 = pts.iter().map(|&(_, d)| d * step).sum();
        assert!((integral - 1.0).abs() < 0.05, "integral {integral}");
    }

    #[test]
    fn mode_near_data_peak() {
        // Heavy mass at 2.0 — mode should land near it.
        let mut samples = vec![2.0; 50];
        samples.extend([1.0, 3.0, 4.0]);
        let v = ViolinSummary::from_samples(&samples, 200);
        assert!((v.mode() - 2.0).abs() < 0.5, "mode {}", v.mode());
    }

    #[test]
    fn degenerate_samples_are_handled() {
        let v = ViolinSummary::from_samples(&[3.0, 3.0, 3.0], 16);
        assert_eq!(v.median(), 3.0);
        assert_eq!(v.iqr(), 0.0);
        assert!(v.density().iter().all(|&(_, d)| d.is_finite()));
    }

    #[test]
    fn integer_scores_one_to_four() {
        // The paper's scores are integers 1..=4; sanity-check the summary.
        let scores = [1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 4.0];
        let v = ViolinSummary::from_samples(&scores, 64);
        assert!(v.mean() > 2.0 && v.mean() < 3.0);
        assert_eq!(v.median(), 2.0);
    }
}
