//! A work-stealing fork-join executor on `std::thread`.
//!
//! Jobs are indexed `0..n`; each worker owns a deque seeded round-robin
//! and pops from its front, stealing from the *back* of a victim's
//! deque when its own runs dry — the classic work-stealing discipline,
//! on plain `Mutex<VecDeque>` structures (the workspace stays
//! dependency-free; uncontended std mutexes are ~20ns, far below the
//! cost of any simulation run).
//!
//! Results are returned **in job-index order regardless of execution
//! interleaving**, which is what lets the campaign engine guarantee
//! byte-identical aggregation between serial and parallel runs.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Runs `jobs` invocations of `job` on up to `threads` workers and
/// returns the results in job-index order.
///
/// `threads <= 1` (or fewer than two jobs) short-circuits to a plain
/// serial loop — the reference execution the parallel path must match.
pub fn run_indexed<T, F>(jobs: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let workers = threads.min(jobs);
    // Round-robin initial partition: worker w owns jobs w, w+workers, …
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new(((w..jobs).step_by(workers)).collect()))
        .collect();

    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let chunks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let job = &job;
                scope.spawn(move || {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        // Own queue first (front), then steal from the
                        // back of the first non-empty victim.
                        let next = queues[w].lock().expect("queue lock").pop_front();
                        let next = next.or_else(|| {
                            (0..queues.len())
                                .filter(|&v| v != w)
                                .find_map(|v| queues[v].lock().expect("queue lock").pop_back())
                        });
                        match next {
                            Some(idx) => done.push((idx, job(idx))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });
    for (idx, value) in chunks.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "job {idx} ran twice");
        slots[idx] = Some(value);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} never ran")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 3;
        let serial = run_indexed(257, 1, f);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run_indexed(257, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = run_indexed(1000, 4, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i * 7), vec![0]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_job_costs_still_order_results() {
        // Early jobs are slow: stealing reorders execution but not output.
        let out = run_indexed(40, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 2
        });
        assert_eq!(out, (0..40).map(|i| i * 2).collect::<Vec<_>>());
    }
}
