//! Descriptive statistics over `f64` samples.

use std::fmt;

/// A descriptive summary of a set of samples.
///
/// The summary keeps a sorted copy of the samples so percentile queries are
/// exact (linear-interpolation quantiles, the same convention used by most
/// plotting toolkits for the violin plots of Figure 3).
///
/// # Examples
///
/// ```
/// use atlarge_stats::descriptive::Summary;
///
/// let s = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.quantile(0.5), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Summary {
    /// Builds a summary from any iterator of samples.
    ///
    /// Non-finite samples (NaN, ±inf) are rejected by [`Summary::try_from_iter`];
    /// this constructor panics on them.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    // Not `FromIterator`: that trait's `from_iter` cannot panic-document,
    // and the fallible twin `try_from_iter` is the primary constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::try_from_iter(iter).expect("samples must be finite")
    }

    /// Builds a summary from a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn from_slice(samples: &[f64]) -> Self {
        Self::from_iter(samples.iter().copied())
    }

    /// Fallible constructor: returns `None` if any sample is not finite.
    pub fn try_from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Option<Self> {
        let mut sorted: Vec<f64> = Vec::new();
        // Welford's online algorithm for numerically stable mean/variance.
        let mut mean = 0.0;
        let mut m2 = 0.0;
        for (i, x) in iter.into_iter().enumerate() {
            if !x.is_finite() {
                return None;
            }
            sorted.push(x);
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Some(Summary { sorted, mean, m2 })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the summary holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean. Zero for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n−1 denominator). Zero when n < 2.
    pub fn variance(&self) -> f64 {
        if self.len() < 2 {
            0.0
        } else {
            self.m2 / (self.len() as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`sd / sqrt(n)`). Zero when n < 2.
    pub fn std_error(&self) -> f64 {
        if self.len() < 2 {
            0.0
        } else {
            self.std_dev() / (self.len() as f64).sqrt()
        }
    }

    /// Half-width of the two-sided 95% confidence interval on the mean,
    /// using Student's t critical value for the sample's degrees of
    /// freedom (exact table through df = 30, the asymptote beyond).
    /// Zero when n < 2 — a single replication carries no interval.
    pub fn ci95_half_width(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        // Two-sided 97.5% t quantiles for df = 1..=30.
        const T975: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let df = self.len() - 1;
        let t = if df <= 30 { T975[df - 1] } else { 1.96 };
        t * self.std_error()
    }

    /// Coefficient of variation (std dev / mean); zero when the mean is zero.
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// Smallest sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty summary.
    pub fn min(&self) -> f64 {
        *self.sorted.first().expect("min of empty summary")
    }

    /// Largest sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty summary.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("max of empty summary")
    }

    /// Linear-interpolation quantile, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on an empty summary or if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.is_empty(), "quantile of empty summary");
        assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q * (self.sorted.len() as f64 - 1.0);
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Interquartile range: `Q3 − Q1`.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Percentile helper: `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Sum of the samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.len() as f64
    }

    /// Read-only view of the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples strictly below `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&x| x < threshold);
        n as f64 / self.len() as f64
    }

    /// Fraction of samples greater than or equal to `threshold`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        1.0 - self.fraction_below(threshold)
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_iter(iter)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p95={:.3} max={:.3}",
            self.len(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.quantile(0.95),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_textbook() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance 4.0 -> sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = Summary::from_slice(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.quantile(0.0), 10.0);
        assert_eq!(s.quantile(1.0), 40.0);
        assert!((s.quantile(0.25) - 17.5).abs() < 1e-12);
        assert!((s.median() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let s = Summary::from_iter((0..101).map(|i| i as f64));
        assert!((s.iqr() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_counts_strictly() {
        let s = Summary::from_slice(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(s.fraction_below(2.0), 0.25);
        assert_eq!(s.fraction_at_least(2.0), 0.75);
    }

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::from_slice(&[]);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.fraction_below(1.0), 0.0);
    }

    #[test]
    fn rejects_nan() {
        assert!(Summary::try_from_iter([1.0, f64::NAN]).is_none());
        assert!(Summary::try_from_iter([f64::INFINITY]).is_none());
    }

    #[test]
    fn display_is_nonempty() {
        let s = Summary::from_slice(&[1.0]);
        assert!(!format!("{s}").is_empty());
        let e = Summary::from_slice(&[]);
        assert_eq!(format!("{e}"), "n=0");
    }

    #[test]
    fn ci95_matches_hand_computation() {
        // n=4, sd=1: half-width = t(3) * 1/2 = 3.182/2.
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 2.0]);
        let hw = s.ci95_half_width();
        assert!((hw - 3.182 * s.std_error()).abs() < 1e-12);
        assert!((s.std_error() - s.std_dev() / 2.0).abs() < 1e-12);
        // Degenerate cases carry no interval.
        assert_eq!(Summary::from_slice(&[5.0]).ci95_half_width(), 0.0);
        assert_eq!(Summary::from_slice(&[]).ci95_half_width(), 0.0);
        // Large n approaches the normal critical value.
        let big = Summary::from_iter((0..200).map(|i| f64::from(i % 7)));
        assert!((big.ci95_half_width() - 1.96 * big.std_error()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_quantiles() {
        let s = Summary::from_slice(&[7.0]);
        assert_eq!(s.quantile(0.0), 7.0);
        assert_eq!(s.quantile(0.37), 7.0);
        assert_eq!(s.quantile(1.0), 7.0);
    }
}
