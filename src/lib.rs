//! `atlarge` — an executable reproduction of *"The AtLarge Vision on the
//! Design of Distributed Systems and Ecosystems"* (ICDCS 2019).
//!
//! This facade crate re-exports every subsystem of the workspace so the
//! examples and downstream users can depend on a single crate:
//!
//! - [`core`] — the ATLARGE design framework as an executable engine
//!   (reasoning modes, design-space exploration, the Basic Design Cycle,
//!   catalogs of principles and challenges).
//! - [`des`] — the deterministic discrete-event simulation kernel every
//!   domain simulator runs on.
//! - [`telemetry`] — tracing, metrics, and run manifests: attach a
//!   [`telemetry::Recorder`] to any simulation for machine-readable traces.
//! - [`obsv`] — analysis over those exports: causal critical paths,
//!   Chrome-trace/flamegraph profiling, histogram quantiles, and
//!   cross-run regression diffing (see the `trace_lens` example).
//! - [`exp`] — the replicated, parallel experiment-campaign engine every
//!   Section-6 harness runs on: factor grids, derived seed streams, and
//!   deterministic serial/parallel execution.
//! - [`evolve`] — versioned state capsules and live policy evolution:
//!   capture → transform → resume handoffs that retire a policy and
//!   rebind its successor mid-simulation (see the `evolution_ab`
//!   example).
//! - [`serve`] — the persistent design-exploration server: every domain
//!   behind one HTTP query schema, with fingerprint-keyed result caching
//!   and streaming trace telemetry (see the `observatory_serve` example).
//! - [`stats`] / [`workload`] — shared statistics and workload models.
//! - Domain reproductions of the paper's Section-6 case studies:
//!   [`p2p`], [`mmog`], [`datacenter`], [`serverless`], [`graph`],
//!   [`scheduling`], [`autoscaling`], and [`biblio`] for the bibliometric
//!   figures.
//!
//! # Examples
//!
//! ```
//! use atlarge::stats::Summary;
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
//! assert_eq!(s.median(), 2.0);
//! ```

pub mod observatory;

pub use atlarge_autoscaling as autoscaling;
pub use atlarge_biblio as biblio;
pub use atlarge_core as core;
pub use atlarge_datacenter as datacenter;
pub use atlarge_des as des;
pub use atlarge_evolve as evolve;
pub use atlarge_exp as exp;
pub use atlarge_graph as graph;
pub use atlarge_mmog as mmog;
pub use atlarge_obsv as obsv;
pub use atlarge_p2p as p2p;
pub use atlarge_scheduling as scheduling;
pub use atlarge_serve as serve;
pub use atlarge_serverless as serverless;
pub use atlarge_stats as stats;
pub use atlarge_telemetry as telemetry;
pub use atlarge_workload as workload;
