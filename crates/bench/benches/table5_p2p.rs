//! Bench: regenerate Table 5 (the P2P study rows).

use atlarge_p2p::experiments::{render_table5, table5};
use atlarge_p2p::swarm::{run_swarm, SwarmConfig};
use atlarge_p2p::twofast::speedup_curve;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5_p2p");
    g.sample_size(10);
    g.bench_function("swarm_30_peers", |b| {
        let joins: Vec<f64> = (0..30).map(|i| i as f64 * 20.0).collect();
        let config = SwarmConfig {
            file_size: 50e6,
            ..SwarmConfig::default()
        };
        b.iter(|| run_swarm(config, std::hint::black_box(&joins), 200_000.0, 1))
    });
    g.bench_function("twofast_curve", |b| {
        b.iter(|| speedup_curve(64e3, 8.0, std::hint::black_box(8)))
    });
    g.finish();
    println!("{}", render_table5(&table5(1)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
