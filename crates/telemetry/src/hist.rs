//! Lock-free latency histograms for live measurement planes.
//!
//! A serving hot path cannot afford a mutex around a `BTreeMap` of
//! histograms: under tens of thousands of requests per second the lock
//! becomes the contention point the measurement was supposed to expose.
//! This module provides the workspace's wall-latency recorder built for
//! that path:
//!
//! - [`AtomicHistogram`] — fixed log-scale buckets over nanosecond
//!   durations, every bucket an `AtomicU64`; recording is three relaxed
//!   `fetch_add`s, no allocation, no lock, no fences.
//! - [`ShardedHistogram`] — N independent `AtomicHistogram`s; each
//!   recording thread is assigned a shard once (thread-local), so
//!   concurrent recorders do not even share cache lines. Reads merge
//!   all shards into a [`HistogramSnapshot`].
//! - [`HistogramSnapshot`] — a plain owned copy supporting quantiles,
//!   windowed deltas (`snapshot_now - snapshot_1s_ago` is the last
//!   second's histogram), and Prometheus-style cumulative bucket
//!   iteration.
//!
//! Bucket layout: HDR-style log₂ octaves with [`SUB`] linear
//! sub-buckets per octave, covering [`OCTAVE_MIN`]..=[`OCTAVE_MAX`]
//! (≈1 µs to ≈69 s) plus one overflow bucket. Relative error of a
//! reported quantile is bounded by one sub-bucket, i.e. ≤ 1/[`SUB`]
//! (25%) of the value — ample for latency percentiles spanning five
//! orders of magnitude.
//!
//! Like everything in this crate, these histograms measure *wall* time
//! and therefore feed reports (`/metrics`, `/watch`, `/stats`), never
//! simulation results — the `wall-clock-in-sim` contract in `lint.toml`
//! stays intact because the readings originate from
//! [`wall::Stopwatch`](crate::wall::Stopwatch).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Smallest resolved octave: durations below `2^OCTAVE_MIN` ns (≈1 µs)
/// merge into the first bucket.
pub const OCTAVE_MIN: u32 = 10;
/// Largest resolved octave: durations of `2^(OCTAVE_MAX+1)` ns (≈137 s)
/// and beyond land in the overflow bucket.
pub const OCTAVE_MAX: u32 = 36;
/// Linear sub-buckets per octave (`2^SUB_BITS`).
pub const SUB_BITS: u32 = 2;
/// Sub-bucket count per octave.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count, including the final overflow bucket.
pub const NUM_BUCKETS: usize = (OCTAVE_MAX - OCTAVE_MIN + 1) as usize * SUB + 1;

/// The bucket a duration of `ns` nanoseconds falls into.
pub fn bucket_index(ns: u64) -> usize {
    if ns < (1u64 << OCTAVE_MIN) {
        return 0;
    }
    let octave = 63 - u64::from(ns.leading_zeros());
    if octave > u64::from(OCTAVE_MAX) {
        return NUM_BUCKETS - 1;
    }
    let sub = ((ns >> (octave - u64::from(SUB_BITS))) & (SUB as u64 - 1)) as usize;
    (octave as usize - OCTAVE_MIN as usize) * SUB + sub
}

/// Exclusive upper bound of bucket `index`, in nanoseconds; `None` for
/// the overflow bucket (conceptually `+Inf`).
pub fn bucket_upper_ns(index: usize) -> Option<u64> {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index == NUM_BUCKETS - 1 {
        return None;
    }
    let octave = OCTAVE_MIN + (index / SUB) as u32;
    let sub = (index % SUB) as u64;
    Some((1u64 << octave) + (sub + 1) * (1u64 << (octave - SUB_BITS)))
}

/// A fixed-bucket log-scale histogram of nanosecond durations with
/// atomic counters. Recording never blocks; reading merges by copy.
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration. Three relaxed atomic adds; the counters
    /// are statistical, so no ordering beyond eventual visibility is
    /// needed.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds this histogram's counters into `snap`.
    fn merge_into(&self, snap: &mut HistogramSnapshot) {
        for (b, out) in self.buckets.iter().zip(snap.buckets.iter_mut()) {
            *out += b.load(Ordering::Relaxed);
        }
        snap.count += self.count.load(Ordering::Relaxed);
        snap.sum_ns += self.sum_ns.load(Ordering::Relaxed);
    }
}

/// Which shard the calling thread records into. Threads are assigned
/// round-robin on first use, so a pool of N workers spreads evenly
/// over min(N, shards) shards.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A set of per-thread-sharded [`AtomicHistogram`]s behind one
/// recording API. Writers touch only their own shard; readers merge
/// all shards into a snapshot.
pub struct ShardedHistogram {
    shards: Vec<AtomicHistogram>,
}

impl ShardedHistogram {
    /// A histogram sharded `shards` ways (rounded up to a power of
    /// two so shard selection is a mask, minimum 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        ShardedHistogram {
            shards: (0..n).map(|_| AtomicHistogram::new()).collect(),
        }
    }

    /// Records one nanosecond duration into the calling thread's shard.
    pub fn record(&self, ns: u64) {
        let slot = THREAD_SLOT.with(|s| *s);
        self.shards[slot & (self.shards.len() - 1)].record(ns);
    }

    /// Merges every shard into one owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::zero();
        for shard in &self.shards {
            shard.merge_into(&mut snap);
        }
        snap
    }
}

/// An owned, mergeable copy of histogram state at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (length [`NUM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn zero() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }

    /// Adds `other` into this snapshot (merging two recorders).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The histogram of everything recorded after `earlier` was taken:
    /// per-bucket saturating difference. This is how 1-second `/watch`
    /// windows fall out of two cumulative snapshots.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum_ns: self.sum_ns.saturating_sub(earlier.sum_ns),
        }
    }

    /// Nearest-rank quantile in nanoseconds — the upper edge of the
    /// bucket holding the sample of rank `ceil(q * count)`, matching
    /// the estimator convention of `atlarge_stats` and `atlarge_obsv`.
    /// The overflow bucket reports its lower edge (the largest bound
    /// the histogram can attest). `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(bucket_upper_ns(i).unwrap_or(1u64 << (OCTAVE_MAX + 1)));
            }
        }
        None // unreachable: cumulative count reaches self.count
    }

    /// [`HistogramSnapshot::quantile_ns`] converted to milliseconds.
    pub fn quantile_ms(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns as f64 / 1e6)
    }

    /// Mean recorded duration in milliseconds, `0` when empty.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// Cumulative `(upper_bound_ns, count_le)` pairs in bucket order —
    /// the exact shape of Prometheus `_bucket{le=...}` lines; the final
    /// pair has `None` as its bound (`le="+Inf"`) and carries the total
    /// count.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        (0..NUM_BUCKETS)
            .map(|i| {
                acc += self.buckets[i];
                (bucket_upper_ns(i), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_cover_the_range() {
        let mut prev = 0u64;
        for i in 0..NUM_BUCKETS - 1 {
            let upper = bucket_upper_ns(i).expect("finite bucket");
            assert!(upper > prev, "bucket {i} bound {upper} <= {prev}");
            prev = upper;
        }
        assert_eq!(bucket_upper_ns(NUM_BUCKETS - 1), None, "overflow is +Inf");
        // Every duration maps into a bucket whose bound contains it.
        for ns in [0, 1, 1023, 1024, 1025, 999_983, 1 << 30, u64::MAX] {
            let idx = bucket_index(ns);
            assert!(idx < NUM_BUCKETS);
            if let Some(upper) = bucket_upper_ns(idx) {
                assert!(ns < upper, "ns {ns} not below its bucket bound {upper}");
            }
        }
    }

    #[test]
    fn quantiles_are_within_one_sub_bucket() {
        let h = AtomicHistogram::new();
        for _ in 0..900 {
            h.record(1_000_000); // 1 ms
        }
        for _ in 0..100 {
            h.record(80_000_000); // 80 ms
        }
        let mut snap = HistogramSnapshot::zero();
        h.merge_into(&mut snap);
        assert_eq!(snap.count, 1000);
        let p50 = snap.quantile_ms(0.5).expect("samples");
        let p99 = snap.quantile_ms(0.99).expect("samples");
        // Upper-edge convention: estimate ∈ [value, value * (1 + 1/SUB)].
        assert!((1.0..=1.3).contains(&p50), "p50 {p50}");
        assert!((80.0..=100.1).contains(&p99), "p99 {p99}");
        assert!(snap.mean_ms() > 0.9 && snap.mean_ms() < 10.0);
    }

    #[test]
    fn deltas_recover_a_window() {
        let h = ShardedHistogram::new(4);
        h.record(2_000_000);
        let before = h.snapshot();
        h.record(50_000_000);
        h.record(50_000_000);
        let after = h.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count, 2);
        let p50 = window.quantile_ms(0.5).expect("window samples");
        assert!((50.0..=63.0).contains(&p50), "window p50 {p50}");
    }

    /// A shard whose first report lands mid-window: the `earlier`
    /// snapshot predates the shard entirely, so the delta must contain
    /// exactly the late shard's samples plus the veteran's new ones —
    /// never a wrapped or negative count.
    #[test]
    fn shard_first_reporting_mid_window_adds_only_its_samples() {
        let veteran = AtomicHistogram::new();
        let late = AtomicHistogram::new();
        veteran.record(1_000_000);
        // Window boundary: the late shard has not recorded yet, so the
        // merge at this instant sees only the veteran.
        let mut before = HistogramSnapshot::zero();
        veteran.merge_into(&mut before);
        // Mid-window, the late shard starts reporting.
        late.record(30_000_000);
        late.record(30_000_000);
        veteran.record(1_000_000);
        let mut after = HistogramSnapshot::zero();
        veteran.merge_into(&mut after);
        late.merge_into(&mut after);
        let window = after.delta(&before);
        assert_eq!(window.count, 3);
        assert_eq!(window.sum_ns, 61_000_000);
        let bucket_total: u64 = window.buckets.iter().sum();
        assert_eq!(bucket_total, 3, "every windowed sample sits in a bucket");
        assert!(
            window.buckets.iter().all(|&c| c <= 3),
            "a mid-window shard join must not wrap any bucket count"
        );
    }

    /// Snapshots from mismatched merge sets (an `earlier` that saw a
    /// shard the later merge missed, e.g. across a histogram reset)
    /// must clamp to zero, not wrap to 2^64 — the saturating per-bucket
    /// difference is what keeps a `/watch` window from reporting
    /// astronomical request counts at the boundary.
    #[test]
    fn delta_saturates_instead_of_wrapping_when_counts_regress() {
        let h = ShardedHistogram::new(2);
        h.record(4_000_000);
        let full = h.snapshot();
        let degenerate = HistogramSnapshot::zero().delta(&full);
        assert_eq!(degenerate.count, 0);
        assert_eq!(degenerate.sum_ns, 0);
        assert!(degenerate.buckets.iter().all(|&c| c == 0));
        assert_eq!(degenerate.quantile_ns(0.5), None, "empty window, no p50");
    }

    /// A recorder thread that spins up between two snapshots: its
    /// shard joins the merge mid-window and the delta counts exactly
    /// its contribution, with quantiles over only the new samples.
    #[test]
    fn thread_joining_between_snapshots_lands_in_that_window() {
        let h = std::sync::Arc::new(ShardedHistogram::new(8));
        h.record(1_000_000);
        let before = h.snapshot();
        let worker = {
            let h = std::sync::Arc::clone(&h);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    h.record(10_000_000);
                }
            })
        };
        worker.join().expect("recorder thread");
        let after = h.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count, 100);
        assert_eq!(window.sum_ns, 100 * 10_000_000);
        let p50 = window.quantile_ms(0.5).expect("window samples");
        assert!((10.0..=12.6).contains(&p50), "window p50 {p50}");
    }

    #[test]
    fn sharded_recording_from_many_threads_loses_nothing() {
        let h = std::sync::Arc::new(ShardedHistogram::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        h.record(5_000_000);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.sum_ns, 80_000 * 5_000_000);
    }

    #[test]
    fn cumulative_ends_at_total_count_and_inf() {
        let h = AtomicHistogram::new();
        h.record(10); // underflow -> first bucket
        h.record(1 << 40); // overflow -> last bucket
        h.record(1_000_000);
        let mut snap = HistogramSnapshot::zero();
        h.merge_into(&mut snap);
        let cum = snap.cumulative();
        assert_eq!(cum.len(), NUM_BUCKETS);
        assert_eq!(cum.last().expect("buckets").0, None);
        assert_eq!(cum.last().expect("buckets").1, 3);
        // Cumulative counts are monotone nondecreasing.
        for pair in cum.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }
}
