//! `atlarge-bench` — the benchmark harness of the AtLarge reproduction.
//!
//! Every table and figure of the paper has a Criterion bench target under
//! `benches/` that both measures the experiment's cost and prints its
//! regenerated rows/series:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig1_keywords` | Figure 1 |
//! | `fig2_trends` | Figure 2 |
//! | `fig3_reviews` | Figure 3 |
//! | `fig6_exploration` | Figures 6–7 |
//! | `fig8_bdc` | Figure 8, Figures 4–5, Tables 1–3 |
//! | `fig9_refarch` | Figure 9 |
//! | `table5_p2p` | Table 5 |
//! | `table6_mmog` | Table 6 |
//! | `table7_serverless` | Table 7 |
//! | `table8_graphalytics` | Table 8 |
//! | `table9_portfolio` | Table 9 |
//! | `sec67_autoscaling` | §6.7 campaign |
//!
//! Run one with `cargo bench -p atlarge-bench --bench table9_portfolio`,
//! or everything with `cargo bench --workspace`.

/// The bench targets and the paper artifact each regenerates.
pub fn targets() -> Vec<(&'static str, &'static str)> {
    vec![
        ("fig1_keywords", "Figure 1"),
        ("fig2_trends", "Figure 2"),
        ("fig3_reviews", "Figure 3"),
        ("fig6_exploration", "Figures 6-7"),
        ("fig8_bdc", "Figure 8, Figures 4-5, Tables 1-3"),
        ("fig9_refarch", "Figure 9"),
        ("table5_p2p", "Table 5"),
        ("table6_mmog", "Table 6"),
        ("table7_serverless", "Table 7"),
        ("table8_graphalytics", "Table 8"),
        ("table9_portfolio", "Table 9"),
        ("sec67_autoscaling", "Section 6.7"),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_paper_artifact_has_a_target() {
        let targets = super::targets();
        assert_eq!(targets.len(), 12);
        for fig in ["Figure 1", "Figure 2", "Figure 3", "Figure 9"] {
            assert!(targets.iter().any(|(_, a)| *a == fig), "missing {fig}");
        }
        for table in ["Table 5", "Table 6", "Table 7", "Table 8", "Table 9"] {
            assert!(targets.iter().any(|(_, a)| *a == table), "missing {table}");
        }
    }
}
