//! A small blocking HTTP client for the server's dialect — used by the
//! integration tests, the load bench, and the `observatory_client`
//! example, so none of them need an external HTTP dependency.
//!
//! Supports exactly what the server emits: fixed `Content-Length`
//! bodies and `Transfer-Encoding: chunked` streams (decoded fully
//! before returning). One-shot [`get`] opens a fresh connection;
//! [`ClientConn`] keeps one open for keep-alive request sequences.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A fully read response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code of the response line.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (de-chunked when the transfer was chunked).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn bad_data(context: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, context.to_string())
}

fn read_response<R: BufRead>(reader: &mut R) -> std::io::Result<HttpResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad_data("connection closed before status line"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_data("connection closed inside headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data("malformed header"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().ok();
        }
        if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value));
    }

    let body = if chunked {
        read_chunked(reader)?
    } else {
        let length = content_length.ok_or_else(|| bad_data("response without length"))?;
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        body
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn read_chunked<R: BufRead>(reader: &mut R) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            return Err(bad_data("connection closed inside chunked body"));
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad_data("malformed chunk size"))?;
        if size == 0 {
            let mut trailer = String::new();
            reader.read_line(&mut trailer)?; // the final CRLF
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad_data("chunk not terminated by CRLF"));
        }
    }
}

/// A response whose body is consumed incrementally, line by line — the
/// client side of the server's streaming endpoints (`/trace`,
/// `/watch`). Dropping it mid-stream closes the connection, which the
/// server observes as a hangup on its next write.
pub struct StreamingResponse {
    /// Status code of the response line.
    pub status: u16,
    /// Header `(name, value)` pairs in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    reader: BufReader<TcpStream>,
    chunked: bool,
    /// Bytes of a fixed-length body not yet consumed (non-chunked).
    remaining_fixed: usize,
    done: bool,
    pending: Vec<u8>,
}

impl StreamingResponse {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The next decoded body line (without its trailing newline), or
    /// `None` once the stream's terminating chunk has been read.
    /// Blocks until the server emits the next line.
    pub fn next_line(&mut self) -> std::io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let rest = self.pending.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.pending, rest);
                line.pop(); // the newline
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            if self.done {
                if self.pending.is_empty() {
                    return Ok(None);
                }
                let line = std::mem::take(&mut self.pending);
                return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
            }
            self.fill()?;
        }
    }

    /// Reads one more chunk (or fixed-body slice) into `pending`.
    fn fill(&mut self) -> std::io::Result<()> {
        if self.chunked {
            let mut size_line = String::new();
            if self.reader.read_line(&mut size_line)? == 0 {
                return Err(bad_data("connection closed inside chunked body"));
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| bad_data("malformed chunk size"))?;
            if size == 0 {
                let mut trailer = String::new();
                self.reader.read_line(&mut trailer)?; // the final CRLF
                self.done = true;
                return Ok(());
            }
            let start = self.pending.len();
            self.pending.resize(start + size, 0);
            self.reader.read_exact(&mut self.pending[start..])?;
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
            if &crlf != b"\r\n" {
                return Err(bad_data("chunk not terminated by CRLF"));
            }
        } else {
            let start = self.pending.len();
            self.pending.resize(start + self.remaining_fixed, 0);
            self.reader.read_exact(&mut self.pending[start..])?;
            self.remaining_fixed = 0;
            self.done = true;
        }
        Ok(())
    }
}

/// Opens a fresh connection and returns once the response head is in,
/// leaving the body to be consumed line by line — for the streaming
/// endpoints, where reading the whole body first would defeat the
/// point. Non-chunked (error) responses also work: their fixed body
/// comes back through [`StreamingResponse::next_line`] the same way.
pub fn get_stream(addr: &str, path_and_query: &str) -> std::io::Result<StreamingResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let head =
        format!("GET {path_and_query} HTTP/1.1\r\nHost: atlarge\r\nConnection: close\r\n\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()?;

    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(bad_data("connection closed before status line"));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| bad_data("malformed status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_data("connection closed inside headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad_data("malformed header"))?;
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().unwrap_or(0);
        }
        if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        headers.push((name, value));
    }
    Ok(StreamingResponse {
        status,
        headers,
        reader,
        chunked,
        remaining_fixed: content_length,
        done: false,
        pending: Vec::new(),
    })
}

/// One request over a fresh connection (`Connection: close`).
pub fn get(addr: &str, path_and_query: &str) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect(addr)?;
    // One `write_all` per request head, and no Nagle: a head split
    // across small writes interacts with delayed ACKs for a flat
    // ~40 ms per round-trip on loopback.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let head =
        format!("GET {path_and_query} HTTP/1.1\r\nHost: atlarge\r\nConnection: close\r\n\r\n");
    writer.write_all(head.as_bytes())?;
    writer.flush()?;
    read_response(&mut reader)
}

/// A keep-alive connection for request sequences (benches hammer the
/// server through these to measure the server, not the TCP handshake).
pub struct ClientConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ClientConn {
    /// Connects to `addr`.
    pub fn connect(addr: &str) -> std::io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ClientConn {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Issues one keep-alive GET and reads the full response.
    pub fn get(&mut self, path_and_query: &str) -> std::io::Result<HttpResponse> {
        let head = format!("GET {path_and_query} HTTP/1.1\r\nHost: atlarge\r\n\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_fixed_length_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 4\r\nX-Atlarge-Cache: hit\r\n\r\nbody";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("parses");
        assert_eq!(r.status, 200);
        assert_eq!(r.header("x-atlarge-cache"), Some("hit"));
        assert_eq!(r.header("X-Atlarge-Cache"), Some("hit"), "case-insensitive");
        assert_eq!(r.body, b"body");
    }

    #[test]
    fn decodes_a_chunked_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nhello\n\r\n5\r\nworld\r\n0\r\n\r\n";
        let r = read_response(&mut BufReader::new(&raw[..])).expect("parses");
        assert_eq!(r.body_str(), "hello\nworld");
    }

    #[test]
    fn truncated_responses_are_errors_not_hangs() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_response(&mut BufReader::new(&raw[..])).is_err());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nnope";
        assert!(read_response(&mut BufReader::new(&raw[..])).is_err());
    }
}
