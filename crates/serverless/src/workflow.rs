//! A Fission-Workflows-style serverless workflow engine.
//!
//! The AtLarge–Platform9 collaboration "co-created the Fission Workflows
//! system, which acts as a workflow execution engine in the hierarchical
//! Kubernetes-Fission ecosystem". Here composite functions are an
//! expression tree — sequence, parallel, choice, and atomic task — and
//! the engine evaluates them against a FaaS platform model, paying
//! orchestration overhead per step. The experiments compare the engine's
//! makespan against the workflow's intrinsic critical path.

use crate::platform::{FaasConfig, FunctionSpec};

/// A composite function.
#[derive(Debug, Clone, PartialEq)]
pub enum Composite {
    /// Invoke one function by registry index.
    Task(usize),
    /// Run parts one after another.
    Sequence(Vec<Composite>),
    /// Run branches concurrently; join on the slowest.
    Parallel(Vec<Composite>),
    /// Evaluate the condition function, then run one branch by its
    /// (deterministic) outcome.
    Choice {
        /// Condition function index.
        condition: usize,
        /// Branch when the condition selects true (even hash).
        then_branch: Box<Composite>,
        /// Branch otherwise.
        else_branch: Box<Composite>,
    },
}

impl Composite {
    /// Number of atomic tasks (including conditions) in the expression.
    pub fn task_count(&self) -> usize {
        match self {
            Composite::Task(_) => 1,
            Composite::Sequence(parts) | Composite::Parallel(parts) => {
                parts.iter().map(Composite::task_count).sum()
            }
            Composite::Choice {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.task_count() + else_branch.task_count(),
        }
    }
}

/// The engine's execution report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkflowRun {
    /// End-to-end makespan, seconds.
    pub makespan: f64,
    /// Functions actually invoked.
    pub invocations: usize,
    /// Seconds spent in orchestration overhead (routing + engine steps).
    pub overhead: f64,
}

/// The workflow engine: evaluates composites over a warm platform model.
///
/// Warm-instance execution is assumed (the engine keeps its functions
/// hot); each step pays the router overhead plus the engine's own
/// `step_overhead`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowEngine {
    registry: Vec<FunctionSpec>,
    config: FaasConfig,
    /// Engine bookkeeping cost per orchestration step, seconds.
    pub step_overhead: f64,
}

impl WorkflowEngine {
    /// Creates an engine over a function registry.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn new(registry: Vec<FunctionSpec>, config: FaasConfig) -> Self {
        assert!(!registry.is_empty(), "registry must not be empty");
        WorkflowEngine {
            registry,
            config,
            step_overhead: 0.005,
        }
    }

    fn invoke_time(&self, func: usize) -> f64 {
        self.config.router_overhead + self.step_overhead + self.registry[func].exec_time
    }

    /// Executes a composite; deterministic (choices hash the condition
    /// function's index with `seed`).
    pub fn execute(&self, wf: &Composite, seed: u64) -> WorkflowRun {
        let (time, invocations, overhead) = self.eval(wf, seed);
        WorkflowRun {
            makespan: time,
            invocations,
            overhead,
        }
    }

    fn eval(&self, wf: &Composite, seed: u64) -> (f64, usize, f64) {
        let per_step = self.config.router_overhead + self.step_overhead;
        match wf {
            Composite::Task(f) => (self.invoke_time(*f), 1, per_step),
            Composite::Sequence(parts) => {
                let mut t = 0.0;
                let mut n = 0;
                let mut o = 0.0;
                for p in parts {
                    let (pt, pn, po) = self.eval(p, seed);
                    t += pt;
                    n += pn;
                    o += po;
                }
                (t, n, o)
            }
            Composite::Parallel(parts) => {
                let mut t: f64 = 0.0;
                let mut n = 0;
                let mut o = 0.0;
                for p in parts {
                    let (pt, pn, po) = self.eval(p, seed);
                    t = t.max(pt);
                    n += pn;
                    o += po;
                }
                (t, n, o)
            }
            Composite::Choice {
                condition,
                then_branch,
                else_branch,
            } => {
                let cond_t = self.invoke_time(*condition);
                let pick_then = (seed ^ *condition as u64).count_ones().is_multiple_of(2);
                let (bt, bn, bo) = if pick_then {
                    self.eval(then_branch, seed)
                } else {
                    self.eval(else_branch, seed)
                };
                (cond_t + bt, 1 + bn, per_step + bo)
            }
        }
    }

    /// Intrinsic critical path: the same evaluation with zero overhead —
    /// what a perfect orchestrator would achieve.
    pub fn critical_path(&self, wf: &Composite, seed: u64) -> f64 {
        let zero = WorkflowEngine {
            registry: self.registry.clone(),
            config: FaasConfig {
                router_overhead: 0.0,
                ..self.config
            },
            step_overhead: 0.0,
        };
        zero.execute(wf, seed).makespan
    }
}

/// A stateful platform session for workflow execution: tracks warm
/// instances per function across invocations, so consecutive workflow
/// runs feel the cold-start economics the \[102\] challenge describes —
/// the first run boots instances, later runs reuse them until the
/// keep-alive expires.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSession {
    registry: Vec<FunctionSpec>,
    config: FaasConfig,
    /// Per function: times instances went idle.
    idle: Vec<Vec<f64>>,
    cold_starts: usize,
    invocations: usize,
}

impl PlatformSession {
    /// Creates a session over a registry.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty.
    pub fn new(registry: Vec<FunctionSpec>, config: FaasConfig) -> Self {
        assert!(!registry.is_empty(), "registry must not be empty");
        let idle = registry.iter().map(|_| Vec::new()).collect();
        PlatformSession {
            registry,
            config,
            idle,
            cold_starts: 0,
            invocations: 0,
        }
    }

    /// Cold starts paid so far.
    pub fn cold_starts(&self) -> usize {
        self.cold_starts
    }

    /// Invocations executed so far.
    pub fn invocations(&self) -> usize {
        self.invocations
    }

    /// Invokes function `f` at time `t`; returns the finish time.
    fn invoke(&mut self, f: usize, t: f64) -> f64 {
        self.invocations += 1;
        let ka = self.config.keep_alive;
        // A warm instance is one that went idle within the keep-alive.
        let warm = self.idle[f]
            .iter()
            .position(|&idle_since| idle_since <= t && t - idle_since <= ka);
        let mut delay = self.config.router_overhead + self.registry[f].exec_time;
        match warm {
            Some(pos) => {
                self.idle[f].swap_remove(pos);
            }
            None => {
                self.cold_starts += 1;
                delay += self.config.cold_start;
            }
        }
        let finish = t + delay;
        self.idle[f].push(finish);
        finish
    }

    /// Executes a composite starting at time `start`; returns the finish
    /// time. Parallel branches invoke concurrently, so each may need its
    /// own (possibly cold) instance — exactly the fan-out cold-start
    /// burst real FaaS workflows hit.
    pub fn execute(&mut self, wf: &Composite, start: f64, seed: u64) -> f64 {
        match wf {
            Composite::Task(f) => self.invoke(*f, start),
            Composite::Sequence(parts) => parts.iter().fold(start, |t, p| self.execute(p, t, seed)),
            Composite::Parallel(parts) => parts
                .iter()
                .map(|p| self.execute(p, start, seed))
                .fold(start, f64::max),
            Composite::Choice {
                condition,
                then_branch,
                else_branch,
            } => {
                let t = self.invoke(*condition, start);
                let pick_then = (seed ^ *condition as u64).count_ones().is_multiple_of(2);
                if pick_then {
                    self.execute(then_branch, t, seed)
                } else {
                    self.execute(else_branch, t, seed)
                }
            }
        }
    }
}

/// The canonical demo workflow: prepare, fan out map tasks, reduce.
pub fn map_reduce_workflow(mappers: usize) -> Composite {
    Composite::Sequence(vec![
        Composite::Task(0),
        Composite::Parallel((0..mappers).map(|_| Composite::Task(1)).collect()),
        Composite::Task(2),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Vec<FunctionSpec> {
        vec![
            FunctionSpec {
                name: "prepare".into(),
                exec_time: 0.1,
                memory_gb: 0.25,
            },
            FunctionSpec {
                name: "map".into(),
                exec_time: 1.0,
                memory_gb: 0.5,
            },
            FunctionSpec {
                name: "reduce".into(),
                exec_time: 0.3,
                memory_gb: 0.5,
            },
        ]
    }

    fn engine() -> WorkflowEngine {
        WorkflowEngine::new(registry(), FaasConfig::default())
    }

    #[test]
    fn parallel_fans_out_in_constant_depth() {
        let e = engine();
        let seq_like = Composite::Sequence((0..8).map(|_| Composite::Task(1)).collect());
        let par = Composite::Parallel((0..8).map(|_| Composite::Task(1)).collect());
        let s = e.execute(&seq_like, 1);
        let p = e.execute(&par, 1);
        assert_eq!(s.invocations, 8);
        assert_eq!(p.invocations, 8);
        assert!(
            s.makespan > 7.0 * p.makespan / 2.0,
            "seq {} par {}",
            s.makespan,
            p.makespan
        );
    }

    #[test]
    fn map_reduce_makespan_close_to_critical_path() {
        let e = engine();
        let wf = map_reduce_workflow(16);
        let run = e.execute(&wf, 2);
        let cp = e.critical_path(&wf, 2);
        assert!(run.makespan >= cp);
        // Engine overhead within 10% of the intrinsic time — the
        // "production-ready workflow engine" bar.
        assert!(
            run.makespan < cp * 1.1,
            "makespan {} vs critical path {cp}",
            run.makespan
        );
        assert_eq!(run.invocations, 18);
    }

    #[test]
    fn choice_executes_one_branch() {
        let wf = Composite::Choice {
            condition: 0,
            then_branch: Box::new(Composite::Task(1)),
            else_branch: Box::new(Composite::Sequence(vec![
                Composite::Task(1),
                Composite::Task(1),
            ])),
        };
        let e = engine();
        let r = e.execute(&wf, 4);
        assert!(r.invocations == 2 || r.invocations == 3);
        assert_eq!(wf.task_count(), 4);
    }

    #[test]
    fn overhead_grows_with_task_count() {
        let e = engine();
        let small = e.execute(&map_reduce_workflow(2), 1);
        let large = e.execute(&map_reduce_workflow(32), 1);
        assert!(large.overhead > small.overhead);
    }

    #[test]
    fn deterministic() {
        let e = engine();
        let wf = map_reduce_workflow(4);
        assert_eq!(e.execute(&wf, 9), e.execute(&wf, 9));
    }

    #[test]
    fn session_pays_cold_starts_once() {
        // First run boots every fan-out instance; an immediate second run
        // reuses them all.
        let mut session = PlatformSession::new(registry(), FaasConfig::default());
        let wf = map_reduce_workflow(8);
        let first_finish = session.execute(&wf, 0.0, 1);
        let first_cold = session.cold_starts();
        let second_finish = session.execute(&wf, first_finish + 1.0, 1);
        let second_cold = session.cold_starts() - first_cold;
        assert_eq!(first_cold, 10, "prepare + 8 maps + reduce all cold");
        assert_eq!(second_cold, 0, "warm reuse on the second run");
        let first_dur = first_finish;
        let second_dur = second_finish - (first_finish + 1.0);
        assert!(
            second_dur < first_dur,
            "warm run {second_dur} should beat cold run {first_dur}"
        );
    }

    #[test]
    fn keep_alive_expiry_recolds_the_session() {
        let cfg = FaasConfig {
            keep_alive: 5.0,
            ..FaasConfig::default()
        };
        let mut session = PlatformSession::new(registry(), cfg);
        let wf = map_reduce_workflow(4);
        let f1 = session.execute(&wf, 0.0, 1);
        let cold_before = session.cold_starts();
        session.execute(&wf, f1 + 100.0, 1);
        assert_eq!(
            session.cold_starts(),
            cold_before * 2,
            "everything expired and re-cold-started"
        );
    }

    #[test]
    fn parallel_fanout_needs_parallel_instances() {
        // Sequential invocations of the same function reuse one instance;
        // a parallel fan-out of the same size needs one instance each.
        let mut seq_session = PlatformSession::new(registry(), FaasConfig::default());
        let seq = Composite::Sequence((0..6).map(|_| Composite::Task(1)).collect());
        seq_session.execute(&seq, 0.0, 1);
        assert_eq!(seq_session.cold_starts(), 1);

        let mut par_session = PlatformSession::new(registry(), FaasConfig::default());
        let par = Composite::Parallel((0..6).map(|_| Composite::Task(1)).collect());
        par_session.execute(&par, 0.0, 1);
        assert_eq!(par_session.cold_starts(), 6);
    }
}
