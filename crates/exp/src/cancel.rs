//! Cooperative cancellation for campaign execution.
//!
//! A long-running exploration service cannot afford to finish a
//! campaign whose requester is gone: a [`CancelToken`] is a cheaply
//! cloneable flag the executor and the replication loops poll between
//! jobs, so an in-flight cell stops at the next job boundary instead of
//! running to completion. Cancellation is *cooperative and
//! deterministic-safe*: a run either completes (and is byte-identical
//! to any other completion) or returns nothing — a cancelled run never
//! yields partial results that could be mistaken for a full campaign.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Cloning shares the flag: cancelling any clone cancels them all.
/// Tokens start un-cancelled and can only ever transition to cancelled
/// (there is no reset — one token per unit of cancellable work).
///
/// # Examples
///
/// ```
/// use atlarge_exp::cancel::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested on this token (or any clone).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn token_crosses_threads() {
        let token = CancelToken::new();
        let t = token.clone();
        std::thread::spawn(move || t.cancel())
            .join()
            .expect("cancel thread");
        assert!(token.is_cancelled());
    }
}
