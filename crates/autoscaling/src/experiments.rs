//! The §6.7 experiment campaign: autoscalers × workloads, ranked and
//! graded.
//!
//! \[126\] ran N=5 experiments and designed "two ranking methods to
//! aggregate the results into head-to-head comparisons"; \[127\] added cost,
//! SLAs, and "a method to grade autoscalers, by combining their scores
//! judiciously"; \[128\] redid the campaign in simulation and stressed
//! *independent corroboration*. This module runs the in-silico campaign
//! across the roster and workload shapes, computes the twelve metrics per
//! cell, and aggregates with head-to-head, Borda, and weighted grading.

use crate::autoscaler::{Adapt, Hist, Plan, React, RecentPeak, Reg, Token};
use crate::cost::{BillingModel, DeadlineSla};
use crate::evolve::{run_with_swaps, EvolvingScaler};
use crate::metrics::ElasticityReport;
use crate::sim::{run, AutoscaleConfig, RunResult};
use atlarge_evolve::SwapPlan;
use atlarge_exp::registry::{parse_param, run_replicated, CellOutput, CellScenario, ParamSpec};
use atlarge_exp::{Campaign, CampaignResult, CancelToken, Scenario, SeedMode};
use atlarge_stats::descriptive::Summary;
use atlarge_stats::ranking::{Direction, ScoreTable};
use atlarge_telemetry::tracer::Tracer;
use atlarge_workload::arrivals::{ArrivalProcess, Bursty, Poisson};
use atlarge_workload::workflow::{generate, Shape, Workflow};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// The workload shapes of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkflowWorkload {
    /// Steady Poisson arrivals of fork-join workflows.
    Steady,
    /// Bursty arrivals (the autoscaler stress case).
    Bursty,
    /// Long chains (little parallelism; scaling barely helps).
    Chains,
    /// Wide layered DAGs (high parallelism; scaling matters).
    Wide,
}

impl WorkflowWorkload {
    /// All campaign workloads.
    pub fn all() -> [WorkflowWorkload; 4] {
        [
            WorkflowWorkload::Steady,
            WorkflowWorkload::Bursty,
            WorkflowWorkload::Chains,
            WorkflowWorkload::Wide,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkflowWorkload::Steady => "steady",
            WorkflowWorkload::Bursty => "bursty",
            WorkflowWorkload::Chains => "chains",
            WorkflowWorkload::Wide => "wide",
        }
    }

    /// Generates the workload's workflows over `horizon` seconds.
    pub fn generate(&self, horizon: f64, seed: u64) -> Vec<Workflow> {
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals = match self {
            WorkflowWorkload::Bursty => Bursty::new(0.05, 0.004, horizon / 20.0, horizon / 8.0)
                .generate(&mut rng, 0.0, horizon),
            _ => Poisson::new(0.01).generate(&mut rng, 0.0, horizon),
        };
        arrivals
            .into_iter()
            .map(|t| {
                let shape = match self {
                    WorkflowWorkload::Chains => Shape::Chain(8),
                    WorkflowWorkload::Wide => Shape::Layered {
                        layers: 3,
                        width: 8,
                    },
                    _ => Shape::ForkJoin(6),
                };
                generate(&mut rng, shape, 40.0, 0.5, t)
            })
            .collect()
    }
}

/// One cell of the campaign: an autoscaler on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Autoscaler name.
    pub scaler: &'static str,
    /// Workload name.
    pub workload: &'static str,
    /// The twelve metrics.
    pub report: ElasticityReport,
    /// Hard-SLA violations (slack 2.0).
    pub sla_violations: usize,
    /// Workflows completed.
    pub completed: usize,
}

fn run_scaler(
    scaler_idx: usize,
    workflows: Vec<Workflow>,
    config: AutoscaleConfig,
    seed: u64,
) -> (&'static str, RunResult) {
    // The roster is rebuilt per run so stateful scalers start fresh.
    match scaler_idx {
        0 => ("react", run(workflows, React, config, seed)),
        1 => ("adapt", run(workflows, Adapt::default(), config, seed)),
        2 => ("hist", run(workflows, Hist::default(), config, seed)),
        3 => ("reg", run(workflows, Reg::default(), config, seed)),
        4 => ("peak", run(workflows, RecentPeak::default(), config, seed)),
        5 => ("plan", run(workflows, Plan::default(), config, seed)),
        6 => ("token", run(workflows, Token::default(), config, seed)),
        _ => unreachable!("roster has seven scalers"),
    }
}

/// Number of autoscalers in the campaign roster.
pub const ROSTER_SIZE: usize = 7;

/// Roster names, indexed like [`run_scaler`].
pub const ROSTER_NAMES: [&str; ROSTER_SIZE] =
    ["react", "adapt", "hist", "reg", "peak", "plan", "token"];

/// One campaign cell's config: the workload/autoscaler pairing, plus an
/// optional live-evolution swap plan executed against the scaler.
#[derive(Debug, Clone)]
pub struct AutoscaleSpec {
    /// Workload shape.
    pub workload: WorkflowWorkload,
    /// Index into the scaler roster.
    pub scaler_idx: usize,
    /// Live swaps to execute mid-run (empty = never swap).
    pub swap: SwapPlan,
}

/// The §6.7 campaign scenario: one autoscaler on one workload. Runs in
/// common-random-numbers mode so every scaler of a replication faces
/// the identical workflow set — the rankings compare *when* workflows
/// finish, never *whether*.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleScenario {
    /// Simulated horizon in seconds.
    pub horizon: f64,
}

impl Scenario for AutoscaleScenario {
    type Config = AutoscaleSpec;
    type Outcome = CampaignCell;

    fn run(&self, config: &AutoscaleSpec, seed: u64, _tracer: &dyn Tracer) -> CampaignCell {
        let billing = BillingModel::PerSecond { rate: 0.5 };
        let sla = DeadlineSla::Hard { slack: 2.0 };
        let workflows = config.workload.generate(self.horizon, seed);
        let (name, result) = if config.swap.is_empty() {
            run_scaler(
                config.scaler_idx,
                workflows,
                AutoscaleConfig::default(),
                seed,
            )
        } else {
            let name = ROSTER_NAMES[config.scaler_idx];
            let (result, _log) = run_with_swaps(
                workflows,
                name,
                config.swap.clone(),
                AutoscaleConfig::default(),
                seed,
                None,
            )
            .expect("swap plan validated before the campaign");
            (name, result)
        };
        let to = result.end_time.max(1.0);
        let cost = billing.cost(&result.supply, 0.0, to);
        let report = ElasticityReport::compute(
            &result.demand,
            &result.supply,
            0.0,
            to,
            result.mean_response(),
            cost,
        );
        CampaignCell {
            scaler: name,
            workload: config.workload.name(),
            report,
            sla_violations: sla.violations(&result.workflows),
            completed: result.workflows.len(),
        }
    }
}

/// Runs the §6.7 campaign through the engine: workload × autoscaler
/// grid, common random numbers within each replication.
pub fn campaign_result(
    horizon: f64,
    seed: u64,
    replications: usize,
) -> CampaignResult<AutoscaleSpec, CampaignCell> {
    Campaign::new("autoscaling.campaign", AutoscaleScenario { horizon })
        .factor("workload", WorkflowWorkload::all().map(|w| w.name()))
        .factor("scaler", ROSTER_NAMES)
        .replications(replications)
        .root_seed(seed)
        .seed_mode(SeedMode::CommonRandomNumbers)
        .run(|cell| {
            let workload = WorkflowWorkload::all()
                .into_iter()
                .find(|w| w.name() == cell.level("workload"))
                .expect("grid levels come from WorkflowWorkload::all");
            let scaler_idx = ROSTER_NAMES
                .iter()
                .position(|n| *n == cell.level("scaler"))
                .expect("grid levels come from ROSTER_NAMES");
            AutoscaleSpec {
                workload,
                scaler_idx,
                swap: SwapPlan::none(),
            }
        })
}

/// The live-evolution A/B campaign: for every workload, the `initial`
/// autoscaler running unchanged (`swap = none`) faces itself with
/// `swap_spec` executing live — in common-random-numbers mode, so both
/// arms of a replication see the identical workflow set and any outcome
/// delta is caused by the swap alone.
///
/// `swap_spec` uses the [`SwapPlan::parse`] grammar, e.g.
/// `"token@peak12"` (switch to Token when demand first exceeds 12) or
/// `"hist@600+token@1800"`.
pub fn ab_campaign_result(
    horizon: f64,
    seed: u64,
    replications: usize,
    initial: &str,
    swap_spec: &str,
) -> Result<CampaignResult<AutoscaleSpec, CampaignCell>, String> {
    let scaler_idx = ROSTER_NAMES
        .iter()
        .position(|n| *n == initial)
        .ok_or_else(|| format!("unknown autoscaler '{initial}'"))?;
    let plan = SwapPlan::parse(swap_spec)?;
    if plan.is_empty() {
        return Err("the A/B campaign needs at least one swap in the plan".to_string());
    }
    // Validates every successor name before any cell runs.
    EvolvingScaler::by_name(initial, plan.clone())?;
    Ok(
        Campaign::new("autoscaling.evolution", AutoscaleScenario { horizon })
            .factor("workload", WorkflowWorkload::all().map(|w| w.name()))
            .factor("swap", ["none".to_string(), plan.canonical()])
            .replications(replications)
            .root_seed(seed)
            .seed_mode(SeedMode::CommonRandomNumbers)
            .run(move |cell| {
                let workload = WorkflowWorkload::all()
                    .into_iter()
                    .find(|w| w.name() == cell.level("workload"))
                    .expect("grid levels come from WorkflowWorkload::all");
                let swap = if cell.level("swap") == "none" {
                    SwapPlan::none()
                } else {
                    plan.clone()
                };
                AutoscaleSpec {
                    workload,
                    scaler_idx,
                    swap,
                }
            }),
    )
}

/// Runs the full campaign at the given horizon. Returns one cell per
/// (autoscaler, workload), the single-replication view of
/// [`campaign_result`].
pub fn campaign(horizon: f64, seed: u64) -> Vec<CampaignCell> {
    campaign_result(horizon, seed, 1)
        .first_outcomes()
        .into_iter()
        .cloned()
        .collect()
}

/// Builds the §6.7 score table over campaign cells: metrics averaged per
/// autoscaler across workloads.
pub fn score_table(cells: &[CampaignCell]) -> ScoreTable {
    let mut table = ScoreTable::new();
    let names = ElasticityReport::metric_names();
    for (i, name) in names.iter().enumerate() {
        let dir = if ElasticityReport::lower_is_better(i) {
            Direction::LowerIsBetter
        } else {
            Direction::HigherIsBetter
        };
        table.add_metric(name, dir);
    }
    // Average each metric per scaler across workloads.
    let mut sums: BTreeMap<&str, (Vec<f64>, usize)> = BTreeMap::new();
    for c in cells {
        let e = sums
            .entry(c.scaler)
            .or_insert_with(|| (vec![0.0; names.len()], 0));
        for (i, v) in c.report.values().iter().enumerate() {
            e.0[i] += v;
        }
        e.1 += 1;
    }
    for (scaler, (vals, n)) in sums {
        for (i, name) in names.iter().enumerate() {
            table.record(scaler, name, vals[i] / n as f64);
        }
    }
    table
}

/// The grading weights of \[127\]: responsiveness metrics dominate, cost
/// and stability temper.
pub fn grading_weights() -> BTreeMap<String, f64> {
    let mut w = BTreeMap::new();
    w.insert("under_accuracy".to_string(), 3.0);
    w.insert("under_timeshare".to_string(), 3.0);
    w.insert("mean_response".to_string(), 2.0);
    w.insert("cost".to_string(), 2.0);
    w.insert("instability".to_string(), 1.0);
    w
}

/// The full §6.7 aggregation: `(head-to-head, borda, grades)` rankings.
#[allow(clippy::type_complexity)] // three parallel rankings, one call site
pub fn aggregate(
    cells: &[CampaignCell],
) -> (Vec<(String, usize)>, Vec<(String, f64)>, Vec<(String, f64)>) {
    let table = score_table(cells);
    (
        table.head_to_head(),
        table.borda_ranking(),
        table.weighted_grades(&grading_weights()),
    )
}

/// One autoscaler-on-workload pairing as a servable exploration query,
/// with the elasticity metrics the §6.7 campaign grades on.
#[derive(Debug, Clone, Copy, Default)]
pub struct AutoscaleCell;

impl CellScenario for AutoscaleCell {
    fn domain(&self) -> &str {
        "autoscaling"
    }

    fn describe(&self) -> &str {
        "one autoscaler on one workflow workload, scored by elasticity metrics"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let workloads: Vec<&str> = WorkflowWorkload::all().iter().map(|w| w.name()).collect();
        vec![
            ParamSpec::choice("workload", "workflow arrival/shape family", &workloads),
            ParamSpec::choice("scaler", "autoscaling policy", &ROSTER_NAMES),
            ParamSpec::optional("horizon", "simulated horizon in seconds", "4000"),
            ParamSpec::optional(
                "swap",
                "live-evolution plan: none, or +-separated NAME@TIME / NAME@peakDEMAND swaps",
                "none",
            ),
        ]
    }

    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        let workload = WorkflowWorkload::all()
            .into_iter()
            .find(|w| w.name() == params["workload"])
            .expect("choice validation");
        let scaler_idx = ROSTER_NAMES
            .iter()
            .position(|n| *n == params["scaler"])
            .expect("choice validation");
        let horizon: f64 = parse_param(params, "horizon")?;
        if !horizon.is_finite() || !(100.0..=1_000_000.0).contains(&horizon) {
            return Err(format!(
                "parameter 'horizon': {horizon} outside 100..=1000000"
            ));
        }
        let swap =
            SwapPlan::parse(&params["swap"]).map_err(|e| format!("parameter 'swap': {e}"))?;
        if !swap.is_empty() {
            // Successor names must resolve before anything runs.
            EvolvingScaler::by_name(&params["scaler"], swap.clone())
                .map_err(|e| format!("parameter 'swap': {e}"))?;
        }
        let swap_note = if swap.is_empty() {
            "none".to_string()
        } else {
            swap.canonical()
        };
        let spec = AutoscaleSpec {
            workload,
            scaler_idx,
            swap,
        };
        let runs = run_replicated(
            &AutoscaleScenario { horizon },
            &spec,
            seed,
            replications,
            cancel,
            tracer,
        )?;
        let summarize = |f: &dyn Fn(&CampaignCell) -> f64| Summary::from_iter(runs.iter().map(f));
        Ok(CellOutput {
            metrics: vec![
                (
                    "under_accuracy".to_string(),
                    summarize(&|c| c.report.under_accuracy),
                ),
                (
                    "over_accuracy".to_string(),
                    summarize(&|c| c.report.over_accuracy),
                ),
                (
                    "avg_utilization".to_string(),
                    summarize(&|c| c.report.avg_utilization),
                ),
                (
                    "instability".to_string(),
                    summarize(&|c| c.report.instability),
                ),
                (
                    "mean_response".to_string(),
                    summarize(&|c| c.report.mean_response),
                ),
                ("cost".to_string(), summarize(&|c| c.report.cost)),
                (
                    "sla_violations".to_string(),
                    summarize(&|c| c.sla_violations as f64),
                ),
                ("completed".to_string(), summarize(&|c| c.completed as f64)),
            ],
            notes: vec![
                ("scaler".to_string(), runs[0].scaler.to_string()),
                ("workload".to_string(), runs[0].workload.to_string()),
                ("swap".to_string(), swap_note),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cells() -> Vec<CampaignCell> {
        campaign(4_000.0, 13)
    }

    #[test]
    fn campaign_covers_roster_times_workloads() {
        let cs = cells();
        assert_eq!(cs.len(), ROSTER_SIZE * WorkflowWorkload::all().len());
        for c in &cs {
            assert!(
                c.completed > 0,
                "{}/{} completed nothing",
                c.scaler,
                c.workload
            );
        }
    }

    #[test]
    fn same_workload_same_completion_count() {
        // All autoscalers must finish the same workflow set — they differ
        // in when, not whether.
        let cs = cells();
        for wl in WorkflowWorkload::all() {
            let counts: std::collections::BTreeSet<usize> = cs
                .iter()
                .filter(|c| c.workload == wl.name())
                .map(|c| c.completed)
                .collect();
            assert_eq!(counts.len(), 1, "{}: {counts:?}", wl.name());
        }
    }

    #[test]
    fn over_provisioner_costs_more_than_tracker() {
        let cs = cells();
        let avg = |name: &str, f: fn(&ElasticityReport) -> f64| {
            let v: Vec<f64> = cs
                .iter()
                .filter(|c| c.scaler == name)
                .map(|c| f(&c.report))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let peak_cost = avg("peak", |r| r.cost);
        let react_cost = avg("react", |r| r.cost);
        assert!(
            peak_cost > react_cost,
            "peak {peak_cost} should out-spend react {react_cost}"
        );
    }

    #[test]
    fn rankings_are_complete_and_consistent() {
        let cs = cells();
        let (h2h, borda, grades) = aggregate(&cs);
        assert_eq!(h2h.len(), ROSTER_SIZE);
        assert_eq!(borda.len(), ROSTER_SIZE);
        assert_eq!(grades.len(), ROSTER_SIZE);
        // Descending order.
        assert!(h2h.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(borda.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(grades.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn no_autoscaler_dominates_every_metric() {
        // The paper's persistent finding across scheduling and autoscaling:
        // nobody wins everything.
        let cs = cells();
        let table = score_table(&cs);
        let competitors = table.competitors().len();
        let wins = table.head_to_head();
        let max_possible = (competitors - 1) * ElasticityReport::metric_names().len();
        assert!(
            wins[0].1 < max_possible,
            "{} swept all {} pairwise contests",
            wins[0].0,
            max_possible
        );
    }

    #[test]
    fn crn_mode_gives_every_cell_the_same_seed() {
        let r = campaign_result(4_000.0, 13, 1);
        let seeds: std::collections::BTreeSet<u64> = r
            .cells
            .iter()
            .flat_map(|c| c.runs.iter().map(|run| run.seed))
            .collect();
        assert_eq!(seeds.len(), 1, "CRN: one shared seed per replication");
    }

    #[test]
    fn sla_violations_counted() {
        let cs = cells();
        // At least some cell has violations (bursty + reactive scaling and
        // boot delay make misses likely), and none exceeds completions.
        assert!(cs.iter().any(|c| c.sla_violations > 0));
        for c in &cs {
            assert!(c.sla_violations <= c.completed);
        }
    }

    #[test]
    fn serve_cell_validates_and_runs_deterministically() {
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(AutoscaleCell));
        let raw = BTreeMap::from([
            ("workload".to_string(), "bursty".to_string()),
            ("scaler".to_string(), "token".to_string()),
        ]);
        let params = reg.validate("autoscaling", &raw).expect("valid query");
        assert_eq!(params["horizon"], "4000", "horizon defaults");

        let tracer = atlarge_telemetry::NullTracer;
        let run = || {
            AutoscaleCell
                .run_cell(&params, 41, 2, &CancelToken::new(), &tracer)
                .expect("runs clean")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.notes, b.notes);
        for ((ka, sa), (kb, sb)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(sa.mean(), sb.mean(), "metric {ka} must be deterministic");
        }
        assert!(a
            .notes
            .contains(&("scaler".to_string(), "token".to_string())));
    }

    #[test]
    fn ab_campaign_identity_swap_arm_equals_none_arm() {
        // The keystone at campaign level: swapping Adapt for itself
        // mid-run leaves every cell's metrics equal to never swapping.
        let r = ab_campaign_result(4_000.0, 13, 1, "adapt", "adapt@600").unwrap();
        for wl in WorkflowWorkload::all() {
            let arm = |swap: &str| -> &CampaignCell {
                r.cells
                    .iter()
                    .find(|c| c.spec.level("workload") == wl.name() && c.spec.level("swap") == swap)
                    .expect("grid covers both arms")
                    .first()
            };
            assert_eq!(
                arm("none"),
                arm("adapt@600"),
                "{}: identity swap changed the campaign cell",
                wl.name()
            );
        }
    }

    #[test]
    fn ab_campaign_cross_swap_moves_outcomes_on_a_shared_stream() {
        let r = ab_campaign_result(4_000.0, 13, 1, "react", "token@600").unwrap();
        let mut moved = 0;
        for wl in WorkflowWorkload::all() {
            let arm = |swap: &str| -> &CampaignCell {
                r.cells
                    .iter()
                    .find(|c| c.spec.level("workload") == wl.name() && c.spec.level("swap") == swap)
                    .expect("grid covers both arms")
                    .first()
            };
            let (a, b) = (arm("none"), arm("token@600"));
            // CRN: both arms complete the same workflow set...
            assert_eq!(a.completed, b.completed, "{}", wl.name());
            // ...but a different scaler after the swap moves the metrics.
            if a.report != b.report {
                moved += 1;
            }
        }
        assert!(moved > 0, "the A/B swap never changed any workload");
    }

    #[test]
    fn ab_campaign_rejects_bad_plans() {
        assert!(ab_campaign_result(4_000.0, 1, 1, "nope", "token@5").is_err());
        assert!(ab_campaign_result(4_000.0, 1, 1, "react", "nope@5").is_err());
        assert!(ab_campaign_result(4_000.0, 1, 1, "react", "none").is_err());
    }

    #[test]
    fn serve_cell_accepts_and_canonicalizes_swap_plans() {
        let tracer = atlarge_telemetry::NullTracer;
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(AutoscaleCell));
        let raw = BTreeMap::from([
            ("workload".to_string(), "bursty".to_string()),
            ("scaler".to_string(), "react".to_string()),
            ("horizon".to_string(), "2000".to_string()),
            ("swap".to_string(), "token@600.0".to_string()),
        ]);
        let params = reg.validate("autoscaling", &raw).expect("valid query");
        let out = AutoscaleCell
            .run_cell(&params, 41, 1, &CancelToken::new(), &tracer)
            .expect("runs clean");
        assert!(
            out.notes
                .contains(&("swap".to_string(), "token@600".to_string())),
            "notes must carry the canonical plan: {:?}",
            out.notes
        );

        // Default is "none" and identity-swaps equal never-swapping.
        let base = reg
            .validate(
                "autoscaling",
                &BTreeMap::from([
                    ("workload".to_string(), "bursty".to_string()),
                    ("scaler".to_string(), "react".to_string()),
                    ("horizon".to_string(), "2000".to_string()),
                ]),
            )
            .expect("valid query");
        assert_eq!(base["swap"], "none");
        let plain = AutoscaleCell
            .run_cell(&base, 41, 1, &CancelToken::new(), &tracer)
            .unwrap();
        let mut idem = base.clone();
        idem.insert("swap".to_string(), "react@600".to_string());
        let idswap = AutoscaleCell
            .run_cell(&idem, 41, 1, &CancelToken::new(), &tracer)
            .unwrap();
        for ((ka, sa), (kb, sb)) in plain.metrics.iter().zip(&idswap.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(sa.mean(), sb.mean(), "identity swap moved metric {ka}");
        }
    }

    #[test]
    fn serve_cell_rejects_malformed_swap_plans() {
        let tracer = atlarge_telemetry::NullTracer;
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(AutoscaleCell));
        let mut params = reg
            .validate("autoscaling", &BTreeMap::new())
            .expect("defaults");
        for bad in ["token", "token@", "@5", "nope@5", "token@peak"] {
            params.insert("swap".to_string(), bad.to_string());
            let err = AutoscaleCell
                .run_cell(&params, 1, 1, &CancelToken::new(), &tracer)
                .unwrap_err();
            assert!(err.contains("swap"), "{bad}: {err}");
        }
    }

    #[test]
    fn serve_cell_bounds_the_horizon() {
        let tracer = atlarge_telemetry::NullTracer;
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(AutoscaleCell));
        let mut params = reg
            .validate("autoscaling", &BTreeMap::new())
            .expect("defaults");
        params.insert("horizon".to_string(), "5".to_string());
        let err = AutoscaleCell
            .run_cell(&params, 1, 1, &CancelToken::new(), &tracer)
            .unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }
}
