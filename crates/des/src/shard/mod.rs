//! The parallel-in-time sharded kernel: one simulation, many calendar
//! queues, conservative synchronization.
//!
//! [`Simulation`](crate::sim::Simulation) dispatches every event of a
//! run through one future-event list. This module generalizes it:
//! entities are partitioned into *logical processes* grouped onto
//! shards, each shard owns a sealed FEL of its own, and shards advance
//! in windowed rounds bounded by conservative horizons derived from the
//! [`Partition`]'s declared per-edge lookahead (the minimum cross-shard
//! latency of the domain model: a link delay, a router overhead, a tick
//! period). Cross-shard events travel through bounded channels and are
//! merged between rounds; see [`sync`] for the protocol.
//!
//! # Determinism
//!
//! The sharded kernel keeps the workspace's serial ≡ parallel contract
//! at the single-run level: for a fixed model, partition, and seed, the
//! dispatched `(time, seq, parent, event)` sequence — merged across
//! shards in `(time, seq)` order — is byte-for-byte identical at every
//! shard count and every thread count. Three rules make this hold *by
//! construction* rather than by luck:
//!
//! - **Entity-owned state.** A [`LogicalProcess`] owns its state
//!   exclusively and reacts only to its own events, so behavior cannot
//!   depend on which shard an entity landed on.
//! - **Lane-based event ids.** `seq` is `(lane << 32) | counter` where
//!   lane is `entity + 1` (lane 0 is reserved for externally scheduled
//!   roots) and the counter is per-lane. Ids depend only on how many
//!   events an entity has scheduled — not on global dispatch
//!   interleaving — so they are shard-count-invariant, unlike the dense
//!   global counter of the single-queue path.
//! - **Per-entity RNG streams.** [`ShardCtx::rng`] draws from a stream
//!   seeded by `(root seed, entity)`, so randomness is attached to the
//!   entity, never to the shard or thread that happens to run it.
//!
//! Tracer hooks are buffered per shard and replayed in merged order
//! after the run ([`trace`]), so traces are also shard-count-invariant.
//!
//! # Why conservative, not optimistic
//!
//! Optimistic engines (Time Warp) need rollback: snapshots of model
//! state and anti-messages to undo mis-speculated dispatches. Rollback
//! is at odds with every contract this kernel exports — state capsules
//! assume monotone time, tracer output is append-only, and byte-stable
//! determinism under speculation requires bit-exact rollback of every
//! side effect. Conservative lookahead synchronization needs none of
//! that: nothing executes until it provably cannot be preempted, so
//! the merged dispatch order *is* the single-queue order.
//!
//! # Bounded runs and `stop()`
//!
//! There is deliberately no `stop()` on [`ShardCtx`]: a stop observed
//! on one shard mid-round is a determinism race against events other
//! shards have already dispatched inside their own windows. Sharded
//! runs are horizon-bounded ([`ShardedSimulation::run_until`]) or run
//! to exhaustion ([`ShardedSimulation::run`]).

mod sync;
mod trace;

use crate::calendar::CalendarQueue;
use crate::fel::{Entry, FutureEventList};
use atlarge_telemetry::tracer::{EventLabel, Tracer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};

use sync::SyncPlane;
use trace::{TraceBuf, TraceOp};

/// Bit position of the lane in an event id: the low 32 bits count
/// events per lane, the bits above identify the lane.
const LANE_SHIFT: u32 = 32;

/// Maximum number of entities a sharded simulation accepts. Lanes must
/// stay below 2^20 so every id fits in 52 bits — ids survive any
/// JSON consumer that routes integers through an f64.
pub const MAX_ENTITIES: usize = (1 << 20) - 1;

fn unlabeled<E>(_: &E) -> &'static str {
    "event"
}

/// SplitMix64-style finalizer deriving entity `e`'s RNG stream from the
/// root seed: statistically independent streams per entity, stable
/// across shard counts and partitions.
fn entity_stream_seed(seed: u64, entity: u32) -> u64 {
    let mut z = seed ^ (u64::from(entity).wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An event addressed to an entity — what shard FELs store. The
/// target's shard-local slot is resolved once, at scheduling time (the
/// sender already has the entity index in cache to route the event), so
/// the dispatch loop never touches the index again: at large entity
/// counts that lookup is a guaranteed cache miss per event.
#[derive(Debug, Clone)]
pub struct Routed<E> {
    entity: u32,
    slot: u32,
    event: E,
}

/// One dispatched event as seen by the optional event log
/// ([`ShardedSimulation::with_event_log`]): the global merge order of
/// these records is the kernel's determinism contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventRecord {
    /// Simulated dispatch time.
    pub time: f64,
    /// The event's lane-based id.
    pub id: u64,
    /// Id of the event whose handler scheduled this one.
    pub parent: Option<u64>,
    /// The entity that handled the event.
    pub entity: u32,
}

/// How entities map onto shards, and how much cross-shard latency the
/// model guarantees per directed shard pair.
///
/// `lookahead(from, to)` must return either a strictly positive finite
/// minimum delay (every event shard `from` sends to shard `to` fires at
/// least that far in the future) or `INFINITY` to declare "no edge".
/// Zero, negative, and NaN lookaheads are rejected up front by
/// [`ShardedSimulation::new`] — a zero-lookahead edge would allow
/// cycles of simultaneous cross-shard events, which no conservative
/// schedule can order without global knowledge.
pub trait Partition {
    /// Number of shards (logical-process groups).
    fn shards(&self) -> usize;
    /// The shard owning `entity`.
    fn shard_of(&self, entity: u32) -> usize;
    /// Minimum cross-shard event latency from shard `from` to shard
    /// `to` (`from != to`), or `INFINITY` for "no edge".
    fn lookahead(&self, from: usize, to: usize) -> f64;
}

/// A table-driven [`Partition`]: an explicit entity→shard assignment
/// plus a dense lookahead matrix. The common constructors cover block
/// and round-robin placement with a uniform all-to-all lookahead;
/// [`StaticPartition::set_lookahead`] refines individual edges.
#[derive(Debug, Clone)]
pub struct StaticPartition {
    shards: usize,
    assign: Vec<usize>,
    lookahead: Vec<f64>,
}

impl StaticPartition {
    fn with_uniform(shards: usize, assign: Vec<usize>, la: f64) -> Self {
        let shards = shards.max(1);
        let lookahead = (0..shards * shards)
            .map(|i| {
                if i / shards == i % shards {
                    f64::INFINITY
                } else {
                    la
                }
            })
            .collect();
        StaticPartition {
            shards,
            assign,
            lookahead,
        }
    }

    /// Contiguous blocks of entities per shard, uniform lookahead `la`
    /// on every directed edge.
    pub fn block(entities: usize, shards: usize, la: f64) -> Self {
        let shards = shards.max(1);
        let per = entities.div_ceil(shards.max(1)).max(1);
        let assign = (0..entities).map(|e| (e / per).min(shards - 1)).collect();
        Self::with_uniform(shards, assign, la)
    }

    /// Entities dealt round-robin across shards, uniform lookahead.
    pub fn round_robin(entities: usize, shards: usize, la: f64) -> Self {
        let shards = shards.max(1);
        let assign = (0..entities).map(|e| e % shards).collect();
        Self::with_uniform(shards, assign, la)
    }

    /// An explicit entity→shard map with uniform lookahead.
    pub fn from_assignment(assign: Vec<usize>, shards: usize, la: f64) -> Self {
        Self::with_uniform(shards, assign, la)
    }

    /// Overrides the lookahead of one directed edge.
    pub fn set_lookahead(&mut self, from: usize, to: usize, la: f64) {
        if from != to {
            if let Some(slot) = self.lookahead.get_mut(from * self.shards + to) {
                *slot = la;
            }
        }
    }
}

impl Partition for StaticPartition {
    fn shards(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, entity: u32) -> usize {
        self.assign.get(entity as usize).copied().unwrap_or(0)
    }

    fn lookahead(&self, from: usize, to: usize) -> f64 {
        self.lookahead
            .get(from * self.shards + to)
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

/// Why a [`ShardedSimulation`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionError {
    /// The partition declared zero shards.
    NoShards,
    /// More entities than [`MAX_ENTITIES`].
    TooManyEntities {
        /// The offending entity count.
        entities: usize,
    },
    /// `shard_of` returned a shard outside `0..shards()`.
    ShardOutOfRange {
        /// The entity with the bad assignment.
        entity: u32,
        /// The out-of-range shard index.
        shard: usize,
    },
    /// A declared lookahead was zero, negative, or NaN.
    BadLookahead {
        /// Source shard of the edge.
        from: usize,
        /// Destination shard of the edge.
        to: usize,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoShards => write!(f, "partition declares zero shards"),
            PartitionError::TooManyEntities { entities } => write!(
                f,
                "{entities} entities exceed the sharded kernel's limit of {MAX_ENTITIES}"
            ),
            PartitionError::ShardOutOfRange { entity, shard } => {
                write!(f, "entity {entity} assigned to out-of-range shard {shard}")
            }
            PartitionError::BadLookahead { from, to, value } => write!(
                f,
                "lookahead {value} on edge {from}->{to} must be strictly positive \
                 (use INFINITY for no edge)"
            ),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A logical process: one entity's state and behavior. The sharded
/// kernel's unit of partitioning.
///
/// Unlike [`Model`](crate::sim::Model) — which owns the whole world —
/// a logical process owns exactly one entity, so a run's outcome
/// cannot depend on entity co-location. Events for other entities go
/// through [`ShardCtx::send_at`]/[`ShardCtx::send_in`], which enforce
/// the partition's lookahead on cross-shard edges. A model that wants
/// to stay valid under *every* partition should respect the declared
/// lookahead on all entity-to-entity sends.
pub trait LogicalProcess {
    /// The event alphabet of this process.
    type Event;

    /// Reacts to `event` occurring now; schedules follow-ups via `ctx`.
    fn handle(&mut self, event: Self::Event, ctx: &mut ShardCtx<'_, Self::Event>);
}

/// Where an entity lives: its shard and its dense slot within it.
#[derive(Debug, Clone, Copy)]
struct EntitySlot {
    shard: u32,
    slot: u32,
}

/// Read-only per-round environment shared by every shard.
struct RoundEnv<'a, E> {
    index: &'a [EntitySlot],
    lookahead: &'a [f64],
    nshards: usize,
    seed: u64,
    labeler: fn(&E) -> &'static str,
    log_events: bool,
}

impl<E> Clone for RoundEnv<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for RoundEnv<'_, E> {}

/// One entity's dispatch-hot state: its lane counter and its logical
/// process, colocated so a dispatch touches one cache line instead of
/// two parallel arrays.
struct EntityCell<L> {
    lane: u64,
    lp: L,
}

/// One shard: its FEL, its entities' processes and lane counters, and
/// the round-local buffers of the synchronization protocol.
struct Shard<L: LogicalProcess, F> {
    fel: F,
    cells: Vec<EntityCell<L>>,
    entities: Vec<u32>,
    rngs: Vec<Option<StdRng>>,
    spare_rng: Option<StdRng>,
    /// Outgoing cross-shard events, buffered per target shard during a
    /// round and flushed through the edge channels between rounds.
    outbox: Vec<Vec<Entry<Routed<<L as LogicalProcess>::Event>>>>,
    /// Local events scheduled during a round at or beyond the round
    /// horizon: bulk-inserted (sorted) between rounds, which turns
    /// random-access FEL maintenance into a batched, ascending pass.
    staging: Vec<Entry<Routed<<L as LogicalProcess>::Event>>>,
    /// Cross-shard arrivals picked up early by the backpressure drain.
    inbox_hold: Vec<Entry<Routed<<L as LogicalProcess>::Event>>>,
    /// Events the current handler scheduled, classified after it
    /// returns (below-horizon → FEL now, otherwise → staging).
    local_out: Vec<Entry<Routed<<L as LogicalProcess>::Event>>>,
    scratch: Vec<Entry<Routed<<L as LogicalProcess>::Event>>>,
    now: f64,
    dispatched: u64,
    trace: Option<TraceBuf>,
    log: Vec<EventRecord>,
}

impl<L: LogicalProcess, F: FutureEventList<Routed<L::Event>>> Shard<L, F> {
    fn new(nshards: usize) -> Self {
        Shard {
            fel: F::with_capacity(0),
            cells: Vec::new(),
            entities: Vec::new(),
            rngs: Vec::new(),
            spare_rng: None,
            outbox: (0..nshards).map(|_| Vec::new()).collect(),
            staging: Vec::new(),
            inbox_hold: Vec::new(),
            local_out: Vec::new(),
            scratch: Vec::new(),
            now: 0.0,
            dispatched: 0,
            trace: None,
            log: Vec::new(),
        }
    }

    /// Merges everything that arrived or was staged since the last
    /// round into the FEL, in ascending `(time, seq)` order — the
    /// batched maintenance pass that makes per-shard queues cheap.
    fn absorb_staged(&mut self) {
        if self.inbox_hold.is_empty() && self.staging.is_empty() {
            return;
        }
        let mut batch = std::mem::take(&mut self.scratch);
        batch.append(&mut self.inbox_hold);
        batch.append(&mut self.staging);
        batch.sort_unstable();
        for entry in batch.drain(..) {
            self.fel.insert(entry);
        }
        self.scratch = batch;
    }

    fn lower_bound(&self) -> f64 {
        self.fel.peek_min_time().unwrap_or(f64::INFINITY)
    }
}

/// The execution context handed to [`LogicalProcess::handle`]: clock,
/// scheduler, per-entity RNG, and causal identity of the current event.
pub struct ShardCtx<'a, E> {
    now: f64,
    entity: u32,
    slot: usize,
    cur_id: u64,
    cur_parent: Option<u64>,
    shard: usize,
    nshards: usize,
    seed: u64,
    local_out: &'a mut Vec<Entry<Routed<E>>>,
    outbox: &'a mut [Vec<Entry<Routed<E>>>],
    /// The current entity's lane counter (all events a handler
    /// schedules carry the handling entity's lane).
    lane: &'a mut u64,
    rngs: &'a mut [Option<StdRng>],
    spare_rng: &'a mut Option<StdRng>,
    index: &'a [EntitySlot],
    la_row: &'a [f64],
    trace: Option<&'a mut TraceBuf>,
    labeler: fn(&E) -> &'static str,
}

impl<E> ShardCtx<'_, E> {
    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The entity this handler runs as.
    pub fn entity(&self) -> u32 {
        self.entity
    }

    /// Id of the event being handled.
    pub fn event_id(&self) -> u64 {
        self.cur_id
    }

    /// Id of the event whose handler scheduled the current one.
    pub fn parent(&self) -> Option<u64> {
        self.cur_parent
    }

    /// The shard this entity lives on (informational — model behavior
    /// must never depend on it).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total shard count of the partition.
    pub fn shards(&self) -> usize {
        self.nshards
    }

    fn next_seq(&mut self) -> u64 {
        let lane = u64::from(self.entity) + 1;
        // Hard assert even in release: a wrapped counter would bleed
        // into the lane bits and silently break the (time, seq)
        // uniqueness the determinism contract rests on.
        assert!(
            *self.lane < 1 << LANE_SHIFT,
            "entity {} exhausted its event-id lane (2^32 scheduled events)",
            self.entity
        );
        let seq = (lane << LANE_SHIFT) | *self.lane;
        *self.lane += 1;
        seq
    }

    fn push(
        &mut self,
        target: u32,
        target_shard: usize,
        target_slot: u32,
        time: f64,
        event: E,
    ) -> u64 {
        let seq = self.next_seq();
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.op(TraceOp::Schedule {
                fire_at: time,
                label: (self.labeler)(&event),
                id: seq,
                parent: Some(self.cur_id),
            });
        }
        let entry = Entry {
            time,
            seq,
            parent: Some(self.cur_id),
            event: Routed {
                entity: target,
                slot: target_slot,
                event,
            },
        };
        if target_shard == self.shard {
            self.local_out.push(entry);
        } else if let Some(bucket) = self.outbox.get_mut(target_shard) {
            bucket.push(entry);
        } else {
            debug_assert!(false, "outbox missing for shard {target_shard}");
        }
        seq
    }

    /// Schedules an event for this entity `delay` from now. Returns the
    /// new event's id.
    pub fn schedule_in(&mut self, delay: f64, event: E) -> u64 {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules an event for this entity at absolute `time`.
    pub fn schedule_at(&mut self, time: f64, event: E) -> u64 {
        assert!(
            time.is_finite() && time >= self.now,
            "event time must be finite and not in the past"
        );
        self.push(self.entity, self.shard, self.slot as u32, time, event)
    }

    /// Sends an event to `target` firing `delay` from now. Cross-shard
    /// sends must respect the partition's declared lookahead.
    pub fn send_in(&mut self, delay: f64, target: u32, event: E) -> u64 {
        self.send_at(self.now + delay, target, event)
    }

    /// Sends an event to `target` at absolute `time`. For a target on
    /// another shard, `time` must be at least `now + lookahead(edge)` —
    /// the contract the conservative horizons are derived from.
    pub fn send_at(&mut self, time: f64, target: u32, event: E) -> u64 {
        assert!(
            time.is_finite() && time >= self.now,
            "event time must be finite and not in the past"
        );
        let Some(&EntitySlot { shard, slot }) = self.index.get(target as usize) else {
            debug_assert!(false, "send to unknown entity {target}");
            return 0;
        };
        let target_shard = shard as usize;
        if target_shard != self.shard {
            let la = self
                .la_row
                .get(target_shard)
                .copied()
                .unwrap_or(f64::INFINITY);
            assert!(
                la.is_finite(),
                "no lookahead edge declared from shard {} to shard {target_shard}",
                self.shard
            );
            assert!(
                time >= self.now + la,
                "cross-shard send at t={time} violates lookahead {la} from shard {} to {} \
                 (now={})",
                self.shard,
                target_shard,
                self.now
            );
        }
        self.push(target, target_shard, slot, time, event)
    }

    /// This entity's deterministic RNG stream, seeded from
    /// `(root seed, entity)` — identical under every partition.
    pub fn rng(&mut self) -> &mut StdRng {
        let entity = self.entity;
        let seed = self.seed;
        let holder = match self.rngs.get_mut(self.slot) {
            Some(h) => h,
            None => {
                debug_assert!(false, "rng slot missing for slot {}", self.slot);
                &mut *self.spare_rng
            }
        };
        holder.get_or_insert_with(|| StdRng::seed_from_u64(entity_stream_seed(seed, entity)))
    }

    /// Opens a tracer span (buffered; replayed in global order).
    pub fn span_enter(&mut self, name: &str) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.op(TraceOp::SpanEnter { name: name.into() });
        }
    }

    /// Closes a tracer span.
    pub fn span_exit(&mut self, name: &str) {
        if let Some(tb) = self.trace.as_deref_mut() {
            tb.op(TraceOp::SpanExit { name: name.into() });
        }
    }
}

/// A sharded, parallel-in-time generalization of
/// [`Simulation`](crate::sim::Simulation).
///
/// Construction partitions the entities; [`run_until`] advances every
/// shard in conservative windows. `F` is the sealed FEL backend of
/// *each shard* (default: the calendar queue), so the same equivalence
/// suite that seals the single-queue path seals this one.
///
/// [`run_until`]: ShardedSimulation::run_until
pub struct ShardedSimulation<P, L, F = CalendarQueue<Routed<<L as LogicalProcess>::Event>>>
where
    L: LogicalProcess,
{
    partition: P,
    shards: Vec<Shard<L, F>>,
    index: Vec<EntitySlot>,
    lookahead: Vec<f64>,
    nshards: usize,
    seed: u64,
    threads: usize,
    channel_capacity: usize,
    root_seq: u64,
    now: f64,
    processed: u64,
    tracer: Option<Box<dyn Tracer>>,
    labeler: fn(&L::Event) -> &'static str,
    trace_pending: u64,
    log_events: bool,
    event_log: Vec<EventRecord>,
}

impl<P, L, F> ShardedSimulation<P, L, F>
where
    P: Partition,
    L: LogicalProcess,
    F: FutureEventList<Routed<L::Event>>,
{
    /// Validates `partition` and distributes `lps` (entity `e` is
    /// `lps[e]`) onto shards. Rejects non-positive / NaN lookaheads and
    /// out-of-range shard assignments up front.
    pub fn new(partition: P, lps: Vec<L>, seed: u64) -> Result<Self, PartitionError> {
        let nshards = partition.shards();
        if nshards == 0 {
            return Err(PartitionError::NoShards);
        }
        if lps.len() > MAX_ENTITIES {
            return Err(PartitionError::TooManyEntities {
                entities: lps.len(),
            });
        }
        let mut lookahead = Vec::with_capacity(nshards * nshards);
        for from in 0..nshards {
            for to in 0..nshards {
                if from == to {
                    lookahead.push(f64::INFINITY);
                    continue;
                }
                let la = partition.lookahead(from, to);
                if la.is_nan() || la <= 0.0 {
                    return Err(PartitionError::BadLookahead {
                        from,
                        to,
                        value: la,
                    });
                }
                lookahead.push(la);
            }
        }
        let mut shards: Vec<Shard<L, F>> = (0..nshards).map(|_| Shard::new(nshards)).collect();
        let mut index = Vec::with_capacity(lps.len());
        for (e, lp) in lps.into_iter().enumerate() {
            let entity = e as u32;
            let s = partition.shard_of(entity);
            let Some(shard) = shards.get_mut(s) else {
                return Err(PartitionError::ShardOutOfRange { entity, shard: s });
            };
            index.push(EntitySlot {
                shard: s as u32,
                slot: shard.cells.len() as u32,
            });
            shard.entities.push(entity);
            shard.cells.push(EntityCell { lane: 0, lp });
            shard.rngs.push(None);
        }
        Ok(ShardedSimulation {
            partition,
            shards,
            index,
            lookahead,
            nshards,
            seed,
            threads: default_threads(),
            channel_capacity: 1024,
            root_seq: 0,
            now: 0.0,
            processed: 0,
            tracer: None,
            labeler: unlabeled::<L::Event>,
            trace_pending: 0,
            log_events: false,
            event_log: Vec::new(),
        })
    }

    /// Attaches a tracer (with [`EventLabel`] labels). Disabled tracers
    /// are dropped so the hot path stays branch-light. Attach before
    /// scheduling roots so the replayed pending counts are faithful.
    pub fn with_tracer<T: Tracer + 'static>(mut self, tracer: T) -> Self
    where
        L::Event: EventLabel,
    {
        if tracer.is_enabled() {
            self.labeler = <L::Event as EventLabel>::label;
            self.tracer = Some(Box::new(tracer));
        }
        self
    }

    /// Attaches a tracer without requiring [`EventLabel`]; every event
    /// is labeled `"event"`.
    pub fn with_unlabeled_tracer<T: Tracer + 'static>(mut self, tracer: T) -> Self {
        if tracer.is_enabled() {
            self.labeler = unlabeled::<L::Event>;
            self.tracer = Some(Box::new(tracer));
        }
        self
    }

    /// Records every dispatch into an in-memory log retrievable with
    /// [`take_event_log`](ShardedSimulation::take_event_log) — the
    /// equivalence suites compare these across shard counts.
    pub fn with_event_log(mut self) -> Self {
        self.log_events = true;
        self
    }

    /// Caps the worker thread count (default: `ATLARGE_DES_THREADS` or
    /// the machine's available parallelism). Results are identical at
    /// every thread count; this only tunes wall-clock behavior.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the bounded capacity of each cross-shard edge channel.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = capacity.max(1);
        self
    }

    /// Pre-reserves room for about `events` pending events across all
    /// shards.
    pub fn with_pending_capacity(mut self, events: usize) -> Self {
        let per = events / self.nshards.max(1);
        for shard in &mut self.shards {
            shard.fel.reserve(per);
        }
        self
    }

    /// Schedules a root event (no parent) for `entity` at absolute
    /// `time`. Roots occupy lane 0, so pre-run roots order before any
    /// handler-scheduled event at the same timestamp. Returns the id.
    pub fn schedule(&mut self, time: f64, entity: u32, event: L::Event) -> u64 {
        assert!(
            time.is_finite() && time >= self.now,
            "event time must be finite and not in the past"
        );
        let Some(&EntitySlot { shard, slot }) = self.index.get(entity as usize) else {
            debug_assert!(false, "schedule for unknown entity {entity}");
            return 0;
        };
        assert!(
            self.root_seq < 1 << LANE_SHIFT,
            "root event-id lane exhausted (2^32 pre-run roots)"
        );
        let seq = self.root_seq;
        self.root_seq += 1;
        if let Some(tracer) = &self.tracer {
            tracer.on_schedule(self.now, time, (self.labeler)(&event), seq, None);
            self.trace_pending += 1;
        }
        if let Some(shard) = self.shards.get_mut(shard as usize) {
            shard.fel.insert(Entry {
                time,
                seq,
                parent: None,
                event: Routed {
                    entity,
                    slot,
                    event,
                },
            });
        }
        seq
    }

    /// Current simulated time (advances to the horizon of a bounded run
    /// when events remain beyond it, mirroring `Simulation::run_until`).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total events dispatched across all runs.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.fel.len()).sum()
    }

    /// Shard count of the partition.
    pub fn shard_count(&self) -> usize {
        self.nshards
    }

    /// The partition this simulation was built with.
    pub fn partition(&self) -> &P {
        &self.partition
    }

    /// Borrows entity `e`'s logical process.
    pub fn lp(&self, entity: u32) -> Option<&L> {
        let &EntitySlot { shard, slot } = self.index.get(entity as usize)?;
        self.shards
            .get(shard as usize)?
            .cells
            .get(slot as usize)
            .map(|cell| &cell.lp)
    }

    /// Consumes the simulation, returning the logical processes in
    /// entity order.
    pub fn into_lps(mut self) -> Vec<L> {
        let mut out: Vec<Option<L>> = (0..self.index.len()).map(|_| None).collect();
        for shard in &mut self.shards {
            for (entity, cell) in shard.entities.iter().zip(shard.cells.drain(..)) {
                if let Some(slot) = out.get_mut(*entity as usize) {
                    *slot = Some(cell.lp);
                }
            }
        }
        debug_assert!(out.iter().all(Option::is_some));
        out.into_iter().flatten().collect()
    }

    /// Drains the merged event log (requires
    /// [`with_event_log`](ShardedSimulation::with_event_log)).
    pub fn take_event_log(&mut self) -> Vec<EventRecord> {
        std::mem::take(&mut self.event_log)
    }

    /// Runs until the FELs drain. Returns events processed this call.
    pub fn run(&mut self) -> u64
    where
        L: Send,
        L::Event: Send,
        F: Send,
    {
        self.run_until(f64::INFINITY)
    }

    /// Runs until `horizon` (events at exactly `horizon` still
    /// execute) or queue exhaustion. Returns the number of events
    /// processed in this call. Deterministic for any shard count,
    /// thread count, and FEL backend.
    pub fn run_until(&mut self, horizon: f64) -> u64
    where
        L: Send,
        L::Event: Send,
        F: Send,
    {
        assert!(!horizon.is_nan(), "run horizon must not be NaN");
        let start = self.processed;
        if self.tracer.is_some() {
            for shard in &mut self.shards {
                if shard.trace.is_none() {
                    shard.trace = Some(TraceBuf::default());
                }
            }
        }
        let mut lbs: Vec<f64> = self.shards.iter().map(Shard::lower_bound).collect();
        let workers = self.threads.min(self.nshards).max(1);
        if workers == 1 {
            self.run_inline(horizon, &mut lbs);
        } else {
            self.run_threaded(horizon, workers);
        }
        self.processed = self.shards.iter().map(|s| s.dispatched).sum();
        let max_now = self.shards.iter().map(|s| s.now).fold(self.now, f64::max);
        self.now = if self.pending() > 0 && horizon.is_finite() {
            horizon
        } else {
            max_now
        };
        if self.log_events {
            let mut merged: Vec<EventRecord> = Vec::new();
            for shard in &mut self.shards {
                merged.append(&mut shard.log);
            }
            merged.sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(a.id.cmp(&b.id)));
            self.event_log.extend(merged);
        }
        if let Some(tracer) = &self.tracer {
            let mut groups: Vec<trace::TraceGroup> = Vec::new();
            for shard in &mut self.shards {
                if let Some(tb) = shard.trace.as_mut() {
                    groups.append(&mut tb.take());
                }
            }
            groups.sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
            trace::replay(tracer.as_ref(), &groups, &mut self.trace_pending);
            tracer.on_run_end(self.now, self.processed);
        }
        self.processed - start
    }

    /// Single-threaded driver: same windowed rounds, no channels or
    /// barriers — outboxes are handed to their target shards directly.
    /// This is also the 1-shard path, where the horizon is infinite and
    /// execution degenerates to exactly the sealed single-queue loop.
    fn run_inline(&mut self, run_horizon: f64, lbs: &mut Vec<f64>) {
        let mut horizons = Vec::new();
        loop {
            if sync::quiescent(lbs, run_horizon) {
                break;
            }
            sync::conservative_horizons(lbs, &self.lookahead, &mut horizons);
            assert_not_stalled(
                sync::stalled(lbs, &horizons, run_horizon),
                lbs.iter().copied().fold(f64::INFINITY, f64::min),
            );
            let env = RoundEnv {
                index: &self.index,
                lookahead: &self.lookahead,
                nshards: self.nshards,
                seed: self.seed,
                labeler: self.labeler,
                log_events: self.log_events,
            };
            for (s, shard) in self.shards.iter_mut().enumerate() {
                let h = horizons.get(s).copied().unwrap_or(f64::INFINITY);
                run_round(shard, s, h, run_horizon, env);
            }
            self.deliver_inline();
            lbs.clear();
            for shard in &mut self.shards {
                shard.absorb_staged();
                lbs.push(shard.lower_bound());
            }
        }
    }

    /// Moves every shard's outbox contents into the target shards'
    /// inbox holds, keeping the buffer allocations alive.
    fn deliver_inline(&mut self) {
        for s in 0..self.nshards {
            let taken = match self.shards.get_mut(s) {
                Some(shard) => std::mem::take(&mut shard.outbox),
                None => continue,
            };
            let mut returned = Vec::with_capacity(taken.len());
            for (t, mut bucket) in taken.into_iter().enumerate() {
                if !bucket.is_empty() {
                    if let Some(dst) = self.shards.get_mut(t) {
                        dst.inbox_hold.append(&mut bucket);
                    }
                }
                returned.push(bucket);
            }
            if let Some(shard) = self.shards.get_mut(s) {
                shard.outbox = returned;
            }
        }
    }

    /// Threaded driver: workers own disjoint shard chunks and advance
    /// in barrier-separated phases (run+flush / drain+announce /
    /// horizon recompute). See [`sync`] for the protocol and its
    /// safety argument.
    fn run_threaded(&mut self, run_horizon: f64, workers: usize)
    where
        L: Send,
        L::Event: Send,
        F: Send,
    {
        let n = self.nshards;
        let per = n.div_ceil(workers);
        let nchunks = n.div_ceil(per);
        let plane = SyncPlane::new(n, nchunks);
        {
            let mut lbs: Vec<f64> = self.shards.iter().map(Shard::lower_bound).collect();
            if sync::quiescent(&lbs, run_horizon) {
                return;
            }
            for (s, lb) in lbs.iter().enumerate() {
                plane.set_lb(s, *lb);
            }
            let mut horizons = Vec::new();
            sync::conservative_horizons(&lbs, &self.lookahead, &mut horizons);
            // No worker threads exist yet, so panicking here is safe.
            assert_not_stalled(
                sync::stalled(&lbs, &horizons, run_horizon),
                lbs.iter().copied().fold(f64::INFINITY, f64::min),
            );
            plane.publish_horizons(&horizons);
            lbs.clear();
        }
        let chans = sync::edge_channels::<Entry<Routed<L::Event>>>(
            n,
            &self.lookahead,
            self.channel_capacity,
        );
        let env = RoundEnv {
            index: &self.index,
            lookahead: &self.lookahead,
            nshards: self.nshards,
            seed: self.seed,
            labeler: self.labeler,
            log_events: self.log_events,
        };
        let lookahead = &self.lookahead;
        let shards = &mut self.shards;
        // A mid-run numeric stall is detected by the coordinator, which
        // cannot panic while workers are parked at the barrier; it marks
        // the run done, lets everyone exit, and panics after the join.
        let mut frozen_at: Option<f64> = None;
        let payload: Option<Box<dyn Any + Send>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nchunks);
            let mut tx_rows = chans.senders.into_iter();
            let mut rx_rows = chans.receivers.into_iter();
            let plane_ref = &plane;
            let mut base = 0;
            for chunk in shards.chunks_mut(per) {
                let len = chunk.len();
                let tx: Vec<Vec<Option<SyncSender<_>>>> = tx_rows.by_ref().take(len).collect();
                let rx: Vec<Vec<(usize, Receiver<_>)>> = rx_rows.by_ref().take(len).collect();
                let chunk_base = base;
                base += len;
                handles.push(scope.spawn(move || {
                    worker_loop(chunk, chunk_base, tx, rx, plane_ref, env, run_horizon)
                }));
            }
            let mut lbs = Vec::new();
            let mut horizons = Vec::new();
            loop {
                plane.barrier.wait(); // round start: horizons/done visible
                if plane.is_done() {
                    break;
                }
                plane.barrier.wait(); // all sends flushed
                plane.barrier.wait(); // all LBs announced
                plane.snapshot_lbs(&mut lbs);
                if plane.has_panicked() || sync::quiescent(&lbs, run_horizon) {
                    plane.mark_done();
                } else {
                    sync::conservative_horizons(&lbs, lookahead, &mut horizons);
                    if sync::stalled(&lbs, &horizons, run_horizon) {
                        frozen_at = Some(lbs.iter().copied().fold(f64::INFINITY, f64::min));
                        plane.mark_done();
                    } else {
                        plane.publish_horizons(&horizons);
                    }
                }
            }
            let mut caught = None;
            for handle in handles {
                if let Ok(Some(p)) = handle.join() {
                    caught = Some(p);
                }
            }
            caught
        });
        if let Some(p) = payload {
            std::panic::resume_unwind(p);
        }
        assert_not_stalled(frozen_at.is_some(), frozen_at.unwrap_or(f64::NAN));
    }
}

/// API-boundary contract shared by both drivers: a numerically frozen
/// round must abort loudly. `stalled` comes from [`sync::stalled`] —
/// some lookahead is below half an ulp of the simulation clock at time
/// scale `t`, so `lb + la` rounds back to `lb` and the conservative
/// horizons can never advance past the earliest pending event; retrying
/// the round would livelock.
fn assert_not_stalled(stalled: bool, t: f64) {
    assert!(
        !stalled,
        "sharded run cannot advance past t={t}: a declared lookahead is below \
         the clock's floating-point resolution at this time scale (lb + lookahead \
         rounds back to lb); rescale time units or enlarge the partition's lookaheads"
    );
}

/// Picks the default worker-thread cap: `ATLARGE_DES_THREADS` when set,
/// otherwise the machine's available parallelism. Thread count never
/// affects results.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("ATLARGE_DES_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Dispatches every event of `shard` strictly below horizon `h` (and at
/// most `run_horizon`) in `(time, seq)` order.
fn run_round<L, F>(
    shard: &mut Shard<L, F>,
    s: usize,
    h: f64,
    run_horizon: f64,
    env: RoundEnv<'_, L::Event>,
) where
    L: LogicalProcess,
    F: FutureEventList<Routed<L::Event>>,
{
    let row_start = s * env.nshards;
    let la_row = env
        .lookahead
        .get(row_start..row_start + env.nshards)
        .unwrap_or(&[]);
    loop {
        let Some(entry) = shard.fel.pop_min_until(run_horizon) else {
            break;
        };
        if entry.time >= h {
            // Beyond this round's conservative window: put it back and
            // wait for the horizon to advance.
            shard.fel.insert(entry);
            break;
        }
        let Entry {
            time,
            seq,
            parent,
            event:
                Routed {
                    entity,
                    slot,
                    event,
                },
        } = entry;
        debug_assert!(
            time >= shard.now,
            "time went backwards on shard {s}: popped t={time} seq={seq} after now={}",
            shard.now
        );
        shard.now = time;
        shard.dispatched += 1;
        let slot = slot as usize;
        if let Some(tb) = shard.trace.as_mut() {
            tb.begin(time, seq, parent, (env.labeler)(&event));
        }
        if env.log_events {
            shard.log.push(EventRecord {
                time,
                id: seq,
                parent,
                entity,
            });
        }
        let Some(cell) = shard.cells.get_mut(slot) else {
            debug_assert!(false, "missing entity cell {slot}");
            continue;
        };
        // Split borrow: the handler gets the process, the context gets
        // the lane counter — disjoint fields of the same cell, so the
        // dispatch path moves nothing in or out.
        let EntityCell { lane, lp } = cell;
        let mut ctx = ShardCtx {
            now: time,
            entity,
            slot,
            cur_id: seq,
            cur_parent: parent,
            shard: s,
            nshards: env.nshards,
            seed: env.seed,
            local_out: &mut shard.local_out,
            outbox: &mut shard.outbox,
            lane,
            rngs: &mut shard.rngs,
            spare_rng: &mut shard.spare_rng,
            index: env.index,
            la_row,
            trace: shard.trace.as_mut(),
            labeler: env.labeler,
        };
        lp.handle(event, &mut ctx);
        for e in shard.local_out.drain(..) {
            if e.time < h {
                // Still inside this round's window: must interleave
                // with the events being popped right now.
                shard.fel.insert(e);
            } else {
                shard.staging.push(e);
            }
        }
    }
}

type Payload = Box<dyn Any + Send>;

/// One shard's senders toward each peer shard (`None` on self/absent
/// edges), and its receivers tagged with the source shard.
type EdgeTx<E> = Vec<Option<SyncSender<Entry<Routed<E>>>>>;
type EdgeRx<E> = Vec<(usize, Receiver<Entry<Routed<E>>>)>;

/// One worker thread: runs its chunk of shards through the three-phase
/// round protocol until the coordinator marks the run done. Panics in
/// handlers are caught so the barriers stay populated; the first
/// payload is returned to the coordinator and resumed there.
fn worker_loop<L, F>(
    chunk: &mut [Shard<L, F>],
    base: usize,
    mut tx: Vec<EdgeTx<L::Event>>,
    mut rx: Vec<EdgeRx<L::Event>>,
    plane: &SyncPlane,
    env: RoundEnv<'_, L::Event>,
    run_horizon: f64,
) -> Option<Payload>
where
    L: LogicalProcess,
    F: FutureEventList<Routed<L::Event>>,
{
    let mut payload: Option<Payload> = None;
    let mut round: u64 = 0;
    loop {
        plane.barrier.wait(); // round start
        if plane.is_done() {
            break;
        }
        round += 1;
        if payload.is_none() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                for (i, shard) in chunk.iter_mut().enumerate() {
                    let s = base + i;
                    run_round(shard, s, plane.horizon(s), run_horizon, env);
                }
                flush_outboxes(chunk, &mut tx, &mut rx);
            }));
            if let Err(p) = result {
                payload = Some(p);
                plane.mark_panicked();
            }
        }
        // Sends-complete handshake: announce this worker's flush is done
        // (or permanently abandoned, after a caught panic), then keep
        // draining inboxes until every worker has announced. A peer
        // blocked in try_send on a full edge channel is guaranteed a
        // live drainer this way — in particular on edges into a
        // panicked worker's shards, which a bare barrier wait would
        // leave full forever.
        plane.note_flushed();
        while plane.sends_outstanding(round) {
            drain_own_inboxes(chunk, &mut rx);
            std::thread::yield_now();
        }
        plane.barrier.wait(); // sends complete
        if payload.is_none() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                for (i, shard) in chunk.iter_mut().enumerate() {
                    if let Some(inboxes) = rx.get_mut(i) {
                        for (_src, receiver) in inboxes.iter_mut() {
                            while let Ok(entry) = receiver.try_recv() {
                                shard.inbox_hold.push(entry);
                            }
                        }
                    }
                    shard.absorb_staged();
                    plane.set_lb(base + i, shard.lower_bound());
                }
            }));
            if let Err(p) = result {
                payload = Some(p);
                plane.mark_panicked();
            }
        }
        if payload.is_some() {
            drain_own_inboxes(chunk, &mut rx);
            for i in 0..chunk.len() {
                plane.set_lb(base + i, f64::INFINITY);
            }
        }
        plane.barrier.wait(); // LBs announced
    }
    payload
}

/// Drains every receiver of this worker's shards into their inbox
/// holds — both the backpressure-relief path during flushes and the
/// keep-alive path after a caught panic.
fn drain_own_inboxes<L, F>(chunk: &mut [Shard<L, F>], rx: &mut [EdgeRx<L::Event>])
where
    L: LogicalProcess,
{
    for (i, shard) in chunk.iter_mut().enumerate() {
        if let Some(inboxes) = rx.get_mut(i) {
            for (_src, receiver) in inboxes.iter_mut() {
                while let Ok(entry) = receiver.try_recv() {
                    shard.inbox_hold.push(entry);
                }
            }
        }
    }
}

/// Pushes every outbox entry of this worker's shards into the edge
/// channels. On a full channel the worker drains its own inboxes and
/// retries. Liveness comes from the flush-completion handshake in
/// [`worker_loop`]: until every worker has announced its flush done,
/// each one is either in this retry loop (draining) or spin-draining
/// after its announcement — so a full channel always has a live
/// drainer, even when its owner panicked or finished flushing early.
fn flush_outboxes<L, F>(
    chunk: &mut [Shard<L, F>],
    tx: &mut [EdgeTx<L::Event>],
    rx: &mut [EdgeRx<L::Event>],
) where
    L: LogicalProcess,
{
    for i in 0..chunk.len() {
        let mut outbox = match chunk.get_mut(i) {
            Some(shard) => std::mem::take(&mut shard.outbox),
            None => continue,
        };
        for (t, bucket) in outbox.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let Some(sender) = tx
                .get(i)
                .and_then(|row| row.get(t))
                .and_then(Option::as_ref)
            else {
                debug_assert!(false, "cross-shard send on undeclared edge to {t}");
                bucket.clear();
                continue;
            };
            let sender = sender.clone();
            for mut entry in bucket.drain(..) {
                loop {
                    match sender.try_send(entry) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            entry = back;
                            drain_own_inboxes(chunk, rx);
                            std::thread::yield_now();
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            debug_assert!(false, "edge channel closed mid-run");
                            break;
                        }
                    }
                }
            }
        }
        if let Some(shard) = chunk.get_mut(i) {
            shard.outbox = outbox;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A ring of entities: each handles Tick by forwarding a Tick to the
    /// next entity after a delay >= the partition lookahead, mixing its
    /// RNG stream into a running checksum.
    struct RingNode {
        next: u32,
        hops_left: u32,
        sum: u64,
    }

    #[derive(Debug, Clone)]
    struct Tick;

    impl LogicalProcess for RingNode {
        type Event = Tick;
        fn handle(&mut self, _ev: Tick, ctx: &mut ShardCtx<'_, Tick>) {
            self.sum = self
                .sum
                .wrapping_mul(31)
                .wrapping_add(ctx.rng().gen::<u64>());
            if self.hops_left > 0 {
                self.hops_left -= 1;
                ctx.send_in(1.0, self.next, Tick);
            }
        }
    }

    fn ring(n: u32, hops: u32) -> Vec<RingNode> {
        (0..n)
            .map(|e| RingNode {
                next: (e + 1) % n,
                hops_left: hops,
                sum: 0,
            })
            .collect()
    }

    fn run_ring(shards: usize, threads: usize) -> (Vec<EventRecord>, Vec<u64>, f64, u64) {
        let part = StaticPartition::round_robin(8, shards, 1.0);
        let mut sim: ShardedSimulation<_, _> = match ShardedSimulation::new(part, ring(8, 5), 7) {
            Ok(sim) => sim,
            Err(e) => unreachable!("valid partition rejected: {e}"),
        };
        sim = sim.with_event_log().with_threads(threads);
        for e in 0..8 {
            sim.schedule(0.5, e, Tick);
        }
        sim.run();
        let log = sim.take_event_log();
        let now = sim.now();
        let processed = sim.processed();
        let sums = sim.into_lps().into_iter().map(|n| n.sum).collect();
        (log, sums, now, processed)
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_results() {
        let base = run_ring(1, 1);
        assert_eq!(base.3, 8 * 6);
        for (shards, threads) in [(2, 1), (2, 2), (8, 1), (8, 4), (3, 2)] {
            let got = run_ring(shards, threads);
            assert_eq!(
                got, base,
                "divergence at {shards} shards / {threads} threads"
            );
        }
    }

    #[test]
    fn zero_lookahead_edges_are_rejected_up_front() {
        let part = StaticPartition::round_robin(4, 2, 0.0);
        let res: Result<ShardedSimulation<_, RingNode>, _> =
            ShardedSimulation::new(part, ring(4, 1), 1);
        assert!(matches!(
            res,
            Err(PartitionError::BadLookahead { value, .. }) if value == 0.0
        ));
    }

    #[test]
    fn run_until_bounds_time_like_the_sealed_engine() {
        let part = StaticPartition::block(4, 2, 1.0);
        let mut sim: ShardedSimulation<_, _> = match ShardedSimulation::new(part, ring(4, 10), 3) {
            Ok(sim) => sim,
            Err(e) => unreachable!("valid partition rejected: {e}"),
        };
        sim = sim.with_threads(1);
        sim.schedule(0.0, 0, Tick);
        sim.run_until(3.0);
        assert_eq!(sim.now(), 3.0);
        assert_eq!(sim.processed(), 4); // t = 0, 1, 2, 3
        sim.run_until(f64::INFINITY);
        // Each of the 4 nodes forwards 10 times; node 0 handles once
        // more with hops exhausted: 41 events, last at t = 40.
        assert_eq!(sim.processed(), 41);
        assert_eq!(sim.now(), 40.0);
    }

    /// One-directional flooder: entity 0 bursts 64 cross-shard events
    /// per dispatch at a sink entity and re-arms itself a fixed number
    /// of times; the sink only counts.
    struct Pump {
        target: u32,
        bursts_left: u32,
        received: u64,
    }

    impl LogicalProcess for Pump {
        type Event = Tick;
        fn handle(&mut self, _ev: Tick, ctx: &mut ShardCtx<'_, Tick>) {
            self.received += 1;
            if self.bursts_left > 0 {
                self.bursts_left -= 1;
                for _ in 0..64 {
                    ctx.send_in(1.0, self.target, Tick);
                }
                if self.bursts_left > 0 {
                    ctx.schedule_in(1.0, Tick);
                }
            }
        }
    }

    fn run_flood(shards: usize, threads: usize, capacity: usize) -> (Vec<EventRecord>, Vec<u64>) {
        let part = StaticPartition::round_robin(2, shards, 1.0);
        let lps = vec![
            Pump {
                target: 1,
                bursts_left: 3,
                received: 0,
            },
            Pump {
                target: 0,
                bursts_left: 0,
                received: 0,
            },
        ];
        let mut sim: ShardedSimulation<_, _> = match ShardedSimulation::new(part, lps, 11) {
            Ok(sim) => sim,
            Err(e) => unreachable!("valid partition rejected: {e}"),
        };
        sim = sim
            .with_event_log()
            .with_threads(threads)
            .with_channel_capacity(capacity);
        sim.schedule(0.0, 0, Tick);
        sim.run();
        let log = sim.take_event_log();
        let received = sim.into_lps().into_iter().map(|p| p.received).collect();
        (log, received)
    }

    #[test]
    fn one_directional_floods_survive_tiny_edge_channels() {
        // 192 events cross one edge while the receiving worker has
        // nothing to send back: with capacity 1 its worker must keep
        // draining after its own (empty) flush completes, or the
        // sender spins forever at the sends-complete handshake.
        let base = run_flood(1, 1, 1024);
        assert_eq!(base.1, vec![3, 192]);
        for (shards, threads, capacity) in [(2, 2, 1), (2, 1, 1), (2, 2, 4)] {
            let got = run_flood(shards, threads, capacity);
            assert_eq!(
                got, base,
                "divergence at {shards} shards / {threads} threads / capacity {capacity}"
            );
        }
    }

    #[test]
    fn handler_panics_surface_without_deadlocking_workers() {
        struct Bomb;
        #[derive(Debug)]
        struct Go;
        impl LogicalProcess for Bomb {
            type Event = Go;
            fn handle(&mut self, _ev: Go, _ctx: &mut ShardCtx<'_, Go>) {
                panic!("boom");
            }
        }
        let part = StaticPartition::round_robin(4, 4, 1.0);
        let mut sim: ShardedSimulation<_, _> =
            match ShardedSimulation::new(part, vec![Bomb, Bomb, Bomb, Bomb], 1) {
                Ok(sim) => sim,
                Err(e) => unreachable!("valid partition rejected: {e}"),
            };
        sim = sim.with_threads(4);
        sim.schedule(0.0, 2, Go);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(caught.is_err());
    }

    /// Entity 0 floods shard 1 through a capacity-1 channel in the same
    /// round that shard 1's only entity panics: the panicked worker
    /// must keep draining that edge until the flooder's flush is
    /// announced complete, or `run()` hangs instead of re-panicking.
    #[test]
    fn panics_with_flooded_edge_channels_do_not_deadlock() {
        struct FloodOrBomb {
            flood_to: Option<u32>,
        }
        #[derive(Debug)]
        struct Poke;
        impl LogicalProcess for FloodOrBomb {
            type Event = Poke;
            fn handle(&mut self, _ev: Poke, ctx: &mut ShardCtx<'_, Poke>) {
                match self.flood_to {
                    Some(target) => {
                        for _ in 0..64 {
                            ctx.send_in(1.0, target, Poke);
                        }
                    }
                    None => panic!("boom"),
                }
            }
        }
        let part = StaticPartition::round_robin(2, 2, 1.0);
        let lps = vec![
            FloodOrBomb { flood_to: Some(1) },
            FloodOrBomb { flood_to: None },
        ];
        let mut sim: ShardedSimulation<_, _> = match ShardedSimulation::new(part, lps, 1) {
            Ok(sim) => sim,
            Err(e) => unreachable!("valid partition rejected: {e}"),
        };
        sim = sim.with_threads(2).with_channel_capacity(1);
        sim.schedule(0.0, 0, Poke);
        sim.schedule(0.0, 1, Poke);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run();
        }));
        assert!(caught.is_err());
    }

    /// At t = 1e16 the clock's ulp is 2.0, so `lb + 1.0` rounds back to
    /// `lb` and the conservative horizons freeze. The kernel must fail
    /// with a diagnostic instead of spinning in zero-progress rounds.
    #[test]
    fn sub_ulp_lookaheads_panic_instead_of_livelocking() {
        for threads in [1, 2] {
            let part = StaticPartition::round_robin(2, 2, 1.0);
            let mut sim: ShardedSimulation<_, _> = match ShardedSimulation::new(part, ring(2, 1), 1)
            {
                Ok(sim) => sim,
                Err(e) => unreachable!("valid partition rejected: {e}"),
            };
            sim = sim.with_threads(threads);
            sim.schedule(1e16, 0, Tick);
            sim.schedule(1e16, 1, Tick);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                sim.run();
            }));
            let payload = match caught {
                Err(p) => p,
                Ok(()) => unreachable!("frozen run returned at {threads} threads"),
            };
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("cannot advance"),
                "unexpected panic message: {msg}"
            );
        }
    }
}
