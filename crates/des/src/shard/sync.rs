//! Conservative-synchronization internals of the sharded kernel.
//!
//! This module is the *machinery* side of the `shard-boundary` layer
//! contract (lint.toml `[layer.shard-boundary]`, enforced by AL008):
//! domain crates program against [`Partition`](super::Partition) /
//! [`ShardedSimulation`](super::ShardedSimulation) and must never name
//! the channels, lower-bound announcements, or horizon math in here —
//! those are free to change as the protocol evolves.
//!
//! # Protocol
//!
//! The kernel runs Chandy–Misra–Bryant conservative synchronization in
//! *windowed* form: instead of per-channel null messages, every shard
//! publishes one lower bound (LB) per round — the timestamp of its
//! earliest pending event — which acts as a batched null message on all
//! of its outgoing edges at once. The raw LB vector is not yet safe to
//! window on: a shard whose own queue is empty (LB = ∞) can still
//! *receive* an event this round and relay a consequence of it early
//! the next — a multi-hop path the single-hop bound misses. So the
//! coordinator first relaxes the LBs through the lookahead graph to
//! earliest-execution bounds (the fixpoint of)
//!
//! ```text
//! exec(s) = min( LB(s), min over r != s of exec(r) + lookahead(r, s) )
//! ```
//!
//! — each shard's earliest time it could possibly execute *any* event,
//! pending or yet to arrive over any path — and then derives horizons:
//!
//! ```text
//! horizon(s) = min over r != s of  exec(r) + lookahead(r, s)
//! ```
//!
//! A shard may safely dispatch every event strictly below its horizon:
//! any event that could still reach it fires no earlier than that.
//! Because every declared lookahead is strictly positive, the shard
//! holding the globally earliest event has `exec` equal to its LB and a
//! horizon strictly above it, so every round makes progress — in exact
//! arithmetic. When a lookahead is below half an ulp of the clock,
//! `lb + la` rounds back to `lb` and the horizons freeze; [`stalled`]
//! detects that corner so the drivers can abort with a diagnostic
//! instead of livelocking.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Barrier;

/// Computes the conservative horizon of every shard from the current
/// lower-bound vector and the row-major `lookahead` matrix
/// (`lookahead[r * n + s]` = minimum cross-shard latency from `r` to
/// `s`, `INFINITY` when no edge exists). A shard with no incoming
/// edges gets an infinite horizon.
///
/// The LBs are first relaxed to earliest-execution bounds through the
/// lookahead graph (see the module docs): the shortest relaxing path
/// has at most `n - 1` edges, so `n - 1` Bellman–Ford sweeps reach the
/// fixpoint, and strictly positive lookaheads rule out the analogue of
/// negative cycles.
pub(crate) fn conservative_horizons(lbs: &[f64], lookahead: &[f64], out: &mut Vec<f64>) {
    let n = lbs.len();
    let edge = |r: usize, s: usize| lookahead.get(r * n + s).copied().unwrap_or(f64::INFINITY);
    let mut exec: Vec<f64> = lbs.to_vec();
    for _ in 1..n {
        let mut changed = false;
        for s in 0..n {
            let mut recv = f64::INFINITY;
            for r in 0..n {
                if r == s {
                    continue;
                }
                // `INFINITY + la` stays infinite, so unreachable peers
                // and missing edges drop out of the min automatically.
                let bound = exec.get(r).copied().unwrap_or(f64::INFINITY) + edge(r, s);
                if bound < recv {
                    recv = bound;
                }
            }
            if let Some(slot) = exec.get_mut(s) {
                if recv < *slot {
                    *slot = recv;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    out.clear();
    for s in 0..n {
        let mut h = f64::INFINITY;
        for (r, ex) in exec.iter().enumerate() {
            if r == s {
                continue;
            }
            let bound = *ex + edge(r, s);
            if bound < h {
                h = bound;
            }
        }
        out.push(h);
    }
}

/// Whether a bounded run is finished: every shard's earliest pending
/// event is either nonexistent or strictly beyond the run horizon
/// (events *at* the horizon still execute, mirroring
/// `Simulation::run_until`).
pub(crate) fn quiescent(lbs: &[f64], run_horizon: f64) -> bool {
    lbs.iter()
        .all(|&lb| lb == f64::INFINITY || lb > run_horizon)
}

/// Whether a round would dispatch nothing at all: every shard's
/// earliest pending event is at or beyond its horizon, or beyond the
/// run horizon. With events remaining (`!quiescent`) this is impossible
/// in exact arithmetic — the globally earliest shard always has a
/// horizon strictly above its LB — but when a lookahead is smaller than
/// half an ulp of the clock the horizon math rounds to a fixpoint that
/// never advances. A stalled round re-derives the same LBs and horizons
/// forever, so callers must treat it as fatal rather than retry.
pub(crate) fn stalled(lbs: &[f64], horizons: &[f64], run_horizon: f64) -> bool {
    lbs.iter()
        .zip(horizons)
        .all(|(&lb, &h)| lb >= h || lb > run_horizon)
}

/// The shared coordination state of one threaded run: per-shard lower
/// bounds and horizons (f64 bit patterns in atomics), the termination
/// and panic flags, and the round barrier. All reads and writes are
/// separated by [`Barrier::wait`], which provides the happens-before
/// edges; the atomics only need to be tear-free.
pub(crate) struct SyncPlane {
    lbs: Vec<AtomicU64>,
    horizons: Vec<AtomicU64>,
    /// Total flush announcements across all rounds (monotone, so no
    /// racy per-round reset): worker `w` bumps it once per round, after
    /// its cross-shard sends are pushed or permanently abandoned.
    flushed: AtomicU64,
    parties: u64,
    done: AtomicBool,
    panicked: AtomicBool,
    pub(crate) barrier: Barrier,
}

impl SyncPlane {
    /// `parties` is the number of worker threads; the coordinator is
    /// the extra barrier participant.
    pub(crate) fn new(shards: usize, parties: usize) -> Self {
        let inf = f64::INFINITY.to_bits();
        SyncPlane {
            lbs: (0..shards).map(|_| AtomicU64::new(inf)).collect(),
            horizons: (0..shards).map(|_| AtomicU64::new(inf)).collect(),
            flushed: AtomicU64::new(0),
            parties: parties as u64,
            done: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            barrier: Barrier::new(parties + 1),
        }
    }

    /// Announces that this worker has pushed every cross-shard send of
    /// the current round — or, having caught a panic, will never push
    /// them. Exactly one call per worker per round.
    pub(crate) fn note_flushed(&self) {
        self.flushed.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether some worker is still flushing sends for 1-based `round`.
    /// While this holds, every worker must keep draining its own
    /// inboxes so no peer's flush can block forever on a full edge
    /// channel — including edges into a panicked worker's shards.
    pub(crate) fn sends_outstanding(&self, round: u64) -> bool {
        self.flushed.load(Ordering::Acquire) < round.saturating_mul(self.parties)
    }

    pub(crate) fn set_lb(&self, shard: usize, lb: f64) {
        if let Some(slot) = self.lbs.get(shard) {
            slot.store(lb.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot_lbs(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.lbs
                .iter()
                .map(|slot| f64::from_bits(slot.load(Ordering::Relaxed))),
        );
    }

    pub(crate) fn publish_horizons(&self, horizons: &[f64]) {
        for (slot, h) in self.horizons.iter().zip(horizons) {
            slot.store(h.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn horizon(&self, shard: usize) -> f64 {
        self.horizons
            .get(shard)
            .map(|slot| f64::from_bits(slot.load(Ordering::Relaxed)))
            .unwrap_or(f64::INFINITY)
    }

    pub(crate) fn mark_done(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    pub(crate) fn mark_panicked(&self) {
        self.panicked.store(true, Ordering::Relaxed);
    }

    pub(crate) fn has_panicked(&self) -> bool {
        self.panicked.load(Ordering::Relaxed)
    }
}

/// The bounded cross-shard event channels of one threaded run, one per
/// directed edge with a finite lookahead. `senders[src][dst]` is `None`
/// on the diagonal and on undeclared edges; `receivers[dst]` lists
/// `(src, rx)` pairs in ascending source order (a fixed order, though
/// delivery order never matters: arrivals are sorted by `(time, seq)`
/// before insertion).
pub(crate) struct EdgeChannels<T> {
    pub(crate) senders: Vec<Vec<Option<SyncSender<T>>>>,
    pub(crate) receivers: Vec<Vec<(usize, Receiver<T>)>>,
}

pub(crate) fn edge_channels<T>(n: usize, lookahead: &[f64], capacity: usize) -> EdgeChannels<T> {
    let mut senders: Vec<Vec<Option<SyncSender<T>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut receivers: Vec<Vec<(usize, Receiver<T>)>> = (0..n).map(|_| Vec::new()).collect();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let la = lookahead
                .get(src * n + dst)
                .copied()
                .unwrap_or(f64::INFINITY);
            if !la.is_finite() {
                continue;
            }
            let (tx, rx) = sync_channel(capacity);
            if let Some(slot) = senders.get_mut(src).and_then(|row| row.get_mut(dst)) {
                *slot = Some(tx);
            }
            if let Some(inbox) = receivers.get_mut(dst) {
                inbox.push((src, rx));
            }
        }
    }
    EdgeChannels { senders, receivers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizons_follow_relaxed_exec_plus_lookahead() {
        // Two shards, lookahead 1.0 both ways. Shard 1's earliest
        // pending event is at 20, but it could receive shard 0's t=5
        // event's consequence and relay at 5 + 1 + 1 = 7 — shard 0's
        // horizon must be 7, not 21.
        let la = vec![f64::INFINITY, 1.0, 1.0, f64::INFINITY];
        let mut out = Vec::new();
        conservative_horizons(&[5.0, 20.0], &la, &mut out);
        assert_eq!(out, vec![7.0, 6.0]);
    }

    #[test]
    fn empty_relay_shards_do_not_unbound_downstream_horizons() {
        // Chain 0 -> 1 -> 2 with unit lookahead; shard 1 is empty.
        // Shard 2 must still be bounded by the two-hop path through 1:
        // 0.0 + 1 + 1 = 2.0.
        let inf = f64::INFINITY;
        #[rustfmt::skip]
        let la = vec![
            inf, 1.0, inf,
            inf, inf, 1.0,
            inf, inf, inf,
        ];
        let mut out = Vec::new();
        conservative_horizons(&[0.0, inf, 100.0], &la, &mut out);
        assert_eq!(out, vec![inf, 1.0, 2.0]);
    }

    #[test]
    fn empty_peer_and_missing_edge_drop_out() {
        // 0 -> 1 only; shard 0 has no incoming edge.
        let la = vec![f64::INFINITY, 2.0, f64::INFINITY, f64::INFINITY];
        let mut out = Vec::new();
        conservative_horizons(&[3.0, f64::INFINITY], &la, &mut out);
        assert_eq!(out, vec![f64::INFINITY, 5.0]);
    }

    #[test]
    fn quiescence_is_strict_past_the_horizon() {
        assert!(!quiescent(&[10.0, f64::INFINITY], 10.0));
        assert!(quiescent(&[10.5, f64::INFINITY], 10.0));
        assert!(quiescent(&[f64::INFINITY], f64::INFINITY));
        assert!(!quiescent(&[3.0], f64::INFINITY));
    }

    #[test]
    fn edge_channels_skip_diagonal_and_infinite_edges() {
        let la = vec![f64::INFINITY, 1.0, f64::INFINITY, f64::INFINITY];
        let chans = edge_channels::<u32>(2, &la, 4);
        let have: Vec<Vec<bool>> = chans
            .senders
            .iter()
            .map(|row| row.iter().map(Option::is_some).collect())
            .collect();
        assert_eq!(have, vec![vec![false, true], vec![false, false]]);
        assert_eq!(chans.receivers.first().map(Vec::len), Some(0));
        assert_eq!(chans.receivers.get(1).map(Vec::len), Some(1));
    }
}
