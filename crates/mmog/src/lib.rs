//! `atlarge-mmog` — the MMOG ecosystem reproduction (§6.2, Table 6).
//!
//! MMOGs raise "some of the strictest NFRs in distributed systems" and
//! the paper's decade of game studies spans all four ecosystem functions:
//! virtual-world operation, gaming analytics, procedural content
//! generation, and meta-gaming. Table 6's rows map to:
//!
//! - [`dynamics`] — short-/long-term player dynamics of MMORPG, MOBA, and
//!   online-social games (\[71\], \[72\], \[73\]).
//! - [`provisioning`] — dynamic resource provisioning for virtual worlds
//!   on clouds (\[71\], \[87\]): static vs reactive vs predictive.
//! - [`rts`] — the RTSenv scalability benchmark and the Area of
//!   Simulation technique (\[76\], \[81\]) plus the Mirror computation-
//!   offloading model (\[82\]).
//! - [`social`] — implicit social networks from co-play, matchmaking, and
//!   toxicity detection (\[74\], \[75\], \[77\], \[91\]).
//! - [`content`] — POGGI-style distributed puzzle-content generation
//!   (\[78\]).
//! - [`analytics`] — CAMEO-style continuous gaming analytics on elastic
//!   cloud capacity (\[79\]).
//! - [`experiments`] — the Table 6 row-by-row reproduction.

pub mod analytics;
pub mod content;
pub mod dynamics;
pub mod experiments;
pub mod provisioning;
pub mod rts;
pub mod social;
