//! Analytic queueing results and a reference queue-station model.
//!
//! §5.1/C3 of the paper puts *calibration* at the heart of simulation-based
//! design-space exploration. We calibrate the kernel itself: this module
//! provides closed-form M/M/c results (Erlang C) and a reference M/M/c
//! station built on the kernel, and the test suite asserts the simulated
//! mean waiting time matches theory. Every domain simulator inherits that
//! confidence.

use crate::sim::{Ctx, Model, Simulation};
use atlarge_stats::dist::{Exponential, Sample};

/// Offered load `a = lambda / mu` of an M/M/c system.
fn offered_load(lambda: f64, mu: f64) -> f64 {
    lambda / mu
}

/// Erlang-C formula: probability an arriving job waits in an M/M/c queue.
///
/// Returns 1.0 when the system is unstable (`lambda >= c*mu`).
///
/// # Panics
///
/// Panics unless `c > 0` and the rates are positive.
pub fn erlang_c(c: usize, lambda: f64, mu: f64) -> f64 {
    assert!(c > 0, "at least one server");
    assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
    let a = offered_load(lambda, mu);
    let rho = a / c as f64;
    if rho >= 1.0 {
        return 1.0;
    }
    // Sum_{k=0}^{c-1} a^k/k! computed iteratively for stability.
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..c {
        term *= a / k as f64;
        sum += term;
    }
    let ac_fact = term * a / c as f64; // a^c / c!
    let top = ac_fact / (1.0 - rho);
    top / (sum + top)
}

/// Mean waiting time (in queue, excluding service) of an M/M/c system.
///
/// Returns infinity when unstable.
pub fn mmc_mean_wait(c: usize, lambda: f64, mu: f64) -> f64 {
    let rho = offered_load(lambda, mu) / c as f64;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    erlang_c(c, lambda, mu) / (c as f64 * mu - lambda)
}

/// Mean response time (wait + service) of an M/M/1 system.
///
/// Returns infinity when unstable.
pub fn mm1_mean_response(lambda: f64, mu: f64) -> f64 {
    if lambda >= mu {
        return f64::INFINITY;
    }
    1.0 / (mu - lambda)
}

/// Events of the reference queue station.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StationEvent {
    /// A new job arrives.
    Arrival,
    /// A server finishes the job it started at the carried time.
    Departure {
        /// Arrival time of the finishing job.
        arrived_at: f64,
    },
}

/// A reference M/M/c queue station on the DES kernel.
///
/// Jobs arrive Poisson(`lambda`), take Exp(`mu`) service, and `c` servers
/// drain a FIFO queue. The station records per-job waiting times.
#[derive(Debug)]
pub struct QueueStation {
    arrival: Exponential,
    service: Exponential,
    servers: usize,
    busy: usize,
    fifo: std::collections::VecDeque<f64>,
    waits: Vec<f64>,
    responses: Vec<f64>,
    max_jobs: usize,
    started: usize,
}

impl QueueStation {
    /// Creates a station that simulates `max_jobs` job completions.
    ///
    /// # Panics
    ///
    /// Panics unless rates are positive and `servers > 0`.
    pub fn new(lambda: f64, mu: f64, servers: usize, max_jobs: usize) -> Self {
        assert!(servers > 0, "at least one server");
        QueueStation {
            arrival: Exponential::new(lambda),
            service: Exponential::new(mu),
            servers,
            busy: 0,
            fifo: std::collections::VecDeque::new(),
            waits: Vec::new(),
            responses: Vec::new(),
            max_jobs,
            started: 0,
        }
    }

    /// Waiting times (queue only) of completed jobs.
    pub fn waits(&self) -> &[f64] {
        &self.waits
    }

    /// Response times (queue + service) of completed jobs.
    pub fn responses(&self) -> &[f64] {
        &self.responses
    }

    fn start_service(&mut self, arrived_at: f64, ctx: &mut Ctx<StationEvent>) {
        self.busy += 1;
        self.waits.push(ctx.now() - arrived_at);
        let s = self.service.sample(ctx.rng());
        ctx.schedule_in(s, StationEvent::Departure { arrived_at });
    }
}

impl Model for QueueStation {
    type Event = StationEvent;

    fn handle(&mut self, ev: StationEvent, ctx: &mut Ctx<StationEvent>) {
        match ev {
            StationEvent::Arrival => {
                if self.started < self.max_jobs {
                    self.started += 1;
                    let next = self.arrival.sample(ctx.rng());
                    ctx.schedule_in(next, StationEvent::Arrival);
                    if self.busy < self.servers {
                        self.start_service(ctx.now(), ctx);
                    } else {
                        self.fifo.push_back(ctx.now());
                    }
                }
            }
            StationEvent::Departure { arrived_at } => {
                self.busy -= 1;
                self.responses.push(ctx.now() - arrived_at);
                if let Some(waiting_since) = self.fifo.pop_front() {
                    self.start_service(waiting_since, ctx);
                }
            }
        }
    }
}

/// Runs the reference station and returns `(mean_wait, mean_response)`.
pub fn simulate_mmc(lambda: f64, mu: f64, servers: usize, jobs: usize, seed: u64) -> (f64, f64) {
    let mut sim = Simulation::new(QueueStation::new(lambda, mu, servers, jobs), seed);
    sim.schedule(0.0, StationEvent::Arrival);
    sim.run();
    let m = sim.model();
    let mean = |v: &[f64]| {
        let mut total = 0.0;
        for x in v {
            total += x;
        }
        total / v.len().max(1) as f64
    };
    (mean(m.waits()), mean(m.responses()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_c_single_server_is_rho() {
        // For M/M/1, P(wait) = rho.
        let p = erlang_c(1, 0.7, 1.0);
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_unstable_is_one() {
        assert_eq!(erlang_c(2, 5.0, 1.0), 1.0);
        assert_eq!(mmc_mean_wait(1, 2.0, 1.0), f64::INFINITY);
    }

    #[test]
    fn more_servers_less_waiting() {
        let w2 = mmc_mean_wait(2, 1.5, 1.0);
        let w3 = mmc_mean_wait(3, 1.5, 1.0);
        let w4 = mmc_mean_wait(4, 1.5, 1.0);
        assert!(w2 > w3 && w3 > w4);
    }

    #[test]
    fn simulated_mm1_matches_theory() {
        // rho = 0.5: mean response = 1/(mu - lambda) = 2.0.
        let (_, resp) = simulate_mmc(0.5, 1.0, 1, 60_000, 7);
        let theory = mm1_mean_response(0.5, 1.0);
        assert!(
            (resp - theory).abs() / theory < 0.06,
            "sim {resp} vs theory {theory}"
        );
    }

    #[test]
    fn simulated_mmc_wait_matches_erlang_c() {
        // M/M/3 at rho = 0.8.
        let (wait, _) = simulate_mmc(2.4, 1.0, 3, 80_000, 11);
        let theory = mmc_mean_wait(3, 2.4, 1.0);
        assert!(
            (wait - theory).abs() / theory < 0.12,
            "sim {wait} vs theory {theory}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = simulate_mmc(0.9, 1.0, 1, 5_000, 3);
        let b = simulate_mmc(0.9, 1.0, 1, 5_000, 3);
        assert_eq!(a, b);
    }
}
