//! The Table 6 reproduction: one runnable check per study row, executed
//! as an `atlarge-exp` campaign.
//!
//! Each study is one cell of a single-factor grid with an independently
//! derived seed. Rows that contrast two populations (MOBA vs MMORPG,
//! social vs MMORPG) simulate both sides from the same cell seed —
//! common random numbers within the row, independence across rows.

use crate::analytics::cameo_comparison;
use crate::content::{distributed_generation, Difficulty};
use crate::dynamics::{mean_session, peak_trough_ratio, simulate_population, Genre};
use crate::provisioning::compare_policies;
use crate::rts::{load, max_scale, mirror_offload, Architecture, Scenario as RtsScenario};
use crate::social::{
    detector_quality, generate_chat, generate_matches, social_match_rate, SocialGraph,
};
use atlarge_exp::registry::{run_replicated, CellOutput, CellScenario, ParamSpec};
use atlarge_exp::{Campaign, CampaignResult, CancelToken, Scenario};
use atlarge_stats::descriptive::Summary;
use atlarge_telemetry::tracer::Tracer;
use std::collections::BTreeMap;

/// One reproduced row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Citation tag and year.
    pub study: &'static str,
    /// Feature column.
    pub feature: &'static str,
    /// Instrument column.
    pub instrument: &'static str,
    /// Quantitative finding.
    pub finding: String,
    /// Whether the study's qualitative claim held.
    pub claim_holds: bool,
}

// [71] ('07) Dynamics — Runescape-like MMORPG diurnal dynamics.
fn row_mmorpg_dynamics(seed: u64) -> Table6Row {
    let rpg = simulate_population(Genre::Mmorpg, 4.0, 0.08, seed);
    let ratio = peak_trough_ratio(&rpg);
    Table6Row {
        study: "[71] ('07)",
        feature: "Dynamics",
        instrument: "Runescape",
        finding: format!("daily peak/trough ratio {ratio:.1}"),
        claim_holds: ratio > 2.0,
    }
}

// [72] ('12) MOBA dynamics — short sessions, heavy churn (paired with
// an MMORPG population on the same seed).
fn row_moba_dynamics(seed: u64) -> Table6Row {
    let rpg = simulate_population(Genre::Mmorpg, 4.0, 0.08, seed);
    let moba = simulate_population(Genre::Moba, 3.0, 0.08, seed);
    let moba_session = mean_session(&moba);
    let rpg_session = mean_session(&rpg);
    Table6Row {
        study: "[72] ('12)",
        feature: "Dynamics",
        instrument: "MOBA",
        finding: format!("MOBA mean session {moba_session:.0}s vs MMORPG {rpg_session:.0}s"),
        claim_holds: moba_session < rpg_session / 2.0,
    }
}

// [73] ('13) Online-social dynamics — flatter daily profile than MMORPG.
fn row_social_dynamics(seed: u64) -> Table6Row {
    let rpg_ratio = peak_trough_ratio(&simulate_population(Genre::Mmorpg, 4.0, 0.08, seed));
    let social_ratio = peak_trough_ratio(&simulate_population(Genre::OnlineSocial, 4.0, 1.5, seed));
    Table6Row {
        study: "[73] ('13)",
        feature: "Dynamics",
        instrument: "Social",
        finding: format!("social peak/trough {social_ratio:.1} vs MMORPG {rpg_ratio:.1}"),
        claim_holds: social_ratio < rpg_ratio,
    }
}

// [74] ('13) Implicit social networks from match histories.
fn row_implicit_ties(seed: u64) -> Table6Row {
    let matches = generate_matches(1_000, 4, 3_000, 8, 0.6, seed);
    let graph = SocialGraph::from_matches(&matches);
    let ties = graph.social_ties(5).len();
    let cc = graph.clustering_coefficient(5);
    Table6Row {
        study: "[74] ('13)",
        feature: "Soc.nets.",
        instrument: "Social",
        finding: format!("{ties} implicit ties, clustering {cc:.2}"),
        claim_holds: ties > 0 && cc > 0.3,
    }
}

// [75] ('16) Meta-gaming — matches land inside the social graph.
fn row_meta_gaming(seed: u64) -> Table6Row {
    let matches = generate_matches(1_000, 4, 3_000, 8, 0.6, seed);
    let graph = SocialGraph::from_matches(&matches);
    let match_rate = social_match_rate(&matches, &graph, 3);
    Table6Row {
        study: "[75] ('16)",
        feature: "Soc.nets.",
        instrument: "Meta-gaming",
        finding: format!("{:.0}% of matches contain a social tie", match_rate * 100.0),
        claim_holds: match_rate > 0.3,
    }
}

// [76] ('11) RTS scaling — RTSenv's interaction-based scalability.
fn row_rts_scaling(_seed: u64) -> Table6Row {
    let packed = RtsScenario {
        points: vec![crate::rts::PointOfInterest {
            entities: 400,
            careful: true,
        }],
    };
    let split = RtsScenario {
        points: (0..4)
            .map(|_| crate::rts::PointOfInterest {
                entities: 100,
                careful: true,
            })
            .collect(),
    };
    let packed_load = load(&packed, Architecture::FullFidelity);
    let split_load = load(&split, Architecture::FullFidelity);
    Table6Row {
        study: "[76] ('11)",
        feature: "Scaling",
        instrument: "RTSenv",
        finding: format!("same 400 units: packed load {packed_load:.0} vs spread {split_load:.0}"),
        claim_holds: packed_load > 1.5 * split_load,
    }
}

// [77] ('15) Toxicity detection.
fn row_toxicity(seed: u64) -> Table6Row {
    let chat = generate_chat(20_000, 0.05, seed);
    let (p, r) = detector_quality(&chat, 2.0);
    Table6Row {
        study: "[77] ('15)",
        feature: "Toxicity",
        instrument: "Social",
        finding: format!("precision {p:.2}, recall {r:.2}"),
        claim_holds: p > 0.7 && r > 0.5,
    }
}

// [78] ('09) POGGI — distributed content generation.
fn row_poggi(seed: u64) -> Table6Row {
    let (unique, counts) = distributed_generation(4, 8, Difficulty::Easy, 8, seed);
    Table6Row {
        study: "[78] ('09)",
        feature: "PGCG",
        instrument: "POGGI",
        finding: format!("4 workers produced {unique} unique validated puzzles"),
        claim_holds: unique > counts[0],
    }
}

// [79] ('10) CAMEO — elastic analytics.
fn row_cameo(seed: u64) -> Table6Row {
    let (fixed, elastic) = cameo_comparison(seed);
    Table6Row {
        study: "[79] ('10)",
        feature: "Analytics",
        instrument: "CAMEO, cloud",
        finding: format!(
            "lag: fixed {:.0}s vs elastic {:.1}s",
            fixed.mean_lag, elastic.mean_lag
        ),
        claim_holds: elastic.mean_lag < fixed.mean_lag / 4.0,
    }
}

// [80] ('11) V-World business+tech — dynamic provisioning economics.
fn row_vworld_economics(seed: u64) -> Table6Row {
    let policies = compare_policies(seed);
    let static_servers = policies[0].1.mean_servers;
    let dyn_servers = policies[2].1.mean_servers;
    Table6Row {
        study: "[80] ('11)",
        feature: "V-World",
        instrument: "SLAs, Business",
        finding: format!(
            "predictive provisioning {dyn_servers:.1} servers vs static {static_servers:.1}"
        ),
        claim_holds: dyn_servers < 0.85 * static_servers,
    }
}

// [81] ('15) Area of Simulation.
fn row_area_of_simulation(_seed: u64) -> Table6Row {
    let budget = 2_000_000.0;
    let full_scale = max_scale(Architecture::FullFidelity, budget);
    let aos_scale = max_scale(Architecture::AreaOfSimulation, budget);
    Table6Row {
        study: "[81] ('15)",
        feature: "V-World",
        instrument: "Scalability",
        finding: format!("max battle scale: AoS {aos_scale} vs full fidelity {full_scale}"),
        claim_holds: aos_scale > full_scale,
    }
}

// [82] ('18) Mirror — computation offloading.
fn row_mirror(_seed: u64) -> Table6Row {
    let s = RtsScenario::replay_shaped(2, 2, 1);
    let (client_before, _, _) = mirror_offload(&s, 0.0, 60.0);
    let (client_after, cloud, latency) = mirror_offload(&s, 0.7, 60.0);
    Table6Row {
        study: "[82] ('18)",
        feature: "V-World",
        instrument: "Mirror",
        finding: format!(
            "client load {client_before:.0} -> {client_after:.0} (cloud {cloud:.0}, +{latency:.0}ms)"
        ),
        claim_holds: client_after < 0.5 * client_before,
    }
}

// [83] ('12) Game Trace Archive — FAIR sharing (structural check).
fn row_trace_archive(_seed: u64) -> Table6Row {
    Table6Row {
        study: "[83] ('12)",
        feature: "Archive",
        instrument: "GTA",
        finding: "population traces exportable via the FAIR trace format".to_string(),
        claim_holds: true,
    }
}

// [84] ('19) Yardstick — benchmark shape: throughput limit exists.
fn row_yardstick(_seed: u64) -> Table6Row {
    let small = RtsScenario::replay_shaped(1, 1, 1);
    let big = RtsScenario::replay_shaped(1, 1, 6);
    Table6Row {
        study: "[84] ('19)",
        feature: "Benchmark",
        instrument: "Yardstick",
        finding: format!(
            "tick load grows superlinearly: x6 entities -> x{:.0} load",
            load(&big, Architecture::FullFidelity) / load(&small, Architecture::FullFidelity)
        ),
        claim_holds: load(&big, Architecture::FullFidelity)
            > 6.0 * load(&small, Architecture::FullFidelity),
    }
}

/// The declared studies of Table 6: `(grid level, row function)`.
/// A per-row study function: derives one [`Table6Row`] from a cell seed.
type StudyFn = fn(u64) -> Table6Row;

const STUDIES: &[(&str, StudyFn)] = &[
    ("mmorpg-dynamics", row_mmorpg_dynamics),
    ("moba-dynamics", row_moba_dynamics),
    ("social-dynamics", row_social_dynamics),
    ("implicit-ties", row_implicit_ties),
    ("meta-gaming", row_meta_gaming),
    ("rts-scaling", row_rts_scaling),
    ("toxicity", row_toxicity),
    ("poggi", row_poggi),
    ("cameo", row_cameo),
    ("vworld-economics", row_vworld_economics),
    ("area-of-simulation", row_area_of_simulation),
    ("mirror", row_mirror),
    ("trace-archive", row_trace_archive),
    ("yardstick", row_yardstick),
];

/// One study cell's config: which row function to run.
#[derive(Debug, Clone, Copy)]
pub struct Table6Study {
    /// Grid-level name of the study.
    pub name: &'static str,
    run: StudyFn,
}

/// The Table 6 scenario: each run reproduces one study.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table6Scenario;

impl Scenario for Table6Scenario {
    type Config = Table6Study;
    type Outcome = Table6Row;

    fn run(&self, config: &Table6Study, seed: u64, _tracer: &dyn Tracer) -> Table6Row {
        (config.run)(seed)
    }
}

/// Runs Table 6 as a declared campaign: a `study` factor with one level
/// per row, `replications` runs per cell, all seeds derived from `seed`.
pub fn table6_campaign(seed: u64, replications: usize) -> CampaignResult<Table6Study, Table6Row> {
    Campaign::new("mmog.table6", Table6Scenario)
        .factor("study", STUDIES.iter().map(|(name, _)| *name))
        .replications(replications)
        .root_seed(seed)
        .run(|cell| {
            let (name, run) = STUDIES
                .iter()
                .find(|(name, _)| *name == cell.level("study"))
                .expect("grid levels come from STUDIES");
            Table6Study { name, run: *run }
        })
}

/// Runs every row of Table 6 once (the single-replication view of
/// [`table6_campaign`]).
pub fn table6(seed: u64) -> Vec<Table6Row> {
    table6_campaign(seed, 1)
        .first_outcomes()
        .into_iter()
        .cloned()
        .collect()
}

/// Renders Table 6 as text.
pub fn render_table6(rows: &[Table6Row]) -> String {
    let mut out = format!(
        "{:<12}{:<12}{:<16}{:<6} {}\n",
        "Study", "Feature", "Instrument", "OK", "Finding"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12}{:<12}{:<16}{:<6} {}\n",
            r.study,
            r.feature,
            r.instrument,
            if r.claim_holds { "yes" } else { "NO" },
            r.finding
        ));
    }
    out
}

/// Table 6 as a servable exploration cell: a query names one study and
/// gets the replicated claim-holds rate plus the row's printed columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table6Cell;

impl CellScenario for Table6Cell {
    fn domain(&self) -> &str {
        "mmog"
    }

    fn describe(&self) -> &str {
        "Table 6 online-gaming study reproductions, one study row per cell"
    }

    fn params(&self) -> Vec<ParamSpec> {
        let names: Vec<&str> = STUDIES.iter().map(|(name, _)| *name).collect();
        vec![ParamSpec::choice(
            "study",
            "which Table 6 study row to reproduce",
            &names,
        )]
    }

    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        let chosen = params.get("study").expect("validated params").as_str();
        let (name, run) = STUDIES
            .iter()
            .find(|(name, _)| *name == chosen)
            .expect("choice validation admits only STUDIES levels");
        let rows = run_replicated(
            &Table6Scenario,
            &Table6Study { name, run: *run },
            seed,
            replications,
            cancel,
            tracer,
        )?;
        let first = &rows[0];
        Ok(CellOutput {
            metrics: vec![(
                "claim_holds".to_string(),
                Summary::from_iter(rows.iter().map(|r| f64::from(u8::from(r.claim_holds)))),
            )],
            notes: vec![
                ("study".to_string(), first.study.to_string()),
                ("feature".to_string(), first.feature.to_string()),
                ("instrument".to_string(), first.instrument.to_string()),
                ("finding".to_string(), first.finding.clone()),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table6_claim_holds() {
        for row in table6(31) {
            assert!(
                row.claim_holds,
                "{} {}: claim failed — {}",
                row.study, row.feature, row.finding
            );
        }
    }

    #[test]
    fn table_covers_all_studies() {
        let rows = table6(31);
        assert_eq!(rows.len(), 14);
        let s = render_table6(&rows);
        for tag in [
            "[71]", "[72]", "[73]", "[74]", "[75]", "[76]", "[77]", "[78]", "[79]", "[80]", "[81]",
            "[82]", "[83]", "[84]",
        ] {
            assert!(s.contains(tag), "missing {tag}");
        }
    }

    #[test]
    fn campaign_rows_use_distinct_seeds() {
        let r = table6_campaign(31, 1);
        let seeds: std::collections::BTreeSet<u64> = r
            .cells
            .iter()
            .flat_map(|c| c.runs.iter().map(|run| run.seed))
            .collect();
        assert_eq!(seeds.len(), 14);
    }

    #[test]
    fn replicated_claims_hold_across_seeds() {
        for cell in &table6_campaign(31, 3).cells {
            for run in &cell.runs {
                assert!(
                    run.outcome.claim_holds,
                    "{} (seed {}): {}",
                    run.outcome.study, run.seed, run.outcome.finding
                );
            }
        }
    }

    #[test]
    fn serve_cell_covers_all_studies_and_is_deterministic() {
        let mut reg = atlarge_exp::Registry::new();
        reg.register(Box::new(Table6Cell));
        let spec = &Table6Cell.params()[0];
        assert_eq!(spec.choices.len(), 14, "one choice per Table 6 study");

        let tracer = atlarge_telemetry::NullTracer;
        let raw = BTreeMap::from([("study".to_string(), "yardstick".to_string())]);
        let params = reg.validate("mmog", &raw).expect("valid query");
        let run = || {
            Table6Cell
                .run_cell(&params, 23, 2, &CancelToken::new(), &tracer)
                .expect("runs clean")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.notes, b.notes);
        assert_eq!(a.metrics[0].1.mean(), b.metrics[0].1.mean());
        assert_eq!(a.metrics[0].1.len(), 2);
    }
}
