//! RTS scalability: RTSenv, Area of Simulation, Mirror (\[76\], \[81\], \[82\]).
//!
//! RTSenv revealed "a new form of scalability, unique to MMOGs, that
//! combines systems and game-design concepts": cost depends not on total
//! units but on how units pile into *points of interest*. Replay analysis
//! then showed RTS play has "(i) multiple points of interest, (ii) careful
//! management of up to tens of entities in some ..., (iii) more casual
//! management of up to hundreds ... in the others" — leading to the Area
//! of Simulation (AoS) technique: full-fidelity simulation only where
//! careful management happens, casual (low-rate) simulation elsewhere, and
//! to Mirror's computation offloading for mobile clients.

/// A point of interest on the RTS map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointOfInterest {
    /// Entities gathered at this point.
    pub entities: u32,
    /// Whether players manage this point carefully (high interaction
    /// rate) or casually.
    pub careful: bool,
}

/// A battle scenario: entities spread over points of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The points of interest.
    pub points: Vec<PointOfInterest>,
}

impl Scenario {
    /// The replay-derived shape: a few carefully-managed hot points (tens
    /// of entities each) and several casual ones (hundreds).
    pub fn replay_shaped(hot_points: usize, casual_points: usize, scale: u32) -> Self {
        let mut points = Vec::new();
        for _ in 0..hot_points {
            points.push(PointOfInterest {
                entities: 30 * scale,
                careful: true,
            });
        }
        for _ in 0..casual_points {
            points.push(PointOfInterest {
                entities: 200 * scale,
                careful: false,
            });
        }
        Scenario { points }
    }

    /// Total entities.
    pub fn total_entities(&self) -> u32 {
        self.points.iter().map(|p| p.entities).sum()
    }
}

/// Simulation architectures compared by the AoS study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Classic client-server: the server simulates everything at full
    /// fidelity.
    FullFidelity,
    /// Static zoning: per-zone servers, but still full fidelity per zone
    /// (cost unchanged, only distributed; coordination overhead added).
    Zoning,
    /// Area of Simulation: full fidelity only at carefully-managed
    /// points, casual fidelity elsewhere.
    AreaOfSimulation,
}

impl Architecture {
    /// All architectures.
    pub fn all() -> [Architecture; 3] {
        [
            Architecture::FullFidelity,
            Architecture::Zoning,
            Architecture::AreaOfSimulation,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::FullFidelity => "full",
            Architecture::Zoning => "zoning",
            Architecture::AreaOfSimulation => "aos",
        }
    }
}

/// Full-fidelity tick rate (Hz) and the casual AoS rate.
pub const FULL_RATE: f64 = 20.0;
/// Casual simulation rate used by AoS outside areas of interest.
pub const CASUAL_RATE: f64 = 2.0;

/// Per-tick cost of simulating one point: interactions are quadratic in
/// co-located entities (unit collision/targeting), the game-design fact
/// RTSenv surfaced.
fn point_cost(entities: u32) -> f64 {
    let e = f64::from(entities);
    e + 0.01 * e * e
}

/// Computation load (cost × tick-rate, arbitrary units/s) of a scenario
/// under an architecture.
pub fn load(scenario: &Scenario, arch: Architecture) -> f64 {
    match arch {
        Architecture::FullFidelity => scenario
            .points
            .iter()
            .map(|p| point_cost(p.entities) * FULL_RATE)
            .sum(),
        Architecture::Zoning => {
            // Same per-point full-fidelity cost plus 10% cross-zone
            // coordination overhead.
            scenario
                .points
                .iter()
                .map(|p| point_cost(p.entities) * FULL_RATE)
                .sum::<f64>()
                * 1.1
        }
        Architecture::AreaOfSimulation => scenario
            .points
            .iter()
            .map(|p| {
                let rate = if p.careful { FULL_RATE } else { CASUAL_RATE };
                point_cost(p.entities) * rate
            })
            .sum(),
    }
}

/// Maximum `scale` (see [`Scenario::replay_shaped`]) an architecture
/// sustains within a compute `budget`.
pub fn max_scale(arch: Architecture, budget: f64) -> u32 {
    let mut scale = 1;
    loop {
        let s = Scenario::replay_shaped(3, 4, scale);
        if load(&s, arch) > budget {
            return scale.saturating_sub(1);
        }
        scale += 1;
        if scale > 10_000 {
            return scale;
        }
    }
}

/// Mirror (\[82\]): offloads a fraction of simulation computation from a
/// mobile client to a cloud mirror. Returns `(client_load, cloud_load,
/// added_latency_ms)`.
pub fn mirror_offload(
    scenario: &Scenario,
    offload_fraction: f64,
    network_rtt_ms: f64,
) -> (f64, f64, f64) {
    assert!((0.0..=1.0).contains(&offload_fraction), "fraction in [0,1]");
    let total = load(scenario, Architecture::AreaOfSimulation);
    let cloud = total * offload_fraction;
    let client = total - cloud;
    // Offloaded state updates pay half an RTT each way amortized.
    let latency = if offload_fraction > 0.0 {
        network_rtt_ms
    } else {
        0.0
    };
    (client, cloud, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_cost_is_superlinear() {
        // RTSenv's discovery: doubling entities at one point more than
        // doubles cost, while splitting them across points does not.
        let packed = Scenario {
            points: vec![PointOfInterest {
                entities: 400,
                careful: true,
            }],
        };
        let split = Scenario {
            points: vec![
                PointOfInterest {
                    entities: 200,
                    careful: true,
                },
                PointOfInterest {
                    entities: 200,
                    careful: true,
                },
            ],
        };
        assert_eq!(packed.total_entities(), split.total_entities());
        assert!(
            load(&packed, Architecture::FullFidelity)
                > 1.4 * load(&split, Architecture::FullFidelity),
            "same units, packed should cost much more"
        );
    }

    #[test]
    fn aos_cuts_load_on_replay_shaped_battles() {
        let s = Scenario::replay_shaped(3, 4, 1);
        let full = load(&s, Architecture::FullFidelity);
        let aos = load(&s, Architecture::AreaOfSimulation);
        assert!(
            aos < 0.5 * full,
            "AoS {aos} should cost well under half of full {full}"
        );
    }

    #[test]
    fn zoning_does_not_cut_load() {
        let s = Scenario::replay_shaped(3, 4, 1);
        assert!(load(&s, Architecture::Zoning) >= load(&s, Architecture::FullFidelity));
    }

    #[test]
    fn aos_scales_further_under_fixed_budget() {
        let budget = 2_000_000.0;
        let full = max_scale(Architecture::FullFidelity, budget);
        let aos = max_scale(Architecture::AreaOfSimulation, budget);
        assert!(
            aos > full,
            "AoS max scale {aos} should exceed full fidelity {full}"
        );
    }

    #[test]
    fn mirror_trades_latency_for_client_load() {
        let s = Scenario::replay_shaped(2, 2, 1);
        let (c0, g0, l0) = mirror_offload(&s, 0.0, 60.0);
        let (c1, g1, l1) = mirror_offload(&s, 0.7, 60.0);
        assert_eq!(g0, 0.0);
        assert_eq!(l0, 0.0);
        assert!(c1 < c0);
        assert!(g1 > 0.0);
        assert_eq!(l1, 60.0);
    }

    #[test]
    fn architectures_enumerate() {
        assert_eq!(Architecture::all().len(), 3);
        assert_eq!(Architecture::AreaOfSimulation.name(), "aos");
    }
}
