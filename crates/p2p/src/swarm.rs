//! The BitTorrent swarm simulator.
//!
//! A fluid-flow model on the DES kernel: every `recalc_interval` seconds
//! the swarm's aggregate upload capacity is divided among leechers by
//! tit-for-tat weight (a peer's share grows with its own upload
//! contribution, plus a small optimistic-unchoke floor), bounded by each
//! leecher's download capacity. Fluid models of BitTorrent are standard in
//! the measurement literature the paper builds on and capture the swarm-
//! level phenomena the studies report — flashcrowd starvation, asymmetric-
//! bandwidth limits, seed-ratio effects — without per-packet detail.

use atlarge_des::sim::{Ctx, Model, Simulation};
use atlarge_evolve::{
    handoff, swap_span_label, Capsule, CapsuleError, Evolvable, Identity, SwapPlan, SwapRecord,
};
use atlarge_stats::dist::{Exponential, Sample};
use atlarge_telemetry::manifest::config_digest;
use atlarge_telemetry::recorder::Recorder;
use atlarge_telemetry::tracer::EventLabel;
use std::collections::BTreeMap;

/// Access-link profile of a peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    /// Upload capacity, bytes/s.
    pub up: f64,
    /// Download capacity, bytes/s.
    pub down: f64,
}

impl Bandwidth {
    /// A symmetric link.
    pub fn symmetric(rate: f64) -> Self {
        Bandwidth {
            up: rate,
            down: rate,
        }
    }

    /// An ADSL-style asymmetric link: download `ratio` times the upload.
    /// The 2006 ecosystem-Internet study found exactly this "large
    /// imbalance between upload and download" (\[62\]).
    pub fn adsl(up: f64, ratio: f64) -> Self {
        Bandwidth {
            up,
            down: up * ratio,
        }
    }
}

/// Swarm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmConfig {
    /// File size in bytes.
    pub file_size: f64,
    /// Peer access link.
    pub bandwidth: Bandwidth,
    /// Mean time a finished peer seeds before leaving (exponential).
    pub mean_seed_time: f64,
    /// Number of always-on origin seeds.
    pub origin_seeds: usize,
    /// Rate recomputation interval, seconds.
    pub recalc_interval: f64,
    /// Optimistic-unchoke floor weight (fraction of a full upload
    /// contribution granted to everyone).
    pub optimistic_floor: f64,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            file_size: 700e6, // the classic 700 MB rip
            bandwidth: Bandwidth::adsl(64e3, 8.0),
            mean_seed_time: 1_800.0,
            origin_seeds: 1,
            recalc_interval: 10.0,
            optimistic_floor: 0.1,
        }
    }
}

/// How the swarm's aggregate upload is divided among leechers at each
/// recalculation: the p2p piece-selection surface of live evolution.
///
/// Policies are [`Evolvable`], so [`run_swarm_evolving`] can retire one
/// and rebind its successor mid-swarm (e.g. switch to egalitarian
/// sharing when a flashcrowd peaks).
pub trait SharingPolicy: Evolvable + std::fmt::Debug + Send {
    /// Short display name (also the swap-plan key).
    fn name(&self) -> &'static str;

    /// Allocation weight of a leecher whose upload capacity is
    /// `peer_up`, under `config`.
    fn weight(&self, peer_up: f64, config: &SwarmConfig) -> f64;
}

/// BitTorrent's default: a peer's share grows with its own upload
/// contribution, plus the optimistic-unchoke floor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TitForTat;

impl SharingPolicy for TitForTat {
    fn name(&self) -> &'static str {
        "tit-for-tat"
    }

    fn weight(&self, peer_up: f64, config: &SwarmConfig) -> f64 {
        peer_up + config.optimistic_floor * config.bandwidth.up
    }
}

impl Evolvable for TitForTat {
    fn capsule_kind(&self) -> &'static str {
        "p2p.sharing.tit-for-tat"
    }

    fn capture(&self, _now: f64) -> Capsule {
        Capsule::new(self.capsule_kind(), self.capsule_version())
    }

    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        capsule.expect_kind(self.capsule_kind())
    }
}

/// Egalitarian sharing: every leecher weighs the same regardless of its
/// contribution (pure optimistic unchoke) — kind to asymmetric links,
/// vulnerable to free-riding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Egalitarian;

impl SharingPolicy for Egalitarian {
    fn name(&self) -> &'static str {
        "egalitarian"
    }

    fn weight(&self, _peer_up: f64, _config: &SwarmConfig) -> f64 {
        1.0
    }
}

impl Evolvable for Egalitarian {
    fn capsule_kind(&self) -> &'static str {
        "p2p.sharing.egalitarian"
    }

    fn capture(&self, _now: f64) -> Capsule {
        Capsule::new(self.capsule_kind(), self.capsule_version())
    }

    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        capsule.expect_kind(self.capsule_kind())
    }
}

/// Builds a sharing policy by its swap-plan name.
pub fn sharing_by_name(name: &str) -> Option<Box<dyn SharingPolicy>> {
    match name {
        "tit-for-tat" => Some(Box::new(TitForTat)),
        "egalitarian" => Some(Box::new(Egalitarian)),
        _ => None,
    }
}

/// The outcome of a swarm run.
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmResult {
    /// Completed downloads as `(join_time, download_duration)`.
    pub downloads: Vec<(f64, f64)>,
    /// Swarm-size samples `(time, leechers, seeds)`.
    pub size_samples: Vec<(f64, usize, usize)>,
    /// Peers that joined in total.
    pub joined: usize,
}

impl SwarmResult {
    /// Mean download duration.
    pub fn mean_download_time(&self) -> f64 {
        self.downloads.iter().map(|&(_, d)| d).sum::<f64>() / self.downloads.len().max(1) as f64
    }

    /// Mean download duration of peers joining within a window.
    pub fn mean_download_time_in(&self, from: f64, to: f64) -> f64 {
        let v: Vec<f64> = self
            .downloads
            .iter()
            .filter(|&&(j, _)| j >= from && j < to)
            .map(|&(_, d)| d)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PeerState {
    Leeching,
    Seeding,
}

#[derive(Debug, Clone, Copy)]
struct Peer {
    bw: Bandwidth,
    state: PeerState,
    remaining: f64,
    join_time: f64,
}

#[derive(Debug)]
enum Ev {
    Join { peer: u64, bw: Bandwidth },
    Recalc,
    SeedLeave { peer: u64 },
    End,
}

impl EventLabel for Ev {
    fn label(&self) -> &'static str {
        match self {
            Ev::Join { .. } => "join",
            Ev::Recalc => "recalc",
            Ev::SeedLeave { .. } => "seed_leave",
            Ev::End => "end",
        }
    }
}

struct SwarmModel {
    config: SwarmConfig,
    peers: BTreeMap<u64, Peer>,
    last_recalc: f64,
    downloads: Vec<(f64, f64)>,
    size_samples: Vec<(f64, usize, usize)>,
    joined: usize,
    horizon: f64,
    sharing: Box<dyn SharingPolicy>,
    swap_plan: SwapPlan,
    swap_log: Vec<SwapRecord>,
    recorder: Option<Recorder>,
}

impl SwarmModel {
    fn leechers(&self) -> usize {
        self.peers
            .values()
            .filter(|p| p.state == PeerState::Leeching)
            .count()
    }

    fn seeds(&self) -> usize {
        self.peers
            .values()
            .filter(|p| p.state == PeerState::Seeding)
            .count()
    }

    /// Advances all leechers by the elapsed interval under tit-for-tat
    /// allocation, returning peers that completed.
    fn advance(&mut self, now: f64) -> Vec<u64> {
        let dt = now - self.last_recalc;
        self.last_recalc = now;
        if dt <= 0.0 {
            return Vec::new();
        }
        let total_upload: f64 = self.peers.values().map(|p| p.bw.up).sum::<f64>()
            + self.config.origin_seeds as f64 * self.config.bandwidth.up * 4.0;
        let leecher_ids: Vec<u64> = self
            .peers
            .iter()
            .filter(|(_, p)| p.state == PeerState::Leeching)
            .map(|(&id, _)| id)
            .collect();
        if leecher_ids.is_empty() {
            return Vec::new();
        }
        // Sharing-policy weights (tit-for-tat by default: own upload
        // contribution plus the optimistic-unchoke floor).
        let weights: Vec<f64> = leecher_ids
            .iter()
            .map(|id| {
                let p = &self.peers[id];
                self.sharing.weight(p.bw.up, &self.config)
            })
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let mut completed = Vec::new();
        for (id, w) in leecher_ids.iter().zip(&weights) {
            let p = self.peers.get_mut(id).expect("leecher exists");
            let share = total_upload * w / weight_sum;
            let rate = share.min(p.bw.down);
            p.remaining -= rate * dt;
            if p.remaining <= 0.0 {
                completed.push(*id);
            }
        }
        completed
    }
}

impl Model for SwarmModel {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Join { peer, bw } => {
                let done = self.advance(ctx.now());
                self.complete(done, ctx);
                self.peers.insert(
                    peer,
                    Peer {
                        bw,
                        state: PeerState::Leeching,
                        remaining: self.config.file_size,
                        join_time: ctx.now(),
                    },
                );
                self.joined += 1;
                if let Some(rec) = &self.recorder {
                    rec.incr("swarm.joins");
                }
            }
            Ev::Recalc => {
                if let Some(spec) = self.swap_plan.due(ctx.now(), self.leechers() as f64) {
                    let label = swap_span_label(self.sharing.name(), &spec.to);
                    ctx.span_enter(&label);
                    let mut successor =
                        sharing_by_name(&spec.to).expect("plan validated at construction");
                    let h = handoff(
                        self.sharing.as_ref(),
                        successor.as_mut(),
                        &Identity,
                        ctx.now(),
                    )
                    .expect("sharing capsules are kind-only");
                    self.swap_log.push(SwapRecord {
                        time: ctx.now(),
                        from: self.sharing.name().to_string(),
                        to: successor.name().to_string(),
                        resumed: h.resumed,
                    });
                    self.sharing = successor;
                    ctx.span_exit(&label);
                }
                let done = self.advance(ctx.now());
                self.complete(done, ctx);
                self.size_samples
                    .push((ctx.now(), self.leechers(), self.seeds()));
                if let Some(rec) = &self.recorder {
                    rec.gauge_set("swarm.leechers", ctx.now(), self.leechers() as f64);
                    rec.gauge_set("swarm.seeds", ctx.now(), self.seeds() as f64);
                }
                if ctx.now() < self.horizon {
                    ctx.schedule_in(self.config.recalc_interval, Ev::Recalc);
                }
            }
            Ev::SeedLeave { peer } => {
                self.peers.remove(&peer);
            }
            Ev::End => ctx.stop(),
        }
    }
}

impl SwarmModel {
    fn complete(&mut self, done: Vec<u64>, ctx: &mut Ctx<Ev>) {
        for id in done {
            let p = self.peers.get_mut(&id).expect("completed peer exists");
            p.state = PeerState::Seeding;
            p.remaining = 0.0;
            let dl_time = ctx.now() - p.join_time;
            self.downloads.push((p.join_time, dl_time));
            if let Some(rec) = &self.recorder {
                rec.incr("swarm.completions");
                rec.observe("swarm.download_s", dl_time);
            }
            let seed_for = Exponential::with_mean(self.config.mean_seed_time).sample(ctx.rng());
            ctx.schedule_in(seed_for, Ev::SeedLeave { peer: id });
        }
    }
}

/// Runs a swarm with peers joining at the given times, all with the
/// configured bandwidth, until `horizon`.
pub fn run_swarm(config: SwarmConfig, join_times: &[f64], horizon: f64, seed: u64) -> SwarmResult {
    run_swarm_impl(config, join_times, horizon, seed, SwapPlan::none(), None).0
}

/// [`run_swarm`] with live sharing-policy evolution: peers join with
/// their own access links, the swarm starts under `initial`, and `plan`
/// executes against it (trigger metric: leecher count at each
/// recalculation — a flashcrowd peak). Returns the result and the swap
/// log; attach a `recorder` to see swaps as `evolve.swap(from->to)`
/// spans.
pub fn run_swarm_evolving(
    config: SwarmConfig,
    joins: &[(f64, Bandwidth)],
    horizon: f64,
    seed: u64,
    initial: &str,
    plan: SwapPlan,
    recorder: Option<&Recorder>,
) -> Result<(SwarmResult, Vec<SwapRecord>), String> {
    let sharing =
        sharing_by_name(initial).ok_or_else(|| format!("unknown sharing policy '{initial}'"))?;
    for spec in plan.specs() {
        if sharing_by_name(&spec.to).is_none() {
            return Err(format!("unknown sharing policy '{}' in swap plan", spec.to));
        }
    }
    if let Some(rec) = recorder {
        rec.set_run_info("p2p.swarm", seed, config_digest(&config));
    }
    Ok(run_swarm_with(
        config,
        joins,
        horizon,
        seed,
        sharing,
        plan,
        recorder.cloned(),
    ))
}

/// [`run_swarm`] with a telemetry recorder attached: kernel events are
/// traced, and the swarm records `swarm.joins` / `swarm.completions`
/// counters, `swarm.leechers` / `swarm.seeds` gauges, and the
/// `swarm.download_s` tally. The recorder never influences the run:
/// results equal an untraced run with the same seed.
pub fn run_swarm_traced(
    config: SwarmConfig,
    join_times: &[f64],
    horizon: f64,
    seed: u64,
    recorder: &Recorder,
) -> SwarmResult {
    recorder.set_run_info("p2p.swarm", seed, config_digest(&config));
    run_swarm_impl(
        config,
        join_times,
        horizon,
        seed,
        SwapPlan::none(),
        Some(recorder.clone()),
    )
    .0
}

fn run_swarm_impl(
    config: SwarmConfig,
    join_times: &[f64],
    horizon: f64,
    seed: u64,
    plan: SwapPlan,
    recorder: Option<Recorder>,
) -> (SwarmResult, Vec<SwapRecord>) {
    let joins: Vec<(f64, Bandwidth)> = join_times.iter().map(|&t| (t, config.bandwidth)).collect();
    run_swarm_with(
        config,
        &joins,
        horizon,
        seed,
        Box::new(TitForTat),
        plan,
        recorder,
    )
}

fn run_swarm_with(
    config: SwarmConfig,
    joins: &[(f64, Bandwidth)],
    horizon: f64,
    seed: u64,
    sharing: Box<dyn SharingPolicy>,
    plan: SwapPlan,
    recorder: Option<Recorder>,
) -> (SwarmResult, Vec<SwapRecord>) {
    let model = SwarmModel {
        config,
        peers: BTreeMap::new(),
        last_recalc: 0.0,
        downloads: Vec::new(),
        size_samples: Vec::new(),
        joined: 0,
        horizon,
        sharing,
        swap_plan: plan,
        swap_log: Vec::new(),
        recorder: recorder.clone(),
    };
    // Every join is scheduled up front; pre-size the event queue so the
    // fill phase never reallocates.
    let mut sim = Simulation::with_capacity(model, seed, joins.len() + 2);
    if let Some(rec) = recorder {
        sim = sim.with_tracer(rec);
    }
    for (i, &(t, bw)) in joins.iter().enumerate() {
        sim.schedule(t, Ev::Join { peer: i as u64, bw });
    }
    sim.schedule(0.0, Ev::Recalc);
    sim.schedule(horizon, Ev::End);
    sim.run();
    let m = sim.into_model();
    (
        SwarmResult {
            downloads: m.downloads,
            size_samples: m.size_samples,
            joined: m.joined,
        },
        m.swap_log,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SwarmConfig {
        SwarmConfig {
            file_size: 10e6,
            bandwidth: Bandwidth::adsl(100e3, 8.0),
            mean_seed_time: 600.0,
            origin_seeds: 1,
            recalc_interval: 5.0,
            optimistic_floor: 0.1,
        }
    }

    #[test]
    fn lone_peer_downloads_from_origin() {
        let r = run_swarm(small_config(), &[0.0], 50_000.0, 1);
        assert_eq!(r.downloads.len(), 1);
        let (_, d) = r.downloads[0];
        // Origin seed uploads 4× peer up = 400 KB/s; 10 MB -> ~25 s
        // (quantized by the 5 s recalc).
        assert!((20.0..=60.0).contains(&d), "download time {d}");
    }

    #[test]
    fn swarm_scales_with_peers() {
        // BitTorrent's promise: more peers bring more capacity, so mean
        // download time stays bounded as the swarm grows.
        let few: Vec<f64> = (0..5).map(|i| i as f64 * 10.0).collect();
        let many: Vec<f64> = (0..50).map(|i| i as f64 * 1.0).collect();
        let rf = run_swarm(small_config(), &few, 100_000.0, 2);
        let rm = run_swarm(small_config(), &many, 100_000.0, 2);
        assert_eq!(rf.downloads.len(), 5);
        assert_eq!(rm.downloads.len(), 50);
        assert!(
            rm.mean_download_time() < rf.mean_download_time() * 10.0,
            "swarm failed to scale: few {} many {}",
            rf.mean_download_time(),
            rm.mean_download_time()
        );
    }

    #[test]
    fn download_capacity_caps_speed() {
        // A symmetric fast swarm vs one with tiny download caps.
        let mut fast = small_config();
        fast.bandwidth = Bandwidth::symmetric(1e6);
        let mut capped = small_config();
        capped.bandwidth = Bandwidth {
            up: 1e6,
            down: 50e3,
        };
        let joins: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let rf = run_swarm(fast, &joins, 200_000.0, 3);
        let rc = run_swarm(capped, &joins, 200_000.0, 3);
        assert!(rf.mean_download_time() < rc.mean_download_time());
    }

    #[test]
    fn seeds_appear_then_leave() {
        let r = run_swarm(small_config(), &[0.0, 1.0, 2.0], 100_000.0, 4);
        let max_seeds = r.size_samples.iter().map(|&(_, _, s)| s).max().unwrap();
        let final_seeds = r.size_samples.last().unwrap().2;
        assert!(max_seeds >= 1);
        assert_eq!(final_seeds, 0, "seeds should eventually leave");
    }

    #[test]
    fn deterministic() {
        let joins = [0.0, 5.0, 9.0];
        let a = run_swarm(small_config(), &joins, 50_000.0, 7);
        let b = run_swarm(small_config(), &joins, 50_000.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_records() {
        let joins = [0.0, 5.0, 9.0];
        let plain = run_swarm(small_config(), &joins, 50_000.0, 7);
        let rec = Recorder::new();
        let traced = run_swarm_traced(small_config(), &joins, 50_000.0, 7, &rec);
        assert_eq!(plain, traced, "tracing changed the run");
        assert_eq!(rec.counter("swarm.joins"), 3);
        assert_eq!(
            rec.counter("swarm.completions"),
            traced.downloads.len() as u64
        );
        assert_eq!(
            rec.tally("swarm.download_s").map_or(0, |t| t.len()),
            traced.downloads.len()
        );
        assert_eq!(rec.dispatches("join"), 3);
        let m = rec.manifest();
        assert_eq!(m.model, "p2p.swarm");
        assert_eq!(m.seed, 7);
        assert!(m.events_dispatched > 0);
    }

    fn mixed_joins(n: usize, gap: f64) -> Vec<(f64, Bandwidth)> {
        (0..n)
            .map(|i| {
                let bw = if i % 2 == 0 {
                    Bandwidth::adsl(100e3, 8.0)
                } else {
                    Bandwidth::symmetric(400e3)
                };
                (i as f64 * gap, bw)
            })
            .collect()
    }

    #[test]
    fn identity_swap_is_observationally_free() {
        let joins = mixed_joins(10, 5.0);
        let baseline = run_swarm_evolving(
            small_config(),
            &joins,
            50_000.0,
            7,
            "tit-for-tat",
            SwapPlan::none(),
            None,
        )
        .unwrap();
        let plan = SwapPlan::parse("tit-for-tat@100").unwrap();
        let swapped = run_swarm_evolving(
            small_config(),
            &joins,
            50_000.0,
            7,
            "tit-for-tat",
            plan,
            None,
        )
        .unwrap();
        assert_eq!(swapped.1.len(), 1, "swap must fire");
        assert!(swapped.1[0].resumed, "same-kind swap must resume");
        assert_eq!(baseline.0, swapped.0, "identity swap changed the swarm");
        assert!(baseline.1.is_empty());
    }

    #[test]
    fn evolving_with_no_plan_equals_plain_run() {
        // The refactored sharing-policy path is byte-compatible with the
        // historical inline tit-for-tat expression.
        let joins = [0.0, 5.0, 9.0];
        let plain = run_swarm(small_config(), &joins, 50_000.0, 7);
        let mixed: Vec<(f64, Bandwidth)> = joins
            .iter()
            .map(|&t| (t, small_config().bandwidth))
            .collect();
        let (evolving, log) = run_swarm_evolving(
            small_config(),
            &mixed,
            50_000.0,
            7,
            "tit-for-tat",
            SwapPlan::none(),
            None,
        )
        .unwrap();
        assert_eq!(plain, evolving);
        assert!(log.is_empty());
    }

    #[test]
    fn flashcrowd_peak_triggers_sharing_swap_and_changes_downloads() {
        // A dense join wave builds the leecher population past the
        // threshold; the swarm then flips to egalitarian sharing, which
        // reallocates capacity toward slow uploaders.
        let joins = mixed_joins(24, 2.0);
        let (baseline, _) = run_swarm_evolving(
            small_config(),
            &joins,
            100_000.0,
            7,
            "tit-for-tat",
            SwapPlan::none(),
            None,
        )
        .unwrap();
        let plan = SwapPlan::parse("egalitarian@peak10").unwrap();
        let (swapped, log) = run_swarm_evolving(
            small_config(),
            &joins,
            100_000.0,
            7,
            "tit-for-tat",
            plan,
            None,
        )
        .unwrap();
        assert_eq!(log.len(), 1, "the flashcrowd must exceed 10 leechers");
        assert_eq!(log[0].from, "tit-for-tat");
        assert_eq!(log[0].to, "egalitarian");
        assert!(!log[0].resumed, "cross-kind swap starts fresh");
        assert_eq!(baseline.downloads.len(), swapped.downloads.len());
        assert_ne!(
            baseline.downloads, swapped.downloads,
            "egalitarian sharing must reallocate download times"
        );
    }

    #[test]
    fn traced_swap_appears_as_span_and_leaves_events_identical() {
        let joins = mixed_joins(10, 5.0);
        let base_rec = Recorder::new();
        run_swarm_evolving(
            small_config(),
            &joins,
            50_000.0,
            7,
            "tit-for-tat",
            SwapPlan::none(),
            Some(&base_rec),
        )
        .unwrap();
        let swap_rec = Recorder::new();
        let plan = SwapPlan::parse("tit-for-tat@100").unwrap();
        run_swarm_evolving(
            small_config(),
            &joins,
            50_000.0,
            7,
            "tit-for-tat",
            plan,
            Some(&swap_rec),
        )
        .unwrap();
        let strip = |rec: &Recorder| -> Vec<String> {
            rec.trace()
                .into_iter()
                .filter(|r| !r.label.starts_with("evolve.swap("))
                .map(|r| r.to_json())
                .collect()
        };
        assert_eq!(strip(&base_rec), strip(&swap_rec));
        assert_eq!(
            swap_rec
                .trace()
                .iter()
                .filter(|r| r.label == "evolve.swap(tit-for-tat->tit-for-tat)")
                .count(),
            2
        );
    }

    #[test]
    fn unknown_sharing_policies_are_rejected_up_front() {
        let joins = mixed_joins(2, 5.0);
        assert!(run_swarm_evolving(
            small_config(),
            &joins,
            1_000.0,
            1,
            "nope",
            SwapPlan::none(),
            None
        )
        .is_err());
        let plan = SwapPlan::parse("nope@10").unwrap();
        assert!(run_swarm_evolving(
            small_config(),
            &joins,
            1_000.0,
            1,
            "tit-for-tat",
            plan,
            None
        )
        .is_err());
    }
}
