//! A minimal HTTP/1.1 dialect — exactly the subset the exploration
//! server speaks, written against `std` only.
//!
//! Requests are `GET` with a path and query string; responses are
//! either fixed bodies (`Content-Length`) or live streams
//! (`Transfer-Encoding: chunked`, via [`ChunkedWriter`]). Parsing is
//! deliberately strict: a malformed request line or an oversized
//! header block is a `400`, never a guess — the server's determinism
//! story starts with refusing ambiguous input.

use std::io::{BufRead, Write};

/// Upper bound on the request line plus headers, to keep a misbehaving
/// client from growing server memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request head (this dialect has no request bodies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Decoded path without the query string, e.g. `/run`.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in wire order.
    pub query: Vec<(String, String)>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before a request line arrived.
    Closed,
    /// Transport failure mid-request.
    Io(std::io::Error),
    /// Syntactically invalid request — answer 400 and hang up.
    Malformed(String),
}

/// Reads one request head from `reader`.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut head_bytes = 0;
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Closed),
        Ok(n) => head_bytes += n,
        Err(e) => return Err(ReadError::Io(e)),
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v.to_string()),
        _ => return Err(ReadError::Malformed(format!("bad request line: {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    // Headers: we only act on Connection; everything else is skipped.
    let mut keep_alive = version == "HTTP/1.1";
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(ReadError::Malformed("eof inside headers".to_string())),
            Ok(n) => head_bytes += n,
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        } else {
            return Err(ReadError::Malformed(format!("bad header: {header:?}")));
        }
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        keep_alive,
    })
}

/// Decodes a query string into `key=value` pairs, applying `%XX` and
/// `+` decoding to both halves. Keys without `=` get an empty value.
pub fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass
/// through literally, which keeps decoding total (no error path).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response. `extra_headers` are
/// emitted verbatim after the standard ones.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// Writes the head of a chunked streaming response; follow with a
/// [`ChunkedWriter`] over the same stream.
pub fn write_chunked_head<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n",
        reason(status)
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.flush()
}

/// A `Transfer-Encoding: chunked` body encoder: every `write` becomes
/// one chunk, so each flushed trace line reaches the client framed and
/// parseable immediately.
pub struct ChunkedWriter<W: Write> {
    inner: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Wraps `inner`, which must already carry the chunked head.
    pub fn new(inner: W) -> Self {
        ChunkedWriter {
            inner,
            finished: false,
        }
    }

    /// Writes the terminating zero-length chunk.
    pub fn finish(mut self) -> std::io::Result<()> {
        self.finished = true;
        self.inner.write_all(b"0\r\n\r\n")?;
        self.inner.flush()
    }
}

impl<W: Write> Write for ChunkedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_full_request() {
        let r = parse("GET /run?domain=graph&n=400 HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/run");
        assert_eq!(
            r.query,
            vec![
                ("domain".to_string(), "graph".to_string()),
                ("n".to_string(), "400".to_string())
            ]
        );
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_is_honored() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ReadError::Closed)));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn percent_decoding_round_trips() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%5B114%5D"), "[114]");
        assert_eq!(percent_decode("100%"), "100%", "dangling escape is literal");
        assert_eq!(percent_decode("%zz"), "%zz", "bad hex is literal");
    }

    #[test]
    fn chunked_writer_frames_every_write() {
        let mut buf = Vec::new();
        {
            let mut w = ChunkedWriter::new(&mut buf);
            w.write_all(b"hello\n").unwrap();
            w.write_all(b"world").unwrap();
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "6\r\nhello\n\r\n5\r\nworld\r\n0\r\n\r\n");
    }

    #[test]
    fn responses_carry_length_and_extra_headers() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            200,
            "application/json",
            &[("X-Atlarge-Cache", "hit")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("X-Atlarge-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
