//! Side-by-side equivalence: [`CalendarQueue`] vs the [`BinaryHeapFel`]
//! reference.
//!
//! The calendar queue may only replace the heap because it is *provably
//! indistinguishable*: for any schedule — including the adversarial
//! ones below (heavy ties, bimodal far-future bands, resize-triggering
//! skew, nine decades of time scale, interleaved push/pop) — both
//! backends pop the byte-for-byte identical
//! `(time, seq, parent, event)` sequence. Every domain experiment's
//! campaign metrics are a pure function of that sequence, so this suite
//! plus `campaign_engine`'s two-run regression test is what licenses
//! the kernel swap without re-validating seven domains event by event.

use atlarge_des::calendar::CalendarQueue;
use atlarge_des::fel::{BinaryHeapFel, FutureEventList};
use atlarge_des::queue::EventQueue;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One step of a queue program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(f64),
    Pop,
    PopUntil(f64),
}

type Popped = (f64, u64, Option<u64>, u32);

/// Runs a program on a fresh queue with the given backend, recording
/// every pop result (including `None`s — their positions must match
/// too), then drains the remainder.
fn run_program<F: FutureEventList<u32>>(ops: &[Op]) -> (Vec<Option<Popped>>, usize) {
    let mut q: EventQueue<u32, F> = EventQueue::default();
    let mut out = Vec::new();
    let mut payload: u32 = 0;
    for &op in ops {
        match op {
            Op::Push(t) => {
                // Deterministic causal parents so the `parent` slot is
                // exercised by the comparison as well.
                let parent = if payload.is_multiple_of(3) {
                    None
                } else {
                    Some(u64::from(payload / 2))
                };
                q.push_from(t, parent, payload);
                payload += 1;
            }
            Op::Pop => out.push(q.pop_entry()),
            Op::PopUntil(h) => out.push(q.pop_entry_until(h)),
        }
    }
    let leftover = q.len();
    while let Some(e) = q.pop_entry() {
        out.push(Some(e));
    }
    (out, leftover)
}

/// Asserts both backends produce identical pop streams for `ops`.
fn assert_backends_agree(ops: &[Op]) {
    let (calendar, cal_len) = run_program::<CalendarQueue<u32>>(ops);
    let (heap, heap_len) = run_program::<BinaryHeapFel<u32>>(ops);
    assert_eq!(cal_len, heap_len, "len() diverged");
    assert_eq!(
        calendar, heap,
        "calendar and heap backends popped different sequences"
    );
}

#[test]
fn equal_time_flood_with_interleaved_pops() {
    // 10k events on one instant, pops interleaved every few pushes:
    // the all-in-one-bucket worst case, FIFO carried purely by seq.
    let mut ops = Vec::new();
    for i in 0..10_000u32 {
        ops.push(Op::Push(42.0));
        if i % 7 == 3 {
            ops.push(Op::Pop);
        }
        if i % 11 == 5 {
            ops.push(Op::PopUntil(42.0));
        }
    }
    assert_backends_agree(&ops);
}

#[test]
fn steady_hold_churn_through_rebuilds() {
    // A classic hold pattern grown to 50k pending: pop one, push one a
    // deterministic pseudo-exponential step ahead. Crosses every grow
    // watermark; the closing drain crosses every shrink watermark.
    let mut ops = Vec::new();
    let mut x: u64 = 0x9e3779b97f4a7c15;
    let mut now = 0.0f64;
    for i in 0..50_000u32 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        now += u * 0.001;
        ops.push(Op::Push(now + u * 10.0));
        if i > 1000 && i % 2 == 0 {
            ops.push(Op::Pop);
        }
    }
    assert_backends_agree(&ops);
}

proptest! {
    /// Heavy ties: times quantized to quarters so most pushes collide,
    /// with pops and horizon-pops interleaved.
    #[test]
    fn prop_tie_heavy_schedules_agree(
        raw in proptest::collection::vec((0u8..5, 0u32..40), 1..400),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t)| {
                let time = f64::from(t) / 4.0;
                match sel {
                    0..=2 => Op::Push(time),
                    3 => Op::Pop,
                    _ => Op::PopUntil(time + 0.25),
                }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Bimodal times: a near mode in [0, 1) and a far mode around 1e6,
    /// which lives in the calendar's overflow band and forces window
    /// advances mid-schedule.
    #[test]
    fn prop_bimodal_schedules_agree(
        raw in proptest::collection::vec((0u8..6, 0.0f64..1.0, 0u8..2), 1..300),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t, mode)| {
                let time = if mode == 0 { t } else { 1e6 + t };
                match sel {
                    0..=2 => Op::Push(time),
                    3 => Op::Pop,
                    4 => Op::PopUntil(t),
                    _ => Op::PopUntil(1e6 + t),
                }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Resize-triggering skew: push-heavy programs long enough to cross
    /// several grow watermarks, with quartically-skewed times (gap
    /// distribution designed to fool a head-sampled width estimate),
    /// then a full drain across the shrink watermarks.
    #[test]
    fn prop_skewed_growth_schedules_agree(
        raw in proptest::collection::vec((0u8..5, 0.0f64..1.0), 1..1500),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, t)| {
                let time = t * t * t * t * 5e3;
                if sel < 4 { Op::Push(time) } else { Op::Pop }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Nine decades of time scale (1e-9..1e9) in one schedule.
    #[test]
    fn prop_nine_decade_schedules_agree(
        raw in proptest::collection::vec((0u8..4, 0u8..19, 1.0f64..10.0), 1..300),
    ) {
        let ops: Vec<Op> = raw
            .iter()
            .map(|&(sel, exp, frac)| {
                let time = 1e-9 * 10f64.powi(i32::from(exp)) * frac;
                if sel < 3 { Op::Push(time) } else { Op::Pop }
            })
            .collect();
        assert_backends_agree(&ops);
    }

    /// Interleaved push/pop (not just push-all-pop-all) preserves the
    /// strict `(time, seq)` order: every pop returns exactly the
    /// minimum of the queue's current contents, checked against a
    /// BTreeSet reference model. Non-negative finite f64 bit patterns
    /// order like the numbers, so the model key is exact.
    #[test]
    fn prop_interleaved_pop_is_always_current_min(
        raw in proptest::collection::vec((0u8..3, 0.0f64..100.0), 1..600),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut payload = 0u32;
        for &(sel, t) in &raw {
            if sel < 2 {
                let time = (t * 8.0).round() / 8.0;
                let id = q.push(time, payload);
                model.insert((time.to_bits(), id));
                payload += 1;
            } else {
                let got = q.pop_entry().map(|(time, id, _, _)| (time.to_bits(), id));
                let want = model.iter().next().copied();
                prop_assert_eq!(got, want, "pop is not the current minimum");
                if let Some(k) = want {
                    model.remove(&k);
                }
            }
        }
        while let Some((time, id, _, _)) = q.pop_entry() {
            let want = model.iter().next().copied();
            prop_assert_eq!(Some((time.to_bits(), id)), want);
            if let Some(k) = want {
                model.remove(&k);
            }
        }
        prop_assert!(model.is_empty(), "queue lost events");
    }
}

// ---------------------------------------------------------------------------
// Sharded kernel vs the sealed single-queue backend.
//
// Two claims, proved separately:
//
// 1. *Shard-count invariance, byte-for-byte.* Under a tie-flooded,
//    RNG-driven, span-instrumented storm workload, the merged
//    `(time, seq, parent, entity)` dispatch log and the full replayed
//    tracer stream of `ShardedSimulation` are byte-identical at 1, 2,
//    and 8 shards, across both sealed FEL backends and thread counts.
//    The 1-shard configuration *is* the sealed single-queue backend —
//    a single `CalendarQueue`/`BinaryHeapFel` popped in `(time, seq)`
//    order with an infinite horizon — so this pins every sharded
//    configuration to the reference pop order.
//
// 2. *Engine equivalence.* On a tie-free chain workload implemented
//    twice — once as a sealed `Model`, once as a `LogicalProcess` —
//    the sealed `Simulation` and the sharded kernel dispatch the same
//    `(time, entity)` sequence and reach identical final states.
//    (Event *ids* intentionally differ: the sealed engine numbers
//    events with a dense global counter, the sharded kernel with
//    shard-invariant per-entity lanes.)
// ---------------------------------------------------------------------------

use atlarge_des::shard::{
    EventRecord, LogicalProcess, Routed, ShardCtx, ShardedSimulation, StaticPartition,
};
use atlarge_des::sim::{Ctx, Model, Simulation};
use atlarge_telemetry::recorder::{Recorder, TraceRecord};
use atlarge_telemetry::tracer::EventLabel;
use rand::Rng;

const STORM_NODES: u32 = 12;
const STORM_LOOKAHEAD: f64 = 0.25;

#[derive(Debug, Clone)]
struct Pulse {
    hops: u32,
}

impl EventLabel for Pulse {
    fn label(&self) -> &'static str {
        "pulse"
    }
}

/// A tie-flooding storm node: every delay is a multiple of the 0.25
/// lookahead, so cross-shard events collide on the same instants
/// constantly and ordering falls to the lane seqs alone. Draws from the
/// per-entity RNG stream and opens a span on every burst, so RNG
/// stability and span replay are exercised too.
struct StormNode {
    n: u32,
    acc: u64,
}

impl LogicalProcess for StormNode {
    type Event = Pulse;

    fn handle(&mut self, ev: Pulse, ctx: &mut ShardCtx<'_, Pulse>) {
        let roll = ctx.rng().gen::<u64>();
        self.acc = self
            .acc
            .wrapping_mul(0x100000001b3)
            .wrapping_add(roll ^ ctx.event_id());
        if ev.hops == 0 {
            return;
        }
        let dt = STORM_LOOKAHEAD * ((roll % 8) + 1) as f64;
        let target = ((u64::from(ctx.entity()) + 1 + (roll >> 8) % u64::from(self.n - 1))
            % u64::from(self.n)) as u32;
        ctx.send_in(dt, target, Pulse { hops: ev.hops - 1 });
        if roll % 3 == 0 {
            ctx.span_enter("burst");
            ctx.schedule_in(
                STORM_LOOKAHEAD * (((roll >> 16) % 4) + 1) as f64,
                Pulse { hops: ev.hops / 2 },
            );
            ctx.span_exit("burst");
        }
    }
}

fn storm_nodes() -> Vec<StormNode> {
    (0..STORM_NODES)
        .map(|_| StormNode {
            n: STORM_NODES,
            acc: 0,
        })
        .collect()
}

/// Serializes a merged event log into the byte string the equivalence
/// claims are stated over.
fn log_bytes(log: &[EventRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(log.len() * 28);
    for r in log {
        out.extend_from_slice(&r.time.to_le_bytes());
        out.extend_from_slice(&r.id.to_le_bytes());
        out.extend_from_slice(&r.parent.map_or(u64::MAX, |p| p).to_le_bytes());
        out.extend_from_slice(&r.entity.to_le_bytes());
    }
    out
}

/// Runs the storm on `F`-backed shards and returns (log bytes, final
/// node states, replayed trace, events processed).
fn run_storm<F>(shards: usize, threads: usize) -> (Vec<u8>, Vec<u64>, Vec<TraceRecord>, u64)
where
    F: FutureEventList<Routed<Pulse>> + Send,
{
    let part = StaticPartition::round_robin(STORM_NODES as usize, shards, STORM_LOOKAHEAD);
    let rec = Recorder::new();
    let mut sim: ShardedSimulation<_, _, F> =
        ShardedSimulation::new(part, storm_nodes(), 0xA71A6E).expect("valid partition");
    sim = sim
        .with_event_log()
        .with_threads(threads)
        .with_tracer(rec.clone());
    for e in 0..STORM_NODES {
        sim.schedule(f64::from(e % 3) * STORM_LOOKAHEAD, e, Pulse { hops: 9 });
    }
    sim.run();
    let bytes = log_bytes(&sim.take_event_log());
    let processed = sim.processed();
    let states = sim.into_lps().into_iter().map(|n| n.acc).collect();
    (bytes, states, rec.trace(), processed)
}

#[test]
fn sharded_pop_order_is_byte_identical_at_1_2_8_shards() {
    // The reference: the sealed single-queue backend (one calendar
    // queue, one thread, infinite horizon).
    let reference = run_storm::<CalendarQueue<Routed<Pulse>>>(1, 1);
    assert!(
        reference.3 > 200,
        "storm too small to be meaningful: {} events",
        reference.3
    );
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 4] {
            let cal = run_storm::<CalendarQueue<Routed<Pulse>>>(shards, threads);
            assert_eq!(
                cal, reference,
                "calendar-backed {shards}-shard/{threads}-thread run diverged from reference"
            );
            let heap = run_storm::<BinaryHeapFel<Routed<Pulse>>>(shards, threads);
            assert_eq!(
                heap, reference,
                "heap-backed {shards}-shard/{threads}-thread run diverged from reference"
            );
        }
    }
}

// -- Engine equivalence on a tie-free chain ---------------------------------

/// Delay of the chain hop leaving `entity` with `hops` remaining:
/// exact multiples of 1/512 in [0.25, 1.25), so times are reproducible
/// across engines and never collide (a single chain is strictly
/// monotone).
fn chain_dt(entity: u32, hops: u32) -> f64 {
    0.25 + ((u64::from(entity) * 31 + u64::from(hops) * 17) % 512) as f64 / 512.0
}

fn chain_mix(acc: u64, time: f64, hops: u32) -> u64 {
    acc.wrapping_mul(31)
        .wrapping_add(time.to_bits() ^ u64::from(hops))
}

const CHAIN_NODES: u32 = 16;

#[derive(Debug, Clone)]
struct GlobalHop {
    entity: u32,
    hops: u32,
}

/// The sealed-engine implementation: one model owning every node.
struct GlobalRing {
    state: Vec<u64>,
    log: Vec<(f64, u32)>,
}

impl Model for GlobalRing {
    type Event = GlobalHop;

    fn handle(&mut self, ev: GlobalHop, ctx: &mut Ctx<GlobalHop>) {
        self.log.push((ctx.now(), ev.entity));
        if let Some(s) = self.state.get_mut(ev.entity as usize) {
            *s = chain_mix(*s, ctx.now(), ev.hops);
        }
        if ev.hops > 0 {
            ctx.schedule_in(
                chain_dt(ev.entity, ev.hops),
                GlobalHop {
                    entity: (ev.entity + 1) % CHAIN_NODES,
                    hops: ev.hops - 1,
                },
            );
        }
    }
}

#[derive(Debug, Clone)]
struct Hop {
    hops: u32,
}

/// The sharded implementation of the same chain: each node is its own
/// logical process.
struct RingLp {
    id: u32,
    state: u64,
}

impl LogicalProcess for RingLp {
    type Event = Hop;

    fn handle(&mut self, ev: Hop, ctx: &mut ShardCtx<'_, Hop>) {
        self.state = chain_mix(self.state, ctx.now(), ev.hops);
        if ev.hops > 0 {
            ctx.send_in(
                chain_dt(self.id, ev.hops),
                (self.id + 1) % CHAIN_NODES,
                Hop { hops: ev.hops - 1 },
            );
        }
    }
}

#[test]
fn sharded_kernel_matches_the_sealed_engine_on_a_tie_free_chain() {
    let mut sealed = Simulation::new(
        GlobalRing {
            state: vec![0; CHAIN_NODES as usize],
            log: Vec::new(),
        },
        7,
    );
    sealed.schedule(
        0.0,
        GlobalHop {
            entity: 0,
            hops: 300,
        },
    );
    sealed.run();
    let want_log = sealed.model().log.clone();
    let want_state = sealed.model().state.clone();
    assert_eq!(want_log.len(), 301);

    for shards in [1usize, 2, 8] {
        let part = StaticPartition::block(CHAIN_NODES as usize, shards, 0.25);
        let nodes = (0..CHAIN_NODES).map(|id| RingLp { id, state: 0 }).collect();
        let mut sim: ShardedSimulation<_, _> =
            ShardedSimulation::new(part, nodes, 7).expect("valid partition");
        sim = sim.with_event_log();
        sim.schedule(0.0, 0, Hop { hops: 300 });
        sim.run();
        let got_log: Vec<(f64, u32)> = sim
            .take_event_log()
            .iter()
            .map(|r| (r.time, r.entity))
            .collect();
        assert_eq!(
            got_log, want_log,
            "{shards}-shard dispatch sequence diverged from the sealed engine"
        );
        let got_state: Vec<u64> = sim.into_lps().into_iter().map(|n| n.state).collect();
        assert_eq!(got_state, want_state);
    }
}
