//! The Basic Design Cycle and Overall Process (Figure 8, §3.5).
//!
//! The BDC is an eight-element iterative loop. Two properties distinguish
//! it from rigid stage-gate processes, and both are first-class here:
//! *every stage can be skipped in any iteration* (tailoring each iteration
//! to the remaining problem), and the loop stops against an explicit set of
//! *five stopping criteria* — satisficing, portfolio, systematic design,
//! design-space exhaustion, or budget exhaustion (which is why "BDC can,
//! but does not guarantee success").
//!
//! The Overall Process is hierarchical: complex stages (implementation,
//! experimental analysis, dissemination) expand into nested BDCs, which
//! [`OverallProcess`] composes and reports on.

use std::collections::BTreeMap;
use std::fmt;

/// The eight elements of the Basic Design Cycle (§3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BdcStage {
    /// (1) Formulate requirements.
    FormulateRequirements,
    /// (2) Understand alternatives.
    UnderstandAlternatives,
    /// (3) Bootstrap the creative process.
    BootstrapCreative,
    /// (4) High-level and low-level design.
    Design,
    /// (5) Implementation: analysis code, simulators, prototypes.
    Implementation,
    /// (6) Conceptual analysis of the design.
    ConceptualAnalysis,
    /// (7) Experimental analysis of the design.
    ExperimentalAnalysis,
    /// (8) Result summarizing and dissemination.
    Dissemination,
}

impl BdcStage {
    /// All stages in loop order.
    pub fn all() -> [BdcStage; 8] {
        [
            BdcStage::FormulateRequirements,
            BdcStage::UnderstandAlternatives,
            BdcStage::BootstrapCreative,
            BdcStage::Design,
            BdcStage::Implementation,
            BdcStage::ConceptualAnalysis,
            BdcStage::ExperimentalAnalysis,
            BdcStage::Dissemination,
        ]
    }

    /// The paper's 1-based element number.
    pub fn number(&self) -> u8 {
        BdcStage::all()
            .iter()
            .position(|s| s == self)
            .expect("stage is in the canonical list") as u8
            + 1
    }

    /// Whether Figure 8 marks this stage as expandable into its own BDC.
    pub fn expandable(&self) -> bool {
        matches!(
            self,
            BdcStage::Implementation | BdcStage::ExperimentalAnalysis | BdcStage::Dissemination
        )
    }
}

impl fmt::Display for BdcStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BdcStage::FormulateRequirements => "formulate requirements",
            BdcStage::UnderstandAlternatives => "understand alternatives",
            BdcStage::BootstrapCreative => "bootstrap creative process",
            BdcStage::Design => "high/low-level design",
            BdcStage::Implementation => "implementation",
            BdcStage::ConceptualAnalysis => "conceptual analysis",
            BdcStage::ExperimentalAnalysis => "experimental analysis",
            BdcStage::Dissemination => "summarize and disseminate",
        };
        f.write_str(name)
    }
}

/// The five stopping criteria of §3.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingCriterion {
    /// (1) One answer that satisfices (quality ≥ threshold).
    Satisfice {
        /// The satisficing quality threshold.
        threshold: f64,
    },
    /// (2) A few answers forming a portfolio for a human reviewer.
    Portfolio {
        /// How many satisficing answers the portfolio needs.
        count: usize,
        /// The satisficing quality threshold.
        threshold: f64,
    },
    /// (3) Many answers forming a systematic design.
    Systematic {
        /// How many satisficing answers count as systematic.
        count: usize,
        /// The satisficing quality threshold.
        threshold: f64,
    },
    /// (4) All answers: design-space exhaustion (signalled by the model).
    Exhaustion,
    /// (5) Out of time or other resources: an iteration budget.
    Budget {
        /// Maximum iterations before stopping.
        iterations: usize,
    },
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A satisficing answer was found (criterion 1).
    Satisficed,
    /// The portfolio filled (criterion 2).
    PortfolioComplete,
    /// The systematic-design quota filled (criterion 3).
    SystematicComplete,
    /// The space was exhausted (criterion 4).
    SpaceExhausted,
    /// The budget ran out (criterion 5) — no guarantee of success.
    BudgetExhausted,
}

/// What a stage did in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutcome {
    /// The stage's action ran.
    Executed,
    /// The stage was skipped this iteration.
    Skipped,
}

/// Per-iteration context handed to stage actions: where candidate designs
/// and exhaustion signals are reported.
#[derive(Debug, Default)]
pub struct CycleCtx {
    iteration: usize,
    qualities: Vec<f64>,
    exhausted: bool,
    nested_reports: Vec<CycleReport>,
}

impl CycleCtx {
    /// Current iteration (0-based).
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Reports a candidate design of the given quality.
    ///
    /// # Panics
    ///
    /// Panics unless quality lies in `[0, 1]`.
    pub fn report_design(&mut self, quality: f64) {
        assert!((0.0..=1.0).contains(&quality), "quality in [0,1]");
        self.qualities.push(quality);
    }

    /// Signals that the design space has been exhausted (criterion 4).
    pub fn report_exhausted(&mut self) {
        self.exhausted = true;
    }

    /// Qualities of all designs reported so far.
    pub fn qualities(&self) -> &[f64] {
        &self.qualities
    }

    /// Attaches a nested BDC's report (hierarchical Overall Process).
    pub fn attach_nested(&mut self, report: CycleReport) {
        self.nested_reports.push(report);
    }
}

/// The record of one full BDC run.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleReport {
    /// Why the loop stopped.
    pub reason: StopReason,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-(iteration, stage) outcomes in execution order.
    pub stage_log: Vec<(usize, BdcStage, StageOutcome)>,
    /// Qualities of all reported designs.
    pub qualities: Vec<f64>,
    /// Reports of nested BDCs run by expandable stages.
    pub nested: Vec<CycleReport>,
}

impl CycleReport {
    /// Designs at or above `threshold`.
    pub fn satisficing_count(&self, threshold: f64) -> usize {
        self.qualities.iter().filter(|&&q| q >= threshold).count()
    }

    /// Total stages skipped across iterations.
    pub fn skipped(&self) -> usize {
        self.stage_log
            .iter()
            .filter(|(_, _, o)| *o == StageOutcome::Skipped)
            .count()
    }
}

/// Type of a stage action over model `S`.
pub type StageActionFn<'a, S> = Box<dyn FnMut(&mut S, &mut CycleCtx) + 'a>;

/// Type of a stage-skip predicate: `(model, stage, iteration) -> skip?`.
pub type SkipFn<'a, S> = Box<dyn FnMut(&S, BdcStage, usize) -> bool + 'a>;

/// The Basic Design Cycle over a design model `S`.
///
/// Register actions per stage; unregistered stages are implicit no-ops
/// (recorded as executed — the paper's stages always exist, the work in
/// them varies). A skip predicate may skip any stage in any iteration.
///
/// # Examples
///
/// ```
/// use atlarge_core::process::*;
///
/// let mut bdc = BasicDesignCycle::new(vec![
///     StoppingCriterion::Satisfice { threshold: 0.8 },
///     StoppingCriterion::Budget { iterations: 10 },
/// ]);
/// bdc.on(BdcStage::Design, |quality: &mut f64, ctx| {
///     *quality += 0.3;
///     ctx.report_design(quality.min(1.0));
/// });
/// let report = bdc.run(&mut 0.0);
/// assert_eq!(report.reason, StopReason::Satisficed);
/// assert_eq!(report.iterations, 3);
/// ```
pub struct BasicDesignCycle<'a, S> {
    actions: BTreeMap<BdcStage, StageActionFn<'a, S>>,
    skip: SkipFn<'a, S>,
    criteria: Vec<StoppingCriterion>,
}

impl<S> fmt::Debug for BasicDesignCycle<'_, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BasicDesignCycle")
            .field("stages_with_actions", &self.actions.len())
            .field("criteria", &self.criteria)
            .finish()
    }
}

impl<'a, S> BasicDesignCycle<'a, S> {
    /// Creates a cycle with the given stopping criteria.
    ///
    /// # Panics
    ///
    /// Panics if `criteria` is empty: a BDC without stopping criteria
    /// would never terminate, which §3.5 explicitly rules out.
    pub fn new(criteria: Vec<StoppingCriterion>) -> Self {
        assert!(!criteria.is_empty(), "BDC needs stopping criteria");
        BasicDesignCycle {
            actions: BTreeMap::new(),
            skip: Box::new(|_, _, _| false),
            criteria,
        }
    }

    /// Registers the action of a stage.
    pub fn on<F>(&mut self, stage: BdcStage, action: F) -> &mut Self
    where
        F: FnMut(&mut S, &mut CycleCtx) + 'a,
    {
        self.actions.insert(stage, Box::new(action));
        self
    }

    /// Installs a skip predicate: `skip(state, stage, iteration)`.
    pub fn skip_when<F>(&mut self, predicate: F) -> &mut Self
    where
        F: FnMut(&S, BdcStage, usize) -> bool + 'a,
    {
        self.skip = Box::new(predicate);
        self
    }

    fn stop_reason(&self, ctx: &CycleCtx, iterations_done: usize) -> Option<StopReason> {
        for c in &self.criteria {
            match *c {
                StoppingCriterion::Satisfice { threshold } => {
                    if ctx.qualities.iter().any(|&q| q >= threshold) {
                        return Some(StopReason::Satisficed);
                    }
                }
                StoppingCriterion::Portfolio { count, threshold } => {
                    if ctx.qualities.iter().filter(|&&q| q >= threshold).count() >= count {
                        return Some(StopReason::PortfolioComplete);
                    }
                }
                StoppingCriterion::Systematic { count, threshold } => {
                    if ctx.qualities.iter().filter(|&&q| q >= threshold).count() >= count {
                        return Some(StopReason::SystematicComplete);
                    }
                }
                StoppingCriterion::Exhaustion => {
                    if ctx.exhausted {
                        return Some(StopReason::SpaceExhausted);
                    }
                }
                StoppingCriterion::Budget { iterations } => {
                    if iterations_done >= iterations {
                        return Some(StopReason::BudgetExhausted);
                    }
                }
            }
        }
        None
    }

    /// Runs the loop to a stopping criterion.
    ///
    /// If no budget criterion is present a conservative default of 10 000
    /// iterations guards against non-termination (and reports
    /// [`StopReason::BudgetExhausted`] if hit).
    pub fn run(&mut self, state: &mut S) -> CycleReport {
        let mut ctx = CycleCtx::default();
        let mut stage_log = Vec::new();
        let has_budget = self
            .criteria
            .iter()
            .any(|c| matches!(c, StoppingCriterion::Budget { .. }));
        let fallback = 10_000;
        let reason = loop {
            for stage in BdcStage::all() {
                if (self.skip)(state, stage, ctx.iteration) {
                    stage_log.push((ctx.iteration, stage, StageOutcome::Skipped));
                    continue;
                }
                if let Some(action) = self.actions.get_mut(&stage) {
                    action(state, &mut ctx);
                }
                stage_log.push((ctx.iteration, stage, StageOutcome::Executed));
            }
            ctx.iteration += 1;
            if let Some(r) = self.stop_reason(&ctx, ctx.iteration) {
                break r;
            }
            if !has_budget && ctx.iteration >= fallback {
                break StopReason::BudgetExhausted;
            }
        };
        CycleReport {
            reason,
            iterations: ctx.iteration,
            stage_log,
            qualities: ctx.qualities,
            nested: ctx.nested_reports,
        }
    }
}

/// The hierarchical Overall Process: a root BDC whose expandable stages
/// (implementation, experimental analysis, dissemination) each run a
/// nested BDC built by a factory.
///
/// The same BDC machinery drives both levels — which is the paper's point:
/// "once a practitioner has learned the BDC, they can apply it several
/// times in the OP".
#[derive(Debug)]
pub struct OverallProcess {
    criteria: Vec<StoppingCriterion>,
    nested_budget: usize,
}

impl OverallProcess {
    /// Creates an overall process with root criteria and a per-nested-BDC
    /// iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if `criteria` is empty or `nested_budget == 0`.
    pub fn new(criteria: Vec<StoppingCriterion>, nested_budget: usize) -> Self {
        assert!(!criteria.is_empty(), "OP needs stopping criteria");
        assert!(nested_budget > 0, "nested budget must be positive");
        OverallProcess {
            criteria,
            nested_budget,
        }
    }

    /// Runs the OP over `state`. `design_step` advances the design each
    /// root iteration and reports candidate qualities; each expandable
    /// stage runs a nested single-purpose BDC whose design stage invokes
    /// `nested_step` with the stage being expanded.
    pub fn run<S, D, N>(&self, state: &mut S, mut design_step: D, nested_step: N) -> CycleReport
    where
        D: FnMut(&mut S, &mut CycleCtx),
        N: Fn(&mut S, BdcStage) + Copy,
    {
        let nested_budget = self.nested_budget;
        let mut bdc = BasicDesignCycle::new(self.criteria.clone());
        bdc.on(BdcStage::Design, move |s: &mut S, ctx| {
            design_step(s, ctx);
        });
        for stage in BdcStage::all().into_iter().filter(BdcStage::expandable) {
            bdc.on(stage, move |s: &mut S, ctx| {
                let mut nested = BasicDesignCycle::new(vec![StoppingCriterion::Budget {
                    iterations: nested_budget,
                }]);
                nested.on(BdcStage::Design, |s: &mut S, _ctx| nested_step(s, stage));
                let report = nested.run(s);
                ctx.attach_nested(report);
            });
        }
        bdc.run(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_numbers_match_paper() {
        assert_eq!(BdcStage::FormulateRequirements.number(), 1);
        assert_eq!(BdcStage::Implementation.number(), 5);
        assert_eq!(BdcStage::Dissemination.number(), 8);
        assert_eq!(BdcStage::all().len(), 8);
    }

    #[test]
    fn expandable_stages_are_5_7_8() {
        let nums: Vec<u8> = BdcStage::all()
            .into_iter()
            .filter(BdcStage::expandable)
            .map(|s| s.number())
            .collect();
        assert_eq!(nums, vec![5, 7, 8]);
    }

    #[test]
    fn satisficing_stops_early() {
        let mut bdc = BasicDesignCycle::new(vec![
            StoppingCriterion::Satisfice { threshold: 0.5 },
            StoppingCriterion::Budget { iterations: 100 },
        ]);
        bdc.on(BdcStage::Design, |q: &mut f64, ctx| {
            *q += 0.2;
            ctx.report_design(q.min(1.0));
        });
        let r = bdc.run(&mut 0.0);
        assert_eq!(r.reason, StopReason::Satisficed);
        assert_eq!(r.iterations, 3);
    }

    #[test]
    fn portfolio_needs_multiple_answers() {
        let mut bdc = BasicDesignCycle::new(vec![
            StoppingCriterion::Portfolio {
                count: 3,
                threshold: 0.5,
            },
            StoppingCriterion::Budget { iterations: 100 },
        ]);
        bdc.on(BdcStage::Design, |_: &mut (), ctx| ctx.report_design(0.9));
        let r = bdc.run(&mut ());
        assert_eq!(r.reason, StopReason::PortfolioComplete);
        assert_eq!(r.iterations, 3);
        assert_eq!(r.satisficing_count(0.5), 3);
    }

    #[test]
    fn exhaustion_signal_stops() {
        let mut bdc = BasicDesignCycle::new(vec![
            StoppingCriterion::Exhaustion,
            StoppingCriterion::Budget { iterations: 100 },
        ]);
        bdc.on(BdcStage::UnderstandAlternatives, |n: &mut u32, ctx| {
            *n += 1;
            if *n == 4 {
                ctx.report_exhausted();
            }
        });
        let r = bdc.run(&mut 0);
        assert_eq!(r.reason, StopReason::SpaceExhausted);
        assert_eq!(r.iterations, 4);
    }

    #[test]
    fn budget_does_not_guarantee_success() {
        let mut bdc = BasicDesignCycle::new(vec![
            StoppingCriterion::Satisfice { threshold: 0.99 },
            StoppingCriterion::Budget { iterations: 5 },
        ]);
        bdc.on(BdcStage::Design, |_: &mut (), ctx| ctx.report_design(0.1));
        let r = bdc.run(&mut ());
        assert_eq!(r.reason, StopReason::BudgetExhausted);
        assert_eq!(r.satisficing_count(0.99), 0);
    }

    #[test]
    fn stages_can_be_skipped_per_iteration() {
        let mut bdc = BasicDesignCycle::new(vec![StoppingCriterion::Budget { iterations: 3 }]);
        bdc.on(BdcStage::Implementation, |count: &mut u32, _| *count += 1);
        // Skip implementation except on the last iteration.
        bdc.skip_when(|_, stage, iter| stage == BdcStage::Implementation && iter < 2);
        let mut impl_runs = 0u32;
        let r = bdc.run(&mut impl_runs);
        assert_eq!(impl_runs, 1);
        assert_eq!(r.skipped(), 2);
    }

    #[test]
    fn stage_log_covers_all_iterations() {
        let mut bdc = BasicDesignCycle::new(vec![StoppingCriterion::Budget { iterations: 2 }]);
        let r = bdc.run(&mut ());
        assert_eq!(r.stage_log.len(), 16); // 2 iterations × 8 stages
                                           // Stages appear in canonical order each iteration.
        for (i, chunk) in r.stage_log.chunks(8).enumerate() {
            for (j, &(iter, stage, _)) in chunk.iter().enumerate() {
                assert_eq!(iter, i);
                assert_eq!(stage, BdcStage::all()[j]);
            }
        }
    }

    #[test]
    fn fallback_prevents_infinite_loops() {
        let mut bdc = BasicDesignCycle::new(vec![StoppingCriterion::Satisfice { threshold: 1.0 }]);
        let r = bdc.run(&mut ());
        assert_eq!(r.reason, StopReason::BudgetExhausted);
        assert_eq!(r.iterations, 10_000);
    }

    #[test]
    fn overall_process_nests_bdcs() {
        let op = OverallProcess::new(
            vec![
                StoppingCriterion::Satisfice { threshold: 0.8 },
                StoppingCriterion::Budget { iterations: 10 },
            ],
            2,
        );
        let mut quality = 0.0f64;
        let report = op.run(
            &mut quality,
            |q, ctx| {
                *q += 0.3;
                ctx.report_design(q.min(1.0));
            },
            |_q, _stage| {},
        );
        assert_eq!(report.reason, StopReason::Satisficed);
        // Each root iteration runs 3 expandable stages => 3 nested reports.
        assert_eq!(report.nested.len(), report.iterations * 3);
        for n in &report.nested {
            assert_eq!(n.reason, StopReason::BudgetExhausted);
            assert_eq!(n.iterations, 2);
        }
    }
}
