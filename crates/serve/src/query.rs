//! What-if query parsing, identity, and rendering.
//!
//! A query arrives as URL pairs (`domain=graph&algorithm=bfs&seed=7`),
//! is canonicalized by the [`Registry`]'s parameter validation
//! (defaults filled, unknown keys refused), and from then on has ONE
//! identity: a [`RunManifest`] built *before* the run — model
//! `serve.<domain>`, the query seed, and a config digest over the
//! canonical parameters — rendered to a cache key by
//! [`atlarge_obsv::fingerprint::canonical_key`]. Two spellings of the
//! same cell (`n=400` explicit vs defaulted, reordered pairs) collapse
//! to one key; any semantic difference (seed, replications, any
//! parameter) separates keys.
//!
//! Rendering is deterministic by construction: every map is a
//! `BTreeMap` or an order-stable `Vec`, floats go through the
//! workspace's canonical [`json_f64`], and nothing wall-clock-derived
//! enters the body — which is what makes "cache hits are byte-identical
//! to cold runs" a provable property rather than an aspiration.

use atlarge_exp::registry::CellOutput;
use atlarge_exp::Registry;
use atlarge_obsv::fingerprint::canonical_key;
use atlarge_telemetry::export::{json_f64, json_object, json_str};
use atlarge_telemetry::manifest::{fnv1a, RunManifest, MANIFEST_SCHEMA};
use std::collections::BTreeMap;

/// Hard ceiling on per-query replications, so one query cannot
/// monopolize a worker indefinitely.
pub const MAX_REPLICATIONS: usize = 64;

/// Default seed when a query omits one — fixed, so the cacheable
/// common case ("just show me this cell") is shared across clients.
pub const DEFAULT_SEED: u64 = 42;

/// A validated, canonical what-if query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunQuery {
    /// Registered domain name.
    pub domain: String,
    /// Root seed of the replication stream.
    pub seed: u64,
    /// Replications to run (`1..=MAX_REPLICATIONS`).
    pub replications: usize,
    /// Canonical cell parameters (validated, defaults filled).
    pub params: BTreeMap<String, String>,
}

/// Parses and validates raw query pairs against `registry`.
///
/// Reserved keys: `domain` (required), `seed`, `replications`. Every
/// other key is a cell parameter checked by the domain's declared
/// [`ParamSpec`](atlarge_exp::ParamSpec)s.
pub fn parse_run_query(
    registry: &Registry,
    pairs: &[(String, String)],
) -> Result<RunQuery, String> {
    let mut domain = None;
    let mut seed = DEFAULT_SEED;
    let mut replications = 1usize;
    let mut raw = BTreeMap::new();
    for (key, value) in pairs {
        match key.as_str() {
            "domain" => domain = Some(value.clone()),
            "seed" => {
                seed = value
                    .parse()
                    .map_err(|_| format!("parameter 'seed': cannot parse '{value}'"))?;
            }
            "replications" => {
                replications = value
                    .parse()
                    .map_err(|_| format!("parameter 'replications': cannot parse '{value}'"))?;
            }
            _ => {
                if raw.insert(key.clone(), value.clone()).is_some() {
                    return Err(format!("parameter '{key}' given twice"));
                }
            }
        }
    }
    let domain = domain.ok_or("missing required parameter 'domain'")?;
    if !(1..=MAX_REPLICATIONS).contains(&replications) {
        return Err(format!(
            "parameter 'replications': {replications} outside 1..={MAX_REPLICATIONS}"
        ));
    }
    let params = registry.validate(&domain, &raw)?;
    Ok(RunQuery {
        domain,
        seed,
        replications,
        params,
    })
}

/// The query's identity as a run manifest, computed *before* the run.
///
/// Extent fields (events, simulated time, trace counts) are zero: the
/// identity of a cached result is what was asked, not what executing
/// it happened to cost. `wall_ms` is zero and excluded from the key
/// anyway.
pub fn query_manifest(query: &RunQuery) -> RunManifest {
    let mut canon = format!("replications={}", query.replications);
    for (key, value) in &query.params {
        canon.push('\u{1f}'); // field separator no declared ParamSpec name contains
        canon.push_str(key);
        canon.push('=');
        canon.push_str(value);
    }
    RunManifest {
        schema: MANIFEST_SCHEMA,
        model: format!("serve.{}", query.domain),
        seed: query.seed,
        config_digest: fnv1a(canon.as_bytes()),
        events_scheduled: 0,
        events_dispatched: 0,
        sim_time: 0.0,
        trace_records: 0,
        trace_dropped: 0,
        wall_ms: 0.0,
    }
}

/// The cache key of a query: the canonical fingerprint rendering of
/// [`query_manifest`].
pub fn cache_key(query: &RunQuery) -> String {
    canonical_key(&query_manifest(query))
}

fn json_string_map<'a, I: Iterator<Item = (&'a str, &'a str)>>(entries: I) -> String {
    let rendered: Vec<String> = entries
        .map(|(k, v)| format!("{}:{}", json_str(k), json_str(v)))
        .collect();
    format!("{{{}}}", rendered.join(","))
}

/// Renders the response body of a completed query. Deterministic:
/// byte-identical across repeats, threads, and cache hits.
pub fn render_body(query: &RunQuery, key: &str, output: &CellOutput) -> String {
    let metrics: Vec<String> = output
        .metrics
        .iter()
        .map(|(name, summary)| {
            format!(
                "{}:{}",
                json_str(name),
                json_object(&[
                    ("mean", json_f64(summary.mean())),
                    ("std_dev", json_f64(summary.std_dev())),
                    ("min", json_f64(summary.min())),
                    ("max", json_f64(summary.max())),
                    ("n", summary.len().to_string()),
                ])
            )
        })
        .collect();
    let mut body = json_object(&[
        ("domain", json_str(&query.domain)),
        ("seed", query.seed.to_string()),
        ("replications", query.replications.to_string()),
        ("key", json_str(key)),
        (
            "params",
            json_string_map(query.params.iter().map(|(k, v)| (k.as_str(), v.as_str()))),
        ),
        ("metrics", format!("{{{}}}", metrics.join(","))),
        (
            "notes",
            json_string_map(output.notes.iter().map(|(k, v)| (k.as_str(), v.as_str()))),
        ),
    ]);
    body.push('\n');
    body
}

/// Renders the `/domains` directory: every registered domain with its
/// declared parameters, for clients discovering the query schema.
pub fn render_domains(registry: &Registry) -> String {
    let domains: Vec<String> = registry
        .domains()
        .iter()
        .map(|name| {
            let scenario = registry.get(name).expect("listed domains resolve");
            let params: Vec<String> = scenario
                .params()
                .iter()
                .map(|spec| {
                    let choices: Vec<String> = spec.choices.iter().map(|c| json_str(c)).collect();
                    json_object(&[
                        ("name", json_str(&spec.name)),
                        ("help", json_str(&spec.help)),
                        (
                            "default",
                            spec.default
                                .as_deref()
                                .map(json_str)
                                .unwrap_or_else(|| "null".to_string()),
                        ),
                        ("choices", format!("[{}]", choices.join(","))),
                    ])
                })
                .collect();
            format!(
                "{}:{}",
                json_str(name),
                json_object(&[
                    ("description", json_str(scenario.describe())),
                    ("params", format!("[{}]", params.join(","))),
                ])
            )
        })
        .collect();
    format!("{{{}}}\n", domains.join(","))
}

/// The `{"error": ...}` body of a refused request.
pub fn error_body(message: &str) -> String {
    let mut body = json_object(&[("error", json_str(message))]);
    body.push('\n');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlarge_exp::registry::{CellScenario, ParamSpec};
    use atlarge_exp::CancelToken;
    use atlarge_stats::descriptive::Summary;
    use atlarge_telemetry::tracer::Tracer;

    struct Echo;

    impl CellScenario for Echo {
        fn domain(&self) -> &str {
            "echo"
        }
        fn describe(&self) -> &str {
            "test fixture"
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![
                ParamSpec::optional("x", "a knob", "1"),
                ParamSpec::choice("mode", "a mode", &["fast", "slow"]),
            ]
        }
        fn run_cell(
            &self,
            params: &BTreeMap<String, String>,
            seed: u64,
            replications: usize,
            _cancel: &CancelToken,
            _tracer: &dyn Tracer,
        ) -> Result<CellOutput, String> {
            let x: f64 = params["x"].parse().map_err(|_| "bad x".to_string())?;
            Ok(CellOutput {
                metrics: vec![(
                    "x".to_string(),
                    Summary::from_iter((0..replications).map(|_| x + seed as f64)),
                )],
                notes: vec![("mode".to_string(), params["mode"].clone())],
            })
        }
    }

    fn registry() -> Registry {
        let mut reg = Registry::new();
        reg.register(Box::new(Echo));
        reg
    }

    fn pairs(spec: &[(&str, &str)]) -> Vec<(String, String)> {
        spec.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn equivalent_spellings_share_a_cache_key() {
        let reg = registry();
        // Defaults filled vs explicit, and reordered pairs.
        let a = parse_run_query(&reg, &pairs(&[("domain", "echo")])).expect("valid");
        let b = parse_run_query(
            &reg,
            &pairs(&[("mode", "fast"), ("x", "1"), ("domain", "echo")]),
        )
        .expect("valid");
        assert_eq!(cache_key(&a), cache_key(&b));
        assert!(cache_key(&a).starts_with("ak1|"));
    }

    #[test]
    fn every_semantic_difference_changes_the_key() {
        let reg = registry();
        let base = parse_run_query(&reg, &pairs(&[("domain", "echo")])).expect("valid");
        let variants = [
            pairs(&[("domain", "echo"), ("x", "2")]),
            pairs(&[("domain", "echo"), ("mode", "slow")]),
            pairs(&[("domain", "echo"), ("seed", "7")]),
            pairs(&[("domain", "echo"), ("replications", "3")]),
        ];
        for (i, v) in variants.iter().enumerate() {
            let q = parse_run_query(&reg, v).expect("valid");
            assert_ne!(cache_key(&q), cache_key(&base), "variant {i} aliased");
        }
    }

    #[test]
    fn parse_rejects_bad_queries_with_reasons() {
        let reg = registry();
        let missing = parse_run_query(&reg, &pairs(&[("x", "1")])).unwrap_err();
        assert!(missing.contains("domain"), "{missing}");
        let unknown =
            parse_run_query(&reg, &pairs(&[("domain", "echo"), ("bogus", "1")])).unwrap_err();
        assert!(unknown.contains("unknown parameter"), "{unknown}");
        let seed =
            parse_run_query(&reg, &pairs(&[("domain", "echo"), ("seed", "abc")])).unwrap_err();
        assert!(seed.contains("seed"), "{seed}");
        let reps = parse_run_query(
            &reg,
            &pairs(&[("domain", "echo"), ("replications", "100000")]),
        )
        .unwrap_err();
        assert!(reps.contains("replications"), "{reps}");
        let dup = parse_run_query(&reg, &pairs(&[("domain", "echo"), ("x", "1"), ("x", "2")]))
            .unwrap_err();
        assert!(dup.contains("twice"), "{dup}");
    }

    #[test]
    fn rendered_bodies_are_deterministic_and_json_shaped() {
        let reg = registry();
        let q = parse_run_query(&reg, &pairs(&[("domain", "echo"), ("seed", "5")])).expect("valid");
        let tracer = atlarge_telemetry::NullTracer;
        let cell = Echo;
        let out = cell
            .run_cell(
                &q.params,
                q.seed,
                q.replications,
                &CancelToken::new(),
                &tracer,
            )
            .expect("runs");
        let key = cache_key(&q);
        let a = render_body(&q, &key, &out);
        let b = render_body(&q, &key, &out);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"domain\":\"echo\""), "{a}");
        assert!(a.contains("\"metrics\":{\"x\":{\"mean\":6"), "{a}");
        assert!(a.contains("\"notes\":{\"mode\":\"fast\"}"), "{a}");
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn domains_directory_lists_params_and_defaults() {
        let reg = registry();
        let doc = render_domains(&reg);
        assert!(doc.contains("\"echo\""), "{doc}");
        assert!(doc.contains("\"default\":\"1\""), "{doc}");
        assert!(doc.contains("\"choices\":[\"fast\",\"slow\"]"), "{doc}");
        assert!(doc.contains("\"description\":\"test fixture\""), "{doc}");
    }
}
