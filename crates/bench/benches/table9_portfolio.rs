//! Bench: regenerate Table 9 (portfolio scheduling across the
//! workload × environment matrix) plus the active-set ablation.

use atlarge_scheduling::experiments::{
    active_set_ablation, prediction_sensitivity, render_table9, run_row, table9_matrix, Scale,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table9_portfolio");
    g.sample_size(10);
    g.bench_function("row_synthetic_own_cluster", |b| {
        let (study, mix, env) = table9_matrix()[0];
        b.iter(|| run_row(study, mix, env, Scale::Quick, std::hint::black_box(1)))
    });
    g.finish();
    let rows: Vec<_> = table9_matrix()
        .into_iter()
        .map(|(s, m, e)| run_row(s, m, e, Scale::Quick, 1))
        .collect();
    println!("{}", render_table9(&rows));
    println!("active-set ablation (k, lookahead events, slowdown):");
    for (k, events, slowdown) in active_set_ablation(Scale::Quick, 1) {
        println!("  k={k}: {events} events, slowdown {slowdown:.2}");
    }
    println!("prediction sensitivity (estimate sigma -> normalized PS slowdown):");
    for (sigma, gap) in prediction_sensitivity(Scale::Quick, 1, 3) {
        println!("  sigma={sigma:.1}: degradation {gap:.3}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
