//! Property tests for the exploration server's reproducibility
//! contract: for *any* sequence of what-if queries, every response —
//! cold or cached, under whatever interleaving the connection and pool
//! threads produce — is byte-identical to a fresh single-threaded
//! execution of the same cell.

use atlarge::exp::{CancelToken, Registry};
use atlarge::serve::query::{parse_run_query, render_body};
use atlarge::serve::{cache_key, get, standard_registry, ServeConfig, Server};
use atlarge::telemetry::NullTracer;
use proptest::prelude::*;

/// One generated what-if query over the cheap corners of two domains,
/// decoded from plain integer draws (the vendored proptest has no
/// union strategies).
fn build_query(pick: u64, seed: u64, reps: u64, a: u64, b: u64) -> String {
    let seed = seed % 1_000;
    let reps = 1 + reps % 3;
    if pick.is_multiple_of(2) {
        let hosts = 1 + a % 4;
        let cores = 2 + b % 7;
        let jobs = 20 + (a % 5) * 13;
        format!(
            "/run?domain=datacenter&hosts={hosts}&cores_per_host={cores}&jobs={jobs}&seed={seed}&replications={reps}"
        )
    } else {
        let platform = ["sequential", "parallel", "edge-centric", "accelerator"][(a % 4) as usize];
        let algorithm = ["bfs", "pagerank", "wcc"][(b % 3) as usize];
        let n = 250 + (a % 4) * 50;
        format!(
            "/run?domain=graph&platform={platform}&algorithm={algorithm}&n={n}&seed={seed}&replications={reps}"
        )
    }
}

/// The reference answer: parse + validate the same query string, then
/// run the cell directly on this thread — no server, no pool, no cache
/// — and render it with the same canonical encoder.
fn reference_body(registry: &Registry, path_and_query: &str) -> Vec<u8> {
    let query_string = path_and_query
        .split_once('?')
        .expect("generated queries carry a query string")
        .1;
    let pairs: Vec<(String, String)> = query_string
        .split('&')
        .map(|pair| {
            let (k, v) = pair.split_once('=').expect("k=v");
            (k.to_string(), v.to_string())
        })
        .collect();
    let query = parse_run_query(registry, &pairs).expect("generated queries validate");
    let output = registry
        .get(&query.domain)
        .expect("registered domain")
        .run_cell(
            &query.params,
            query.seed,
            query.replications,
            &CancelToken::new(),
            &NullTracer,
        )
        .expect("cheap cells succeed");
    render_body(&query, &cache_key(&query), &output).into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any query sequence: every server answer (first ask = cold run on
    /// the pool, second ask = cache hit) equals the fresh
    /// single-threaded reference, byte for byte.
    #[test]
    fn prop_responses_match_fresh_single_threaded_runs(
        picks in collection::vec((0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX), 1..5),
    ) {
        let registry = standard_registry();
        let server = Server::start(standard_registry(), ServeConfig::default())
            .expect("bind ephemeral port");
        let addr = server.addr().to_string();

        for (pick, seed, reps, a, b) in picks {
            let path = build_query(pick, seed, reps, a, b);
            let expected = reference_body(&registry, &path);

            let cold = get(&addr, &path).expect("cold response");
            prop_assert_eq!(cold.status, 200, "{}", cold.body_str());
            prop_assert_eq!(
                &cold.body,
                &expected,
                "cold body diverged from the single-threaded reference for {}",
                &path
            );

            let cached = get(&addr, &path).expect("cached response");
            prop_assert_eq!(cached.header("X-Atlarge-Cache"), Some("hit"));
            prop_assert_eq!(
                &cached.body,
                &expected,
                "cache hit diverged from the single-threaded reference for {}",
                &path
            );
        }
        server.shutdown();
    }

    /// Equivalent spellings (reordered pairs, defaults made explicit)
    /// alias to the same cache entry; the first spelling's cold body
    /// answers every later spelling.
    #[test]
    fn prop_equivalent_spellings_share_one_cache_entry(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        seed in 0u64..500,
    ) {
        let server = Server::start(standard_registry(), ServeConfig::default())
            .expect("bind ephemeral port");
        let addr = server.addr().to_string();

        let hosts = 1 + a % 4;
        let jobs = 20 + (b % 5) * 13;
        let spellings = [
            format!("/run?domain=datacenter&hosts={hosts}&jobs={jobs}&seed={seed}"),
            format!("/run?jobs={jobs}&seed={seed}&domain=datacenter&hosts={hosts}"),
            // Defaults written out: cores_per_host and replications.
            format!(
                "/run?domain=datacenter&hosts={hosts}&cores_per_host=16&jobs={jobs}&seed={seed}&replications=1"
            ),
        ];
        let first = get(&addr, &spellings[0]).expect("cold response");
        prop_assert_eq!(first.status, 200, "{}", first.body_str());
        prop_assert_eq!(first.header("X-Atlarge-Cache"), Some("miss"));
        for spelling in &spellings[1..] {
            let again = get(&addr, spelling).expect("response");
            prop_assert_eq!(
                again.header("X-Atlarge-Cache"),
                Some("hit"),
                "alias missed the cache: {}",
                spelling
            );
            prop_assert_eq!(&again.body, &first.body);
        }
        server.shutdown();
    }
}
