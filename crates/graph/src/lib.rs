//! `atlarge-graph` — the Graphalytics ecosystem reproduction (§6.5,
//! Table 8).
//!
//! The Graphalytics line began with a curiosity-driven study that found
//! *the PAD triangle* — graph-processing performance depends on the
//! interaction of **P**latform, **A**lgorithm, and **D**ataset — "a law!",
//! later refined to HPAD when heterogeneous hardware entered the picture.
//! The reproduction implements the whole measurement apparatus:
//!
//! - [`csr`] — compressed sparse row graphs with out- and in-adjacency.
//! - [`generators`] — datasets: preferential-attachment (power-law),
//!   Erdős–Rényi, and 2-D grid graphs (low/high diameter, skewed/uniform
//!   degrees — the properties that drive the "D" of PAD).
//! - [`algorithms`] — the six LDBC Graphalytics algorithms: BFS, PageRank,
//!   WCC, CDLP, LCC, SSSP, expressed as synchronous vertex programs plus
//!   direct implementations used as cross-checks.
//! - [`platforms`] — executors with genuinely different execution
//!   strategies: sequential pull, parallel pull (crossbeam), edge-centric
//!   scan, and a heterogeneous accelerator model — each reporting a
//!   deterministic work/critical-path cost and wall time.
//! - [`granula`] — Granula-style per-phase performance breakdown.
//! - [`experiments`] — the PAD factorial sweep with variance
//!   decomposition (the law test), and the HPAD extension.
//!
//! # Examples
//!
//! ```
//! use atlarge_graph::csr::Csr;
//! use atlarge_graph::algorithms::bfs_levels;
//!
//! let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false);
//! let levels = bfs_levels(&g, 0);
//! assert_eq!(levels, vec![Some(0), Some(1), Some(2), Some(3)]);
//! ```

pub mod algorithms;
pub mod csr;
pub mod experiments;
pub mod generators;
pub mod granula;
pub mod platforms;

pub use csr::Csr;
pub use platforms::{Algorithm, Platform};
