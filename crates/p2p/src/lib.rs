//! `atlarge-p2p` — the peer-to-peer ecosystem reproduction (§6.1,
//! Table 5).
//!
//! The paper's P2P decade produced a chain of co-evolving
//! problem-solutions: longitudinal measurements of the BitTorrent
//! ecosystem (aliased media, upload/download asymmetry, giant swarms and
//! spam trackers), methodological work on measurement bias, the discovery
//! of flashcrowd phenomena and of *vicissitude* in big-data analytics, and
//! finally new systems — the 2fast collaborative-download protocol that
//! exploits the asymmetric-bandwidth finding. Every Table 5 row has a
//! computational counterpart here:
//!
//! - [`swarm`] — a BitTorrent swarm simulator with tit-for-tat bandwidth
//!   allocation, seeds/leechers, and ADSL-asymmetric access links.
//! - [`twofast`] — 2fast collaborative downloads: helpers donate upload
//!   capacity to a collector without demanding immediate reciprocation.
//! - [`flashcrowd`] — flashcrowd injection, detection, and the negative
//!   phenomena that appear only during flashcrowds (\[66\]).
//! - [`measurement`] — measurement instruments with explicit sampling
//!   bias, quantified against ground truth (\[65\]).
//! - [`ecosystem`] — the global multi-swarm ecosystem: Zipf popularity,
//!   giant swarms, spam trackers, aliased media (\[61\], \[63\]).
//! - [`vicissitude`] — the shifting-bottleneck phenomenon in a staged
//!   analytics pipeline (\[38\], \[67\]).
//! - [`experiments`] — the Table 5 row-by-row reproduction.

pub mod ecosystem;
pub mod experiments;
pub mod flashcrowd;
pub mod measurement;
pub mod sharded;
pub mod swarm;
pub mod twofast;
pub mod vicissitude;

pub use swarm::{SwarmConfig, SwarmResult};
