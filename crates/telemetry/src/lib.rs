//! `atlarge-telemetry` — tracing, metrics, and run manifests for every
//! simulator in the workspace.
//!
//! The paper's principle **P4** demands "various sources of information to
//! achieve local and global self-awareness", and challenge **C3** names
//! *calibration and reproducibility* as preconditions for simulation-based
//! design-space exploration. This crate supplies both concerns as one
//! subsystem:
//!
//! - [`tracer::Tracer`] — the hook interface the DES kernel calls on every
//!   schedule/dispatch and around instrumented spans. The default is no
//!   tracer at all (an `Option` in the kernel), so an untraced run pays a
//!   single branch per event; a tracer reporting itself disabled via
//!   [`tracer::Tracer::is_enabled`] (like [`tracer::NullTracer`]) is
//!   dropped at attach time, so "tracing off" is the untraced path itself.
//! - [`metrics`] — counters, time-weighted gauges, and tallies: the monitor
//!   vocabulary previously embedded in `atlarge-des`, with the zero-duration
//!   and empty-sample edge cases defined rather than panicking.
//! - [`recorder::Recorder`] — a cloneable, shared implementation of
//!   [`tracer::Tracer`] that aggregates a metric registry, per-span
//!   simulated- and wall-time profiles, and a bounded ring buffer of raw
//!   trace records.
//! - [`manifest::RunManifest`] — the reproducibility receipt of a run: model
//!   name, seed, configuration digest, event counts, simulated horizon, and
//!   wall time. Two runs of the same model and seed produce manifests equal
//!   under [`manifest::RunManifest::same_run_as`].
//! - [`export`] — hand-rolled JSON/JSONL encoding (no external
//!   dependencies) so traces and metrics land in machine-readable files.
//!
//! Tracing never feeds back into the simulation: a [`tracer::Tracer`] only
//! observes, so a traced run and an untraced run of the same model and seed
//! reach identical final states. The workspace test suite asserts this
//! property.

pub mod export;
pub mod hist;
pub mod manifest;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod tracer;
pub mod wall;

pub use hist::{AtomicHistogram, HistogramSnapshot, ShardedHistogram};
pub use manifest::RunManifest;
pub use metrics::{Counter, Gauge, Tally};
pub use recorder::{Recorder, SpanStats, TraceKind, TraceRecord};
pub use sink::JsonlSink;
pub use tracer::{EventLabel, NullTracer, Tracer};
