//! The in-silico autoscaling experiment: elastic workflow execution.
//!
//! Workflow jobs arrive over time; tasks become eligible when their
//! predecessors complete; an autoscaler is consulted at a fixed interval
//! and provisions servers (one task per server) subject to a provisioning
//! (boot) delay — the delay is what separates the autoscalers: reactive
//! policies pay it on every burst, predictive ones hide it.

use crate::autoscaler::{Autoscaler, ScalerView};
use atlarge_des::sim::{Ctx, Model, Simulation};
use atlarge_stats::timeseries::StepSeries;
use atlarge_telemetry::manifest::config_digest;
use atlarge_telemetry::recorder::Recorder;
use atlarge_telemetry::tracer::EventLabel;
use atlarge_workload::workflow::Workflow;
use std::collections::VecDeque;

/// Configuration of an autoscaling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Seconds between autoscaler decisions.
    pub tick_interval: f64,
    /// Seconds a provisioned server takes to boot.
    pub boot_delay: f64,
    /// Initial server count.
    pub initial_supply: u32,
    /// Hard cap on supply.
    pub max_supply: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            tick_interval: 30.0,
            boot_delay: 60.0,
            initial_supply: 2,
            max_supply: 10_000,
        }
    }
}

/// The outcome of an autoscaling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Demand (running + eligible tasks) over time.
    pub demand: StepSeries,
    /// Supply (booted servers) over time.
    pub supply: StepSeries,
    /// Per-task waiting times (start − eligible).
    pub task_waits: Vec<f64>,
    /// Per-workflow `(submit, completion, critical_path)` triples.
    pub workflows: Vec<(f64, f64, f64)>,
    /// Time the last workflow completed.
    pub end_time: f64,
}

impl RunResult {
    /// Mean task waiting time.
    pub fn mean_wait(&self) -> f64 {
        self.task_waits.iter().sum::<f64>() / self.task_waits.len().max(1) as f64
    }

    /// Mean workflow response time.
    pub fn mean_response(&self) -> f64 {
        self.workflows.iter().map(|&(s, c, _)| c - s).sum::<f64>()
            / self.workflows.len().max(1) as f64
    }

    /// Fraction of workflows completing within `slack` × critical path.
    pub fn deadline_fraction(&self, slack: f64) -> f64 {
        if self.workflows.is_empty() {
            return 1.0;
        }
        let met = self
            .workflows
            .iter()
            .filter(|&&(s, c, cp)| c - s <= slack * cp)
            .count();
        met as f64 / self.workflows.len() as f64
    }
}

#[derive(Debug)]
enum Ev {
    Arrival(usize),
    Finish { wf: usize, node: usize },
    Tick,
    Provisioned(u32),
}

impl EventLabel for Ev {
    fn label(&self) -> &'static str {
        match self {
            Ev::Arrival(_) => "arrival",
            Ev::Finish { .. } => "finish",
            Ev::Tick => "tick",
            Ev::Provisioned(_) => "provisioned",
        }
    }
}

struct WfState {
    indegree: Vec<usize>,
    remaining: usize,
    submit: f64,
    critical: f64,
}

struct ScaleModel<A: Autoscaler> {
    workflows: Vec<Workflow>,
    states: Vec<Option<WfState>>,
    queue: VecDeque<(usize, usize, f64)>,
    supply: u32,
    busy: u32,
    pending_provisions: u32,
    target: u32,
    scaler: A,
    config: AutoscaleConfig,
    demand_series: StepSeries,
    supply_series: StepSeries,
    demand_history: Vec<(f64, f64)>,
    task_waits: Vec<f64>,
    done: Vec<(f64, f64, f64)>,
    end_time: f64,
    all_arrived: bool,
    arrived: usize,
    recorder: Option<Recorder>,
}

impl<A: Autoscaler> ScaleModel<A> {
    fn demand(&self) -> f64 {
        f64::from(self.busy) + self.queue.len() as f64
    }

    fn record_demand(&mut self, now: f64) {
        let d = self.demand();
        self.demand_series.push(now, d);
        if let Some(rec) = &self.recorder {
            rec.gauge_set("scale.demand", now, d);
        }
    }

    fn record_supply(&mut self, now: f64) {
        self.supply_series.push(now, f64::from(self.supply));
        if let Some(rec) = &self.recorder {
            rec.gauge_set("scale.supply", now, f64::from(self.supply));
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<Ev>) {
        while self.busy < self.supply {
            match self.queue.pop_front() {
                Some((wf, node, eligible_at)) => {
                    self.busy += 1;
                    let wait = ctx.now() - eligible_at;
                    self.task_waits.push(wait);
                    if let Some(rec) = &self.recorder {
                        rec.observe("scale.task_wait_s", wait);
                    }
                    let runtime = self.workflows[wf].tasks()[node].runtime;
                    ctx.schedule_in(runtime, Ev::Finish { wf, node });
                }
                None => break,
            }
        }
    }

    fn finished_everything(&self) -> bool {
        self.all_arrived && self.busy == 0 && self.queue.is_empty()
    }
}

impl<A: Autoscaler> Model for ScaleModel<A> {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<Ev>) {
        match ev {
            Ev::Arrival(wi) => {
                let wf = &self.workflows[wi];
                let indegree = wf.in_degrees();
                let critical = wf.critical_path();
                for (node, &d) in indegree.iter().enumerate() {
                    if d == 0 {
                        self.queue.push_back((wi, node, ctx.now()));
                    }
                }
                self.states[wi] = Some(WfState {
                    indegree,
                    remaining: wf.len(),
                    submit: ctx.now(),
                    critical,
                });
                self.arrived += 1;
                if self.arrived == self.workflows.len() {
                    self.all_arrived = true;
                }
                self.record_demand(ctx.now());
                self.dispatch(ctx);
            }
            Ev::Finish { wf, node } => {
                self.busy -= 1;
                // Decommission down to target now that a server idles.
                if self.supply > self.target && self.supply > self.busy {
                    let spare = (self.supply - self.target).min(self.supply - self.busy);
                    self.supply -= spare;
                    self.record_supply(ctx.now());
                }
                let mut completed = false;
                {
                    let state = self.states[wf].as_mut().expect("workflow arrived");
                    state.remaining -= 1;
                    if state.remaining == 0 {
                        completed = true;
                    }
                }
                // Release successors.
                let succs: Vec<usize> = self.workflows[wf].successors(node).to_vec();
                for s in succs {
                    let state = self.states[wf].as_mut().expect("workflow arrived");
                    state.indegree[s] -= 1;
                    if state.indegree[s] == 0 {
                        self.queue.push_back((wf, s, ctx.now()));
                    }
                }
                if completed {
                    let state = self.states[wf].as_ref().expect("workflow arrived");
                    self.done.push((state.submit, ctx.now(), state.critical));
                    self.end_time = self.end_time.max(ctx.now());
                }
                self.record_demand(ctx.now());
                self.dispatch(ctx);
                if self.finished_everything() {
                    ctx.stop();
                }
            }
            Ev::Tick => {
                let d = self.demand();
                self.demand_history.push((ctx.now(), d));
                if self.demand_history.len() > 512 {
                    self.demand_history.drain(..256);
                }
                // Live evolution point: an orchestrating scaler may retire
                // its current policy here and resume the successor from a
                // state capsule. The sim owns the tracer, so the handoff
                // runs under a span naming both sides.
                if let Some(label) = self.scaler.swap_due(ctx.now(), d) {
                    ctx.span_enter(&label);
                    self.scaler.apply_swap(ctx.now());
                    ctx.span_exit(&label);
                }
                // The autoscaler consultation is the interesting region of
                // a tick: span it so traced runs profile decision cost.
                ctx.span_enter("autoscaler.decide");
                let view = ScalerView {
                    now: ctx.now(),
                    demand: d,
                    supply: self.supply + self.pending_provisions,
                    eligible_tasks: self.queue.len(),
                    demand_history: &self.demand_history,
                };
                let target = self.scaler.decide(&view).min(self.config.max_supply);
                self.target = target;
                let effective = self.supply + self.pending_provisions;
                if target > effective {
                    let add = target - effective;
                    self.pending_provisions += add;
                    if let Some(rec) = &self.recorder {
                        rec.add("scale.provisions", u64::from(add));
                    }
                    ctx.schedule_in(self.config.boot_delay, Ev::Provisioned(add));
                } else if target < self.supply {
                    // Scale in immediately, but never kill running tasks.
                    let new_supply = target.max(self.busy);
                    if new_supply != self.supply {
                        self.supply = new_supply;
                        self.record_supply(ctx.now());
                    }
                }
                ctx.span_exit("autoscaler.decide");
                if !self.finished_everything() {
                    ctx.schedule_in(self.config.tick_interval, Ev::Tick);
                } else {
                    ctx.stop();
                }
            }
            Ev::Provisioned(n) => {
                self.pending_provisions -= n;
                self.supply += n;
                self.record_supply(ctx.now());
                self.dispatch(ctx);
            }
        }
    }
}

/// Runs one autoscaling experiment: `workflows` under `scaler`.
pub fn run<A: Autoscaler>(
    workflows: Vec<Workflow>,
    scaler: A,
    config: AutoscaleConfig,
    seed: u64,
) -> RunResult {
    run_impl(workflows, scaler, config, seed, None).0
}

/// Like [`run`] (or [`run_traced`] when `recorder` is given), but hands
/// the scaler back with the result, so callers can inspect state the
/// scaler accumulated during the run — e.g. the swap log of an
/// [`EvolvingScaler`](crate::evolve::EvolvingScaler).
pub fn run_keeping_scaler<A: Autoscaler>(
    workflows: Vec<Workflow>,
    scaler: A,
    config: AutoscaleConfig,
    seed: u64,
    recorder: Option<&Recorder>,
) -> (RunResult, A) {
    if let Some(rec) = recorder {
        rec.set_run_info("autoscaling.workflows", seed, config_digest(&config));
        rec.gauge_set("scale.supply", 0.0, f64::from(config.initial_supply));
    }
    run_impl(workflows, scaler, config, seed, recorder.cloned())
}

/// Runs one autoscaling experiment with `recorder` attached as tracer and
/// metric sink (`scale.demand`/`scale.supply` gauges, the
/// `scale.task_wait_s` tally, the `scale.provisions` counter, and the
/// `autoscaler.decide` span). The result is identical to an untraced
/// [`run`] of the same inputs and seed.
pub fn run_traced<A: Autoscaler>(
    workflows: Vec<Workflow>,
    scaler: A,
    config: AutoscaleConfig,
    seed: u64,
    recorder: &Recorder,
) -> RunResult {
    recorder.set_run_info("autoscaling.workflows", seed, config_digest(&config));
    // Mirror the supply series' initial level so the gauge is defined from
    // time zero even if supply never changes.
    recorder.gauge_set("scale.supply", 0.0, f64::from(config.initial_supply));
    run_impl(workflows, scaler, config, seed, Some(recorder.clone())).0
}

fn run_impl<A: Autoscaler>(
    workflows: Vec<Workflow>,
    scaler: A,
    config: AutoscaleConfig,
    seed: u64,
    recorder: Option<Recorder>,
) -> (RunResult, A) {
    assert!(!workflows.is_empty(), "need workflows to scale for");
    let n = workflows.len();
    let submits: Vec<f64> = workflows.iter().map(|w| w.submit).collect();
    let model = ScaleModel {
        workflows,
        states: (0..n).map(|_| None).collect(),
        queue: VecDeque::new(),
        supply: config.initial_supply,
        busy: 0,
        pending_provisions: 0,
        target: config.initial_supply,
        scaler,
        config,
        demand_series: StepSeries::new(0.0),
        supply_series: {
            let mut s = StepSeries::new(f64::from(config.initial_supply));
            s.push(0.0, f64::from(config.initial_supply));
            s
        },
        demand_history: Vec::new(),
        task_waits: Vec::new(),
        done: Vec::new(),
        end_time: 0.0,
        all_arrived: false,
        arrived: 0,
        recorder: recorder.clone(),
    };
    // All task arrivals plus the scaler tick are scheduled up front;
    // pre-size the event queue so the fill phase never reallocates.
    let mut sim = Simulation::with_capacity(model, seed, submits.len() + 1);
    if let Some(rec) = recorder {
        sim = sim.with_tracer(rec);
    }
    for (i, t) in submits.iter().enumerate() {
        sim.schedule(*t, Ev::Arrival(i));
    }
    sim.schedule(0.0, Ev::Tick);
    sim.run();
    let m = sim.into_model();
    (
        RunResult {
            demand: m.demand_series,
            supply: m.supply_series,
            task_waits: m.task_waits,
            workflows: m.done,
            end_time: m.end_time,
        },
        m.scaler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::{React, RecentPeak};
    use atlarge_workload::workflow::{generate, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workflows(n: usize, gap: f64) -> Vec<Workflow> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| generate(&mut rng, Shape::ForkJoin(6), 30.0, 0.3, i as f64 * gap))
            .collect()
    }

    #[test]
    fn all_workflows_complete() {
        let r = run(workflows(10, 50.0), React, AutoscaleConfig::default(), 3);
        assert_eq!(r.workflows.len(), 10);
        assert!(r.end_time > 0.0);
        assert!(!r.task_waits.is_empty());
    }

    #[test]
    fn responses_at_least_critical_path() {
        let r = run(workflows(5, 100.0), React, AutoscaleConfig::default(), 3);
        for &(s, c, cp) in &r.workflows {
            assert!(c - s >= cp - 1e-9, "response {} below critical {cp}", c - s);
        }
    }

    #[test]
    fn boot_delay_costs_waiting_time() {
        // The provisioning delay is what separates autoscalers; with React
        // a 300 s boot must hurt task waits vs instant provisioning.
        let slow = AutoscaleConfig {
            boot_delay: 300.0,
            ..Default::default()
        };
        let instant = AutoscaleConfig {
            boot_delay: 0.0,
            ..Default::default()
        };
        let ws = run(workflows(8, 20.0), React, slow, 3).mean_wait();
        let wi = run(workflows(8, 20.0), React, instant, 3).mean_wait();
        assert!(wi < ws, "instant {wi} vs slow {ws}");
    }

    #[test]
    fn supply_never_kills_running_tasks() {
        let r = run(
            workflows(6, 10.0),
            RecentPeak::default(),
            AutoscaleConfig::default(),
            5,
        );
        // Every workflow finished despite scale-ins.
        assert_eq!(r.workflows.len(), 6);
    }

    #[test]
    fn deadline_fraction_bounded() {
        let r = run(workflows(10, 40.0), React, AutoscaleConfig::default(), 3);
        let f = r.deadline_fraction(2.0);
        assert!((0.0..=1.0).contains(&f));
        assert!(r.deadline_fraction(1000.0) >= f);
    }

    #[test]
    fn deterministic() {
        let a = run(workflows(5, 30.0), React, AutoscaleConfig::default(), 9);
        let b = run(workflows(5, 30.0), React, AutoscaleConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn traced_run_matches_untraced_and_profiles_ticks() {
        let cfg = AutoscaleConfig::default();
        let plain = run(workflows(6, 40.0), React, cfg, 13);
        let rec = Recorder::new();
        let traced = run_traced(workflows(6, 40.0), React, cfg, 13, &rec);
        assert_eq!(plain, traced, "telemetry must not perturb the run");
        // Every tick dispatched ran exactly one decision span.
        let spans = rec.span_stats();
        assert_eq!(spans["autoscaler.decide"].entries, rec.dispatches("tick"));
        assert!(rec.dispatches("tick") > 0);
        assert_eq!(
            rec.tally("scale.task_wait_s")
                .expect("waits recorded")
                .len(),
            traced.task_waits.len()
        );
        assert_eq!(rec.manifest().model, "autoscaling.workflows");
        let supply = rec.gauge("scale.supply").expect("supply tracked");
        assert!(supply.max_level() >= f64::from(cfg.initial_supply));
    }
}
