//! Named workload mixes (Table 9).
//!
//! Table 9 evaluates portfolio scheduling across workloads abbreviated
//! Syn (synthetic), Sci (scientific), Sci+Gam, CE (computer engineering),
//! BC (business-critical), Ind (industrial IoT analytics), and BD (big
//! data). Each mix here is a generator with the characteristics the
//! underlying studies describe, so the Table-9 reproduction sweeps the same
//! axis.

use crate::arrivals::{ArrivalProcess, Bursty, Diurnal, Poisson};
use crate::job::{BagOfTasksGen, Job, JobId};
use rand::Rng;

/// The workload families of Table 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mix {
    /// Synthetic: Poisson arrivals, moderate bags, low variance (\[114\]).
    Synthetic,
    /// Scientific: bursty arrivals of large bags with heavy-tailed
    /// runtimes, as in grid traces (\[115\], \[121\], \[124\]).
    Scientific,
    /// Scientific + gaming mix (\[116\]).
    SciGaming,
    /// Computer-engineering batch jobs: many short tasks (\[117\]).
    ComputerEngineering,
    /// Business-critical: long-running, low-parallelism, strict
    /// expectations (\[118\]).
    BusinessCritical,
    /// Industrial IoT analytics: periodic small jobs (\[119\]).
    Industrial,
    /// Big data: few very large bags, stragglers (\[120\]).
    BigData,
}

impl Mix {
    /// All mixes, in Table-9 row order.
    pub fn all() -> [Mix; 7] {
        [
            Mix::Synthetic,
            Mix::Scientific,
            Mix::SciGaming,
            Mix::ComputerEngineering,
            Mix::BusinessCritical,
            Mix::Industrial,
            Mix::BigData,
        ]
    }

    /// The Table-9 abbreviation of this mix.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Mix::Synthetic => "Syn",
            Mix::Scientific => "Sci",
            Mix::SciGaming => "Sci+Gam",
            Mix::ComputerEngineering => "CE",
            Mix::BusinessCritical => "BC",
            Mix::Industrial => "Ind",
            Mix::BigData => "BD",
        }
    }

    fn bot_gen(&self) -> BagOfTasksGen {
        match self {
            Mix::Synthetic => BagOfTasksGen {
                mean_tasks: 5.0,
                mean_runtime: 100.0,
                runtime_cv: 0.5,
                cpus_per_task: 1,
            },
            Mix::Scientific => BagOfTasksGen {
                mean_tasks: 20.0,
                mean_runtime: 400.0,
                runtime_cv: 2.0,
                cpus_per_task: 1,
            },
            Mix::SciGaming => BagOfTasksGen {
                mean_tasks: 12.0,
                mean_runtime: 150.0,
                runtime_cv: 1.5,
                cpus_per_task: 1,
            },
            Mix::ComputerEngineering => BagOfTasksGen {
                mean_tasks: 30.0,
                mean_runtime: 30.0,
                runtime_cv: 0.8,
                cpus_per_task: 1,
            },
            Mix::BusinessCritical => BagOfTasksGen {
                mean_tasks: 2.0,
                mean_runtime: 3600.0,
                runtime_cv: 0.4,
                cpus_per_task: 2,
            },
            Mix::Industrial => BagOfTasksGen {
                mean_tasks: 4.0,
                mean_runtime: 60.0,
                runtime_cv: 0.6,
                cpus_per_task: 1,
            },
            Mix::BigData => BagOfTasksGen {
                mean_tasks: 60.0,
                mean_runtime: 200.0,
                runtime_cv: 3.0,
                cpus_per_task: 1,
            },
        }
    }

    /// Generates arrival times over `[0, horizon)` at roughly
    /// `rate_scale` jobs per 1000 s, with the mix's characteristic
    /// arrival shape.
    fn arrivals<R: Rng + ?Sized>(&self, rng: &mut R, horizon: f64, rate_scale: f64) -> Vec<f64> {
        let rate = rate_scale / 1000.0;
        match self {
            Mix::Synthetic | Mix::ComputerEngineering => {
                Poisson::new(rate).generate(rng, 0.0, horizon)
            }
            Mix::Scientific | Mix::BigData => {
                Bursty::new(rate * 6.0, rate * 0.3, horizon / 40.0, horizon / 12.0)
                    .generate(rng, 0.0, horizon)
            }
            Mix::SciGaming | Mix::Industrial => {
                Diurnal::new(rate, 0.7, horizon / 5.0, 0.0).generate(rng, 0.0, horizon)
            }
            Mix::BusinessCritical => Poisson::new(rate * 0.5).generate(rng, 0.0, horizon),
        }
    }

    /// Generates the full workload: jobs with arrival times and bags of
    /// tasks matching the mix's profile.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        horizon: f64,
        rate_scale: f64,
    ) -> Vec<Job> {
        let gen = self.bot_gen();
        self.arrivals(rng, horizon, rate_scale)
            .into_iter()
            .enumerate()
            .map(|(i, t)| gen.sample(rng, JobId(i as u64), t))
            .collect()
    }
}

impl std::fmt::Display for Mix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_mixes_generate_jobs() {
        let mut rng = StdRng::seed_from_u64(3);
        for mix in Mix::all() {
            let jobs = mix.generate(&mut rng, 50_000.0, 30.0);
            assert!(!jobs.is_empty(), "{mix} generated no jobs");
            assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        }
    }

    #[test]
    fn big_data_bags_are_larger_than_synthetic() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean_size = |mix: Mix, rng: &mut StdRng| {
            let jobs = mix.generate(rng, 200_000.0, 30.0);
            jobs.iter().map(Job::size).sum::<usize>() as f64 / jobs.len() as f64
        };
        let syn = mean_size(Mix::Synthetic, &mut rng);
        let bd = mean_size(Mix::BigData, &mut rng);
        assert!(bd > 3.0 * syn, "syn {syn} bd {bd}");
    }

    #[test]
    fn business_critical_runs_long() {
        let mut rng = StdRng::seed_from_u64(5);
        let jobs = Mix::BusinessCritical.generate(&mut rng, 400_000.0, 30.0);
        let mean_rt: f64 = jobs
            .iter()
            .flat_map(|j| j.tasks.iter().map(|t| t.runtime))
            .sum::<f64>()
            / jobs.iter().map(Job::size).sum::<usize>() as f64;
        assert!(mean_rt > 1000.0, "mean runtime {mean_rt}");
    }

    #[test]
    fn abbrevs_match_table9() {
        let abbrevs: Vec<&str> = Mix::all().iter().map(|m| m.abbrev()).collect();
        assert_eq!(
            abbrevs,
            vec!["Syn", "Sci", "Sci+Gam", "CE", "BC", "Ind", "BD"]
        );
    }
}
