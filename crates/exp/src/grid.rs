//! Factor grids: the declared design space of a campaign.
//!
//! A campaign sweeps the full cross product of its factors' levels —
//! the Graphalytics/PAD shape of experiment (platform × algorithm ×
//! dataset) the paper's Section 6 keeps returning to. Cells are
//! enumerated in row-major order (first factor slowest), so a grid
//! defines a single canonical cell order every executor must reproduce.

/// One experimental factor and its levels, e.g. `workload ∈ {steady,
/// bursty, chains, wide}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factor {
    /// Factor name.
    pub name: String,
    /// The levels swept, in declaration order.
    pub levels: Vec<String>,
}

/// A full-factorial grid of experimental factors.
///
/// # Examples
///
/// ```
/// use atlarge_exp::grid::FactorGrid;
///
/// let grid = FactorGrid::new()
///     .factor("platform", ["sequential", "distributed"])
///     .factor("dataset", ["dotaleague", "wiki"]);
/// assert_eq!(grid.len(), 4);
/// assert_eq!(grid.cell(1).level("platform"), "sequential");
/// assert_eq!(grid.cell(1).level("dataset"), "wiki");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FactorGrid {
    factors: Vec<Factor>,
}

impl FactorGrid {
    /// An empty grid (one implicit cell until factors are added).
    pub fn new() -> Self {
        FactorGrid::default()
    }

    /// Adds a factor with the given levels.
    ///
    /// # Panics
    ///
    /// Panics if the factor has no levels, duplicates a level, or reuses
    /// an existing factor name — every cell must be uniquely addressable.
    pub fn factor<I, L>(mut self, name: &str, levels: I) -> Self
    where
        I: IntoIterator<Item = L>,
        L: Into<String>,
    {
        let levels: Vec<String> = levels.into_iter().map(Into::into).collect();
        assert!(
            !levels.is_empty(),
            "factor {name:?} needs at least one level"
        );
        for (i, l) in levels.iter().enumerate() {
            assert!(
                !levels[..i].contains(l),
                "factor {name:?} repeats level {l:?}"
            );
        }
        assert!(
            self.factors.iter().all(|f| f.name != name),
            "factor {name:?} declared twice"
        );
        self.factors.push(Factor {
            name: name.to_string(),
            levels,
        });
        self
    }

    /// The declared factors, in declaration order.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// Number of cells: the product of level counts (1 for an empty
    /// grid — a campaign with a single unnamed cell).
    pub fn len(&self) -> usize {
        self.factors.iter().map(|f| f.levels.len()).product()
    }

    /// Whether the grid has no factors.
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The cell at `index` in canonical row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn cell(&self, index: usize) -> CellSpec {
        assert!(index < self.len(), "cell {index} out of range");
        let mut rem = index;
        let mut levels = vec![String::new(); self.factors.len()];
        for (i, f) in self.factors.iter().enumerate().rev() {
            levels[i] = f.levels[rem % f.levels.len()].clone();
            rem /= f.levels.len();
        }
        CellSpec {
            index,
            levels: self
                .factors
                .iter()
                .zip(levels)
                .map(|(f, l)| (f.name.clone(), l))
                .collect(),
        }
    }

    /// Iterates every cell in canonical order.
    pub fn cells(&self) -> impl Iterator<Item = CellSpec> + '_ {
        (0..self.len()).map(|i| self.cell(i))
    }
}

/// One addressed cell of a grid: the level chosen for every factor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the grid's canonical row-major order.
    pub index: usize,
    levels: Vec<(String, String)>,
}

impl CellSpec {
    /// The level of `factor` in this cell.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no factor of that name.
    pub fn level(&self, factor: &str) -> &str {
        self.levels
            .iter()
            .find(|(n, _)| n == factor)
            .map(|(_, l)| l.as_str())
            .unwrap_or_else(|| panic!("no factor named {factor:?}"))
    }

    /// `(factor, level)` pairs in factor declaration order.
    pub fn levels(&self) -> &[(String, String)] {
        &self.levels
    }

    /// Compact display label: `level` for one factor, `a=x,b=y` beyond.
    pub fn label(&self) -> String {
        match self.levels.len() {
            0 => "all".to_string(),
            1 => self.levels[0].1.clone(),
            _ => self
                .levels
                .iter()
                .map(|(n, l)| format!("{n}={l}"))
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_order_matches_nested_loops() {
        let grid = FactorGrid::new()
            .factor("a", ["a0", "a1"])
            .factor("b", ["b0", "b1", "b2"]);
        let got: Vec<(String, String)> = grid
            .cells()
            .map(|c| (c.level("a").to_string(), c.level("b").to_string()))
            .collect();
        let mut want = Vec::new();
        for a in ["a0", "a1"] {
            for b in ["b0", "b1", "b2"] {
                want.push((a.to_string(), b.to_string()));
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn empty_grid_has_one_cell() {
        let grid = FactorGrid::new();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid.cell(0).label(), "all");
    }

    #[test]
    fn labels_and_indices_round_trip() {
        let grid = FactorGrid::new()
            .factor("p", ["x", "y"])
            .factor("d", ["g1", "g2"]);
        for (i, cell) in grid.cells().enumerate() {
            assert_eq!(cell.index, i);
            assert_eq!(grid.cell(i), cell);
        }
        assert_eq!(grid.cell(3).label(), "p=y,d=g2");
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_factor_panics() {
        let _ = FactorGrid::new().factor("a", ["x"]).factor("a", ["y"]);
    }

    #[test]
    #[should_panic(expected = "repeats level")]
    fn duplicate_level_panics() {
        let _ = FactorGrid::new().factor("a", ["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cell_out_of_range_panics() {
        let _ = FactorGrid::new().factor("a", ["x"]).cell(1);
    }
}
