//@ path: crates/p2p/src/shard_boundary_fixture.rs
// ui fixture: domain code must not name the conservative-sync
// machinery behind the sharded kernel's public API.

use atlarge_des::shard::sync::SyncPlane;

pub fn peek_protocol(lbs: &[f64], la: &[f64]) {
    let mut horizons = Vec::new();
    atlarge_des::shard::sync::conservative_horizons(lbs, la, &mut horizons);
}
