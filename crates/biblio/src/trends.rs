//! The Figure-2 analysis: design-article counts per 5-year block.

use crate::corpus::{Corpus, FIRST_YEAR, LAST_YEAR};
use atlarge_stats::regression::linear_fit;

/// One venue's design-article counts across the 5-year blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VenueTrend {
    /// Venue name.
    pub venue: &'static str,
    /// Counts per block, aligned with [`BlockTable::block_starts`].
    /// `None` marks blocks fully before the venue existed (censored).
    pub counts: Vec<Option<u64>>,
}

/// The Figure-2 table: design-article counts per venue per 5-year block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTable {
    /// First year of each block (1980, 1985, …, 2015).
    pub block_starts: Vec<u32>,
    /// Per-venue rows.
    pub rows: Vec<VenueTrend>,
}

impl BlockTable {
    /// Total design articles across venues per block (skipping censored
    /// cells).
    pub fn totals(&self) -> Vec<u64> {
        (0..self.block_starts.len())
            .map(|b| self.rows.iter().filter_map(|r| r.counts[b]).sum())
            .collect()
    }

    /// Is the overall trend increasing? Fits a line through the per-block
    /// totals (excluding the incomplete final block, as the paper notes it
    /// is partial) and reports a positive slope.
    pub fn is_increasing(&self) -> bool {
        let totals = self.totals();
        let n = totals.len().saturating_sub(1); // drop incomplete 2015 block
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = totals[..n].iter().map(|&c| c as f64).collect();
        linear_fit(&xs, &ys).is_some_and(|f| f.slope > 0.0)
    }

    /// Ratio of post-2000 to pre-2000 per-block average counts — the
    /// "marked increase since 2000" statistic.
    pub fn post_2000_increase(&self) -> f64 {
        let totals = self.totals();
        let mut pre = Vec::new();
        let mut post = Vec::new();
        for (b, &start) in self.block_starts.iter().enumerate() {
            // Skip the incomplete final block.
            if b + 1 == self.block_starts.len() {
                continue;
            }
            if start < 2000 {
                pre.push(totals[b] as f64);
            } else {
                post.push(totals[b] as f64);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        mean(&post) / mean(&pre).max(1e-9)
    }

    /// Renders the table as aligned text.
    pub fn to_table_string(&self) -> String {
        let mut out = format!("{:<10}", "venue");
        for b in &self.block_starts {
            out.push_str(&format!("{b:>8}"));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<10}", r.venue));
            for c in &r.counts {
                match c {
                    Some(n) => out.push_str(&format!("{n:>8}")),
                    None => out.push_str(&format!("{:>8}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Computes the Figure-2 table from a corpus.
pub fn design_counts_by_block(corpus: &Corpus) -> BlockTable {
    let block_starts: Vec<u32> = (FIRST_YEAR..=LAST_YEAR).step_by(5).collect();
    let block_of = |year: u32| ((year - FIRST_YEAR) / 5) as usize;
    let rows = corpus
        .venues()
        .iter()
        .enumerate()
        .map(|(vi, v)| {
            let mut counts: Vec<Option<u64>> = block_starts
                .iter()
                .map(|&start| {
                    // A block is censored if the venue started after its
                    // last year.
                    if v.start_year > start + 4 {
                        None
                    } else {
                        Some(0)
                    }
                })
                .collect();
            for a in corpus.articles().iter().filter(|a| a.venue == vi) {
                if a.is_design {
                    let b = block_of(a.year);
                    if let Some(c) = counts[b].as_mut() {
                        *c += 1;
                    }
                }
            }
            VenueTrend {
                venue: v.name,
                counts,
            }
        })
        .collect();
    BlockTable { block_starts, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> BlockTable {
        design_counts_by_block(&Corpus::generate(20))
    }

    #[test]
    fn blocks_start_at_1980_step_5() {
        let t = table();
        assert_eq!(t.block_starts[0], 1980);
        assert_eq!(t.block_starts[1], 1985);
        assert_eq!(*t.block_starts.last().unwrap(), 2015);
    }

    #[test]
    fn censored_blocks_marked_none() {
        let t = table();
        let nsdi = t.rows.iter().find(|r| r.venue == "NSDI").unwrap();
        // NSDI started 2004: blocks 1980–1999 censored, 2000-block present
        // (2004 falls in 2000–2004).
        assert!(nsdi.counts[0].is_none());
        assert!(nsdi.counts[3].is_none());
        assert!(nsdi.counts[4].is_some());
    }

    #[test]
    fn overall_trend_is_increasing() {
        // Figure 2's finding: accumulation of design articles increases.
        assert!(table().is_increasing());
    }

    #[test]
    fn marked_increase_after_2000() {
        let ratio = table().post_2000_increase();
        assert!(ratio > 2.0, "post/pre-2000 ratio {ratio}");
    }

    #[test]
    fn totals_sum_rows() {
        let t = table();
        let totals = t.totals();
        assert_eq!(totals.len(), t.block_starts.len());
        let manual: u64 = t.rows.iter().filter_map(|r| r.counts[0]).sum();
        assert_eq!(totals[0], manual);
    }

    #[test]
    fn table_renders_censored_cells() {
        let s = table().to_table_string();
        assert!(s.contains("NSDI"));
        assert!(s.contains('-'));
    }
}
