//@ path: crates/autoscaling/src/capsule_coverage_ok_fixture.rs
// ui fixture (negative): a symmetric capture/resume pair is clean.

impl Evolvable for RoundTripPolicy {
    fn capsule_kind(&self) -> &'static str {
        "fixture.roundtrip"
    }

    fn capture(&self, _now: f64) -> Capsule {
        let mut c = Capsule::new(self.capsule_kind(), 1)
            .with_f64("window", self.window)
            .with_u64("ticks", self.ticks);
        c.push("history", Value::F64s(self.history.clone()));
        c
    }

    fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
        capsule.expect_kind(self.capsule_kind())?;
        self.window = capsule.f64_field("window")?;
        self.ticks = capsule.u64_field("ticks")?;
        self.history = capsule.f64s_field("history")?.to_vec();
        Ok(())
    }
}
