//! Design heritage: the peopleware/methodology challenges in action.
//!
//! Exercises three of the paper's ten challenges end to end: C8's
//! decision-log formalism documents a design's evolution, C6's
//! Distributed Systems Memex preserves the operational traces behind the
//! decisions, and C2's ideation metrics score what the exploration
//! actually produced.
//!
//! ```sh
//! cargo run --release --example design_heritage
//! ```

use atlarge::core::ideation;
use atlarge::core::process::BdcStage;
use atlarge::core::provenance::DesignLog;
use atlarge::core::space::{DesignSpace, RuggedSpace};
use atlarge::mmog::dynamics::{simulate_population, Genre};
use atlarge::workload::job::{Job, JobId, Task};
use atlarge::workload::memex::{Memex, SystemKind};
use atlarge::workload::trace::{JobTrace, TraceMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // -- C8: document the design decisions as they happen ------------------
    let mut log = DesignLog::new();
    let zoning = log.record(
        0,
        BdcStage::Design,
        "static zoning",
        &["full server replication", "peer-to-peer state"],
        "zoning is what the team has operated before",
        None,
    );
    let aos = log.record(
        2,
        BdcStage::ExperimentalAnalysis,
        "area of simulation",
        &["static zoning"],
        "RTSenv showed zoning cannot absorb interaction hotspots",
        Some(zoning),
    );
    log.record(
        3,
        BdcStage::Dissemination,
        "publish + archive traces",
        &[],
        "satisficing under the latency NFR; share the evidence",
        Some(aos),
    );
    println!(
        "C8 — decision log ({} decisions, {} alternatives considered):",
        log.len(),
        log.alternatives_considered()
    );
    print!("{}", log.to_formalism());
    let chain: Vec<&str> = log
        .evolution_chain(2)
        .iter()
        .map(|d| d.chosen.as_str())
        .collect();
    println!("evolution chain: {}\n", chain.join(" -> "));

    // -- C6: preserve the operational evidence in the Memex ----------------
    let mut memex = Memex::new();
    let population = simulate_population(Genre::Mmorpg, 2.0, 0.05, 7);
    let jobs: Vec<Job> = population
        .sessions
        .iter()
        .take(500)
        .enumerate()
        .map(|(i, &(start, dur))| {
            Job::new(JobId(i as u64), start, vec![Task::new(dur.max(1.0), 1)])
        })
        .collect();
    let trace = JobTrace::new(
        TraceMeta {
            name: "mmorpg-sessions-2008".into(),
            source: "atlarge-mmog population simulator (seed 7)".into(),
            license: "CC-BY-4.0".into(),
            description: "session workload behind the AoS decision".into(),
        },
        jobs,
    );
    memex
        .archive(SystemKind::Gaming, 2008, trace)
        .expect("trace carries full provenance");
    println!(
        "C6 — memex: {} entries, {} jobs preserved; coverage {:?}\n",
        memex.len(),
        memex.total_jobs(),
        memex.coverage()
    );

    // -- C2: score the exploration's output with ideation metrics ----------
    let space = RuggedSpace::new(32, 4, 11);
    let mut rng = StdRng::seed_from_u64(13);
    let prior_art: Vec<_> = (0..3).map(|_| space.random(&mut rng)).collect();
    let produced: Vec<_> = (0..12).map(|_| space.random(&mut rng)).collect();
    let report = ideation::measure(&space, &produced, &prior_art);
    println!(
        "C2 — ideation metrics: quantity {}, best quality {:.3}, novelty {:.2}, \
         variety {:.2}, effectiveness {:.2}",
        report.quantity,
        report.best_quality,
        report.novelty,
        report.variety,
        report.effectiveness()
    );
}
