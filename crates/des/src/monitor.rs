//! Deprecated: run-time observability has moved to `atlarge-telemetry`.
//!
//! The monitor vocabulary (counters, time-weighted gauges, tallies) started
//! life inside the kernel; it now lives in
//! [`atlarge_telemetry::metrics`], where the [`atlarge_telemetry::recorder::Recorder`]
//! registry and the JSONL exporters build on it, and where the edge cases
//! are defined (time-weighted means over zero-duration windows report the
//! level instead of `0/0`; empty-tally summaries are `None` instead of a
//! panic). These aliases keep old call sites compiling; new code should
//! depend on `atlarge-telemetry` directly.

/// Deprecated alias of [`atlarge_telemetry::metrics::Counter`].
#[deprecated(since = "0.1.0", note = "use `atlarge_telemetry::metrics::Counter`")]
pub type Counter = atlarge_telemetry::metrics::Counter;

/// Deprecated alias of [`atlarge_telemetry::metrics::Gauge`].
#[deprecated(since = "0.1.0", note = "use `atlarge_telemetry::metrics::Gauge`")]
pub type Gauge = atlarge_telemetry::metrics::Gauge;

/// Deprecated alias of [`atlarge_telemetry::metrics::Tally`].
#[deprecated(since = "0.1.0", note = "use `atlarge_telemetry::metrics::Tally`")]
pub type Tally = atlarge_telemetry::metrics::Tally;

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    // Regression coverage for the edge cases the move fixed; exercised
    // through the deprecated aliases so the aliases themselves stay tested.

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn gauge_time_average() {
        let mut g = Gauge::new(0.0);
        g.set(0.0, 2.0);
        g.set(10.0, 6.0);
        // [0,10): 2; [10,20): 6 => avg 4
        assert!((g.time_average(0.0, 20.0) - 4.0).abs() < 1e-12);
        assert_eq!(g.value(), 6.0);
    }

    #[test]
    fn gauge_zero_duration_window_is_instantaneous_level() {
        let mut g = Gauge::new(0.0);
        g.set(5.0, 3.0);
        // A zero-duration window used to be an integration corner; it now
        // reports the level holding at that instant.
        assert_eq!(g.time_average(5.0, 5.0), 3.0);
        assert_eq!(g.mean(), 3.0);
        assert!(g.mean().is_finite());
    }

    #[test]
    fn empty_tally_summarizes_without_panicking() {
        let t = Tally::new();
        assert!(t.summary().is_none());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn tally_summary() {
        let mut t = Tally::new();
        for x in [1.0, 2.0, 3.0] {
            t.record(x);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.summary().expect("non-empty").median(), 2.0);
    }
}
