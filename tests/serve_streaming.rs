//! Integration tests of the server's streaming observability plane:
//! `/watch` windows, `/metrics` exposition validity, request-id
//! traceability, and — most importantly — mid-stream client hangups:
//! a dropped `/trace` or `/watch` consumer must cancel the work it was
//! watching, return the worker slot, and leave statistics intact.

use atlarge::exp::registry::{CellOutput, CellScenario, ParamSpec};
use atlarge::exp::{CancelToken, Registry};
use atlarge::obsv::jsonl::parse;
use atlarge::obsv::PulseLine;
use atlarge::serve::client::{get, get_stream};
use atlarge::serve::{ServeConfig, Server};
use atlarge::stats::Summary;
use atlarge::telemetry::tracer::Tracer;
use std::collections::BTreeMap;

/// A fast fixture cell.
struct QuickCell;

impl CellScenario for QuickCell {
    fn domain(&self) -> &str {
        "quick"
    }
    fn describe(&self) -> &str {
        "fast test cell"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![ParamSpec::optional("x", "a number", "1")]
    }
    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        _cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        let x: f64 = params["x"].parse().map_err(|e| format!("x: {e}"))?;
        for rep in 0..replications as u64 {
            tracer.on_dispatch(rep as f64, "tick", 0, rep, None);
        }
        Ok(CellOutput {
            metrics: vec![(
                "y".to_string(),
                Summary::from_iter((0..replications).map(|_| x + seed as f64)),
            )],
            notes: vec![],
        })
    }
}

/// A cell that streams many trace records per replication and honors
/// cancellation between replications — the fixture for hangup tests.
/// Untraced (NullTracer) runs finish instantly, so `/run` against this
/// domain stays fast.
struct ChattyCell;

impl CellScenario for ChattyCell {
    fn domain(&self) -> &str {
        "chatty"
    }
    fn describe(&self) -> &str {
        "streams many records, cancellable between replications"
    }
    fn params(&self) -> Vec<ParamSpec> {
        vec![]
    }
    fn run_cell(
        &self,
        _params: &BTreeMap<String, String>,
        _seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String> {
        for rep in 0..replications as u64 {
            if cancel.is_cancelled() {
                return Err("cancelled".to_string());
            }
            // Enough writes per replication that a hung-up socket is
            // noticed quickly (the sink latches on the first failure).
            for i in 0..512u64 {
                tracer.on_dispatch(rep as f64, "chat", 0, rep * 512 + i, None);
            }
        }
        Ok(CellOutput {
            metrics: vec![("done".to_string(), Summary::from_slice(&[1.0]))],
            notes: vec![],
        })
    }
}

fn registry() -> Registry {
    let mut registry = Registry::new();
    registry.register(Box::new(QuickCell));
    registry.register(Box::new(ChattyCell));
    registry
}

#[test]
fn watch_streams_windows_that_count_real_traffic() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // Traffic before the stream opens: one miss, one hit.
    let cold = get(&addr, "/run?domain=quick&x=2").expect("cold");
    assert_eq!(cold.status, 200);
    let warm = get(&addr, "/run?domain=quick&x=2").expect("warm");
    assert_eq!(warm.header("X-Atlarge-Cache"), Some("hit"));

    let mut stream = get_stream(&addr, "/watch?windows=3&window_ms=150").expect("watch opens");
    assert_eq!(stream.status, 200);
    assert!(
        stream.header("X-Atlarge-Request").is_some(),
        "watch carries a request id"
    );

    // Traffic while the stream is live, so some window counts it.
    for i in 0..5 {
        let r = get(&addr, &format!("/run?domain=quick&x={i}")).expect("run");
        assert_eq!(r.status, 200);
    }

    let mut pulses = Vec::new();
    while let Some(line) = stream.next_line().expect("stream intact") {
        let value = parse(&line).expect("valid JSON line");
        pulses.push(PulseLine::from_json(&value).expect("pulse line"));
    }
    assert_eq!(pulses.len(), 3, "windows=3 bounds the stream");
    for p in &pulses {
        assert!(p.window_ms >= 100.0, "window_ms {}", p.window_ms);
        assert_eq!(p.slo_state, "ok");
        assert!(p.slo_healthy);
    }
    let total: u64 = pulses.iter().map(|p| p.requests).sum();
    assert!(total >= 5, "live traffic shows up in windows, got {total}");
    let with_latency = pulses.iter().find(|p| p.requests > 0).expect("traffic");
    assert!(with_latency.p99_ms.is_some(), "busy windows carry p99");

    let stats = get(&addr, "/stats").expect("stats");
    assert!(
        stats.body_str().contains("\"watch_streams\":1"),
        "{}",
        stats.body_str()
    );
    server.shutdown();
}

#[test]
fn request_ids_are_traceable_from_header_to_stream() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let run = get(&addr, "/run?domain=quick&x=7").expect("run");
    let run_id: u64 = run
        .header("X-Atlarge-Request")
        .expect("run carries a request id")
        .parse()
        .expect("numeric id");

    let trace = get(&addr, "/trace?domain=quick&x=7&replications=2").expect("trace");
    let trace_id: u64 = trace
        .header("X-Atlarge-Request")
        .expect("trace carries a request id")
        .parse()
        .expect("numeric id");
    assert!(trace_id > run_id, "ids are monotone per server");

    // The stream's server_span record carries the same id the header
    // promised, with per-stage wall durations.
    let span_line = trace
        .body_str()
        .lines()
        .find(|l| l.contains("\"kind\":\"server_span\""))
        .expect("trace streams its serving-side span")
        .to_string();
    let span = parse(&span_line).expect("valid JSON");
    assert_eq!(span.u64_field("req"), Some(trace_id));
    assert_eq!(span.str_field("domain"), Some("quick"));
    assert_eq!(span.str_field("outcome"), Some("stream"));
    assert!(span.f64_field("run_ms").expect("run stage") >= 0.0);
    server.shutdown();
}

#[test]
fn metrics_exposition_is_valid_prometheus_text() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    for i in 0..4 {
        get(&addr, &format!("/run?domain=quick&x={i}")).expect("run");
    }
    get(&addr, "/run?domain=quick&x=0").expect("hit");

    let metrics = get(&addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .header("Content-Type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "{:?}",
        metrics.header("Content-Type")
    );
    let text = metrics.body_str();
    for needle in [
        "# TYPE atlarge_requests_total counter",
        "atlarge_requests_total 5",
        "atlarge_cache_hits_total 1",
        "# TYPE atlarge_request_seconds histogram",
        "atlarge_request_seconds_bucket{domain=\"quick\",le=\"+Inf\"}",
        "atlarge_request_seconds_sum{domain=\"quick\"}",
        "atlarge_request_seconds_count{domain=\"quick\"} 5",
        "atlarge_stage_seconds_bucket{stage=\"write\"",
        "atlarge_slo_burn_rate{objective=\"latency\",window=\"5m\"}",
        "atlarge_healthy 1",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // Cumulative bucket counts are monotone and end at the _count.
    let bucket_counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("atlarge_request_seconds_bucket{domain=\"quick\""))
        .map(|l| l.rsplit(' ').next().unwrap().parse().expect("int"))
        .collect();
    assert!(!bucket_counts.is_empty());
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "buckets must be cumulative: {bucket_counts:?}"
    );
    assert_eq!(*bucket_counts.last().unwrap(), 5, "+Inf equals _count");
    server.shutdown();
}

#[test]
fn trace_client_hangup_cancels_the_run_and_frees_the_slot() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // Open a trace of a long chatty run on the only worker, read a few
    // records to prove the stream is live, then hang up mid-stream.
    let mut stream =
        get_stream(&addr, "/trace?domain=chatty&replications=64").expect("trace opens");
    assert_eq!(stream.status, 200);
    for _ in 0..3 {
        let line = stream.next_line().expect("live").expect("records flowing");
        assert!(line.contains("\"kind\":\"dispatch\""), "{line}");
    }
    drop(stream); // hangup: the sink's next write latches and cancels

    // The cancel must reclaim the single worker: an untraced run of
    // the same domain completes (instantly once scheduled). Retry
    // while the cancelled run drains.
    let mut recovered = false;
    for _ in 0..200 {
        let r = get(&addr, "/run?domain=chatty").expect("server responsive");
        if r.status == 200 {
            recovered = true;
            break;
        }
        assert_eq!(r.status, 503, "only shedding is acceptable while draining");
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    assert!(recovered, "worker slot never came back after hangup");

    // Stats survived the hangup uncorrupted and the shed requests (if
    // any) were counted; the stream itself was counted exactly once.
    let stats = get(&addr, "/stats").expect("stats");
    let body = stats.body_str();
    assert!(body.contains("\"trace_streams\":1"), "{body}");
    assert!(body.contains("\"cache_misses\":1"), "{body}");
    server.shutdown();
}

#[test]
fn watch_client_hangup_leaves_the_server_healthy() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // An unbounded watch stream, abandoned after the first window.
    let mut stream = get_stream(&addr, "/watch?window_ms=100").expect("watch opens");
    assert_eq!(stream.status, 200);
    let first = stream.next_line().expect("live").expect("first window");
    assert!(first.contains("\"kind\":\"pulse\""), "{first}");
    drop(stream);

    // The server keeps serving and shuts down cleanly (the abandoned
    // watch thread notices the hangup on its next window write).
    let r = get(&addr, "/run?domain=quick&x=1").expect("still serving");
    assert_eq!(r.status, 200);
    let health = get(&addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body_str().contains("\"status\":\"ok\""));
    server.shutdown();
}

#[test]
fn healthz_reports_pool_cache_and_slo_detail() {
    let server = Server::start(
        registry(),
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();
    get(&addr, "/run?domain=quick&x=1").expect("run");

    let health = get(&addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let v = parse(health.body_str().trim()).expect("valid JSON");
    assert_eq!(v.str_field("status"), Some("ok"));
    assert_eq!(
        v.get("domains").and_then(|d| d.as_arr()).map(<[_]>::len),
        Some(2)
    );
    let pool = v.get("pool").expect("pool block");
    assert_eq!(pool.u64_field("workers"), Some(2));
    assert!(pool.f64_field("saturation").expect("saturation") < 1.0);
    let cache = v.get("cache").expect("cache block");
    assert_eq!(cache.u64_field("entries"), Some(1));
    let slo = v.get("slo").expect("slo block");
    assert_eq!(slo.str_field("state"), Some("ok"));
    assert_eq!(slo.bool_field("healthy"), Some(true));
    assert!(
        slo.get("availability")
            .and_then(|a| a.f64_field("burn_1m"))
            .is_some(),
        "burn rates exposed"
    );
    server.shutdown();
}
