//! Vicissitude: shifting bottlenecks in big-data workflows (\[38\], \[67\]).
//!
//! While analyzing the full BTWorld dataset with a MapReduce pipeline, the
//! team discovered *vicissitude*: "a class of phenomena where several
//! known bottlenecks appear seemingly at random in various parts of the
//! system". This module models a staged analytics pipeline whose
//! per-chunk stage costs depend on data properties (skew, size, overlap);
//! as chunks stream through, the bottleneck stage shifts. The analysis
//! detects the shifts and scores how "vicissitudinous" a run is by the
//! entropy of its bottleneck distribution.

use atlarge_stats::dist::{LogNormal, Sample};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The stages of the BTWorld-like analytics pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Parse raw samples.
    Ingest,
    /// Shuffle by key (tracker/swarm).
    Shuffle,
    /// Aggregate per key.
    Aggregate,
    /// Join across time windows.
    Join,
    /// Write results.
    Output,
}

impl Stage {
    /// All stages in pipeline order.
    pub fn all() -> [Stage; 5] {
        [
            Stage::Ingest,
            Stage::Shuffle,
            Stage::Aggregate,
            Stage::Join,
            Stage::Output,
        ]
    }
}

/// Per-chunk data properties driving stage costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkProfile {
    /// Raw size multiplier.
    pub size: f64,
    /// Key skew (hot trackers) — hits shuffle and aggregate.
    pub skew: f64,
    /// Cross-window overlap — hits the join.
    pub overlap: f64,
}

/// One processed chunk: per-stage times and the bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkResult {
    /// Time spent per stage, aligned with [`Stage::all`].
    pub stage_times: [f64; 5],
    /// The slowest stage.
    pub bottleneck: Stage,
}

/// Processes `chunks` data chunks with seeded random data properties and
/// returns per-chunk results.
pub fn run_pipeline(chunks: usize, seed: u64) -> Vec<ChunkResult> {
    let mut rng = StdRng::seed_from_u64(seed);
    let size_d = LogNormal::with_mean_cv(1.0, 0.6);
    let skew_d = LogNormal::with_mean_cv(1.0, 1.2);
    let overlap_d = LogNormal::with_mean_cv(1.0, 1.5);
    (0..chunks)
        .map(|_| {
            let p = ChunkProfile {
                size: size_d.sample(&mut rng),
                skew: skew_d.sample(&mut rng),
                overlap: overlap_d.sample(&mut rng),
            };
            process_chunk(&p)
        })
        .collect()
}

/// Deterministic stage-cost model for one chunk.
pub fn process_chunk(p: &ChunkProfile) -> ChunkResult {
    let stage_times = [
        10.0 * p.size,                // ingest scales with size
        6.0 * p.size * p.skew,        // shuffle suffers under skew
        4.0 * p.size * p.skew.sqrt(), // aggregate, milder skew effect
        5.0 * p.size * p.overlap,     // join scales with overlap
        2.0 * p.size,                 // output
    ];
    let (bi, _) = stage_times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
        .expect("five stages");
    ChunkResult {
        stage_times,
        bottleneck: Stage::all()[bi],
    }
}

/// The vicissitude score: normalized entropy of the bottleneck
/// distribution across chunks (0 = one fixed bottleneck, 1 = uniform
/// shifting).
pub fn vicissitude_score(results: &[ChunkResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 5];
    for r in results {
        let idx = Stage::all()
            .iter()
            .position(|&s| s == r.bottleneck)
            .expect("stage known");
        counts[idx] += 1;
    }
    let n = results.len() as f64;
    let entropy: f64 = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    entropy / (5f64).log2()
}

/// Number of bottleneck *shifts*: adjacent chunks whose bottleneck
/// differs.
pub fn bottleneck_shifts(results: &[ChunkResult]) -> usize {
    results
        .windows(2)
        .filter(|w| w[0].bottleneck != w[1].bottleneck)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_chunks_have_fixed_bottleneck() {
        let p = ChunkProfile {
            size: 1.0,
            skew: 1.0,
            overlap: 1.0,
        };
        let results: Vec<ChunkResult> = (0..50).map(|_| process_chunk(&p)).collect();
        assert_eq!(vicissitude_score(&results), 0.0);
        assert_eq!(bottleneck_shifts(&results), 0);
        assert_eq!(results[0].bottleneck, Stage::Ingest);
    }

    #[test]
    fn skew_moves_the_bottleneck_to_shuffle() {
        let p = ChunkProfile {
            size: 1.0,
            skew: 5.0,
            overlap: 1.0,
        };
        assert_eq!(process_chunk(&p).bottleneck, Stage::Shuffle);
    }

    #[test]
    fn overlap_moves_the_bottleneck_to_join() {
        let p = ChunkProfile {
            size: 1.0,
            skew: 1.0,
            overlap: 4.0,
        };
        assert_eq!(process_chunk(&p).bottleneck, Stage::Join);
    }

    #[test]
    fn realistic_runs_exhibit_vicissitude() {
        // The [38] phenomenon: bottlenecks appear "seemingly at random in
        // various parts of the system".
        let results = run_pipeline(500, 9);
        let score = vicissitude_score(&results);
        assert!(score > 0.4, "vicissitude score {score}");
        assert!(bottleneck_shifts(&results) > 100);
        // At least three distinct stages bottleneck at some point.
        let distinct: std::collections::BTreeSet<Stage> =
            results.iter().map(|r| r.bottleneck).collect();
        assert!(distinct.len() >= 3, "distinct bottlenecks {distinct:?}");
    }

    #[test]
    fn score_is_bounded() {
        let results = run_pipeline(100, 3);
        let s = vicissitude_score(&results);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(vicissitude_score(&[]), 0.0);
    }
}
