//! Tables 1–3 as machine-checkable data.
//!
//! Table 1 gives the framework overview (Who/What/How), Table 2 the eight
//! core principles, Table 3 the ten challenges with their links back to
//! principles. Encoding them as data lets the test suite verify the
//! cross-reference structure the paper asserts (every challenge traces to
//! at least one principle; categories partition both sets identically).

use std::fmt;

/// The four categories shared by principles (Table 2) and challenges
/// (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// The central premise: design needs design.
    Highest,
    /// Systems aspects.
    Systems,
    /// Peopleware aspects.
    Peopleware,
    /// Methodological aspects.
    Methodology,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Category::Highest => "highest",
            Category::Systems => "systems",
            Category::Peopleware => "peopleware",
            Category::Methodology => "methodology",
        })
    }
}

/// One of the eight core principles of MCS design (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Principle {
    /// Index 1–8.
    pub index: u8,
    /// Category per Table 2.
    pub category: Category,
    /// The table's "key aspects" column.
    pub key_aspects: &'static str,
    /// The principle statement from §4.
    pub statement: &'static str,
}

/// One of the ten challenges of MCS design (Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// Index 1–10.
    pub index: u8,
    /// Category per Table 3.
    pub category: Category,
    /// The table's "key aspects" column.
    pub key_aspects: &'static str,
    /// Indices of the principles this challenge links to (the "Pr."
    /// column).
    pub principles: &'static [u8],
}

/// The eight principles of Table 2.
pub fn principles() -> Vec<Principle> {
    vec![
        Principle {
            index: 1,
            category: Category::Highest,
            key_aspects: "design of design",
            statement: "Design needs design.",
        },
        Principle {
            index: 2,
            category: Category::Systems,
            key_aspects: "age of distributed ecosystems",
            statement: "This is the Age of Distributed Ecosystems.",
        },
        Principle {
            index: 3,
            category: Category::Systems,
            key_aspects: "NFRs, phenomena",
            statement: "Dynamic non-functional properties and phenomena are first-class concerns.",
        },
        Principle {
            index: 4,
            category: Category::Systems,
            key_aspects: "RM&S, self-awareness",
            statement: "Resource Management and Scheduling, and its interplay with various \
                        sources of information to achieve local and global Self-Awareness, \
                        are key concerns.",
        },
        Principle {
            index: 5,
            category: Category::Peopleware,
            key_aspects: "education in design",
            statement: "Education practices for MCS must ensure the competence and integrity \
                        needed for experimenting, creating, and operating ecosystems.",
        },
        Principle {
            index: 6,
            category: Category::Peopleware,
            key_aspects: "pragmatic, innovative, ethical",
            statement: "Design communities can foster and curate pragmatic, innovative, and \
                        ethical design practices.",
        },
        Principle {
            index: 7,
            category: Category::Methodology,
            key_aspects: "design science, practice, culture",
            statement: "We understand and create together a science, practice, and culture \
                        of MCS design.",
        },
        Principle {
            index: 8,
            category: Category::Methodology,
            key_aspects: "evolution and emergence",
            statement: "We are aware of the history and evolution of MCS designs, key \
                        debates, and evolving patterns.",
        },
    ]
}

/// The ten challenges of Table 3, with their principle links.
pub fn challenges() -> Vec<Challenge> {
    vec![
        Challenge {
            index: 1,
            category: Category::Highest,
            key_aspects: "Design of design",
            principles: &[1],
        },
        Challenge {
            index: 2,
            category: Category::Highest,
            key_aspects: "What is good design?",
            principles: &[1],
        },
        Challenge {
            index: 3,
            category: Category::Highest,
            key_aspects: "Design space exploration",
            principles: &[1],
        },
        Challenge {
            index: 4,
            category: Category::Systems,
            key_aspects: "Design for ecosystems",
            principles: &[2],
        },
        Challenge {
            index: 5,
            category: Category::Systems,
            key_aspects: "Catalog for MCS design",
            principles: &[3, 4],
        },
        Challenge {
            index: 6,
            category: Category::Peopleware,
            key_aspects: "Education, curriculum",
            principles: &[5],
        },
        Challenge {
            index: 7,
            category: Category::Peopleware,
            key_aspects: "Community engagement",
            principles: &[6],
        },
        Challenge {
            index: 8,
            category: Category::Methodology,
            key_aspects: "Documenting designs",
            principles: &[5, 6, 7],
        },
        Challenge {
            index: 9,
            category: Category::Methodology,
            key_aspects: "Design in practice",
            principles: &[7],
        },
        Challenge {
            index: 10,
            category: Category::Methodology,
            key_aspects: "Organizational similarity",
            principles: &[7],
        },
    ]
}

/// One row of the framework overview (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverviewRow {
    /// The question group: "Who?", "What?", or "How?".
    pub question: &'static str,
    /// The aspect named in the table.
    pub aspect: &'static str,
    /// The table's summary of the aspect.
    pub summary: &'static str,
}

/// The framework overview of Table 1.
pub fn overview() -> Vec<OverviewRow> {
    vec![
        OverviewRow {
            question: "Who?",
            aspect: "Stakeholders",
            summary: "designers, scientists, engineers, students, society",
        },
        OverviewRow {
            question: "What?",
            aspect: "Central Paradigm",
            summary: "design, different from science and engineering",
        },
        OverviewRow {
            question: "What?",
            aspect: "Focus",
            summary: "ecosystems, systems within; structure, organization, dynamics",
        },
        OverviewRow {
            question: "What?",
            aspect: "Concerns",
            summary: "functional and non-functional properties; phenomena, evolution",
        },
        OverviewRow {
            question: "How?",
            aspect: "Design Thinking",
            summary: "abductive thinking, processes, co-evolving problem-solution",
        },
        OverviewRow {
            question: "How?",
            aspect: "Exploration",
            summary: "design space, process to explore",
        },
        OverviewRow {
            question: "How?",
            aspect: "Problem-finding",
            summary: "structured, ill-defined, wicked",
        },
        OverviewRow {
            question: "How?",
            aspect: "Problem-solving",
            summary: "pragmatic, innovative, ethical",
        },
        OverviewRow {
            question: "How?",
            aspect: "Reporting",
            summary: "articles, software, data",
        },
    ]
}

/// Verifies the catalog's internal consistency: indices are contiguous,
/// every challenge links to existing principles, and the category sets
/// coincide. Returns a list of violations (empty when consistent).
pub fn integrity_violations() -> Vec<String> {
    let mut violations = Vec::new();
    let ps = principles();
    let cs = challenges();
    for (i, p) in ps.iter().enumerate() {
        if p.index as usize != i + 1 {
            violations.push(format!("principle index {} out of order", p.index));
        }
    }
    for (i, c) in cs.iter().enumerate() {
        if c.index as usize != i + 1 {
            violations.push(format!("challenge index {} out of order", c.index));
        }
        if c.principles.is_empty() {
            violations.push(format!("challenge C{} links no principles", c.index));
        }
        for &pi in c.principles {
            if !ps.iter().any(|p| p.index == pi) {
                violations.push(format!("challenge C{} links missing P{pi}", c.index));
            }
        }
    }
    // Table 3's "Pr." column links challenges to P1–P7 only; P8 (history
    // and evolution awareness) is the paper's one principle without a
    // dedicated challenge. Mirror that exactly.
    for p in &ps {
        let linked = cs.iter().any(|c| c.principles.contains(&p.index));
        if !linked && p.index != 8 {
            violations.push(format!("principle P{} addressed by no challenge", p.index));
        }
        if linked && p.index == 8 {
            violations.push("P8 unexpectedly linked; Table 3 leaves it unlinked".to_string());
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_principles_ten_challenges() {
        assert_eq!(principles().len(), 8);
        assert_eq!(challenges().len(), 10);
    }

    #[test]
    fn catalog_is_internally_consistent() {
        let v = integrity_violations();
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn category_counts_match_tables() {
        let count = |cat: Category| principles().iter().filter(|p| p.category == cat).count();
        assert_eq!(count(Category::Highest), 1);
        assert_eq!(count(Category::Systems), 3);
        assert_eq!(count(Category::Peopleware), 2);
        assert_eq!(count(Category::Methodology), 2);

        let ccount = |cat: Category| challenges().iter().filter(|c| c.category == cat).count();
        assert_eq!(ccount(Category::Highest), 3);
        assert_eq!(ccount(Category::Systems), 2);
        assert_eq!(ccount(Category::Peopleware), 2);
        assert_eq!(ccount(Category::Methodology), 3);
    }

    #[test]
    fn challenge_links_match_table3() {
        let cs = challenges();
        assert_eq!(cs[4].principles, &[3, 4]); // C5 -> P3-4
        assert_eq!(cs[7].principles, &[5, 6, 7]); // C8 -> P5-7
        assert_eq!(cs[9].principles, &[7]); // C10 -> P7
    }

    #[test]
    fn overview_answers_who_what_how() {
        let rows = overview();
        assert_eq!(rows.len(), 9);
        let whos = rows.iter().filter(|r| r.question == "Who?").count();
        let whats = rows.iter().filter(|r| r.question == "What?").count();
        let hows = rows.iter().filter(|r| r.question == "How?").count();
        assert_eq!((whos, whats, hows), (1, 3, 5));
    }

    #[test]
    fn categories_display() {
        assert_eq!(Category::Peopleware.to_string(), "peopleware");
    }
}
