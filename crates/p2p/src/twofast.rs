//! 2fast: collaborative downloads (\[68\]).
//!
//! The bandwidth-asymmetry finding (\[62\]) made a leecher's tit-for-tat
//! share proportional to its (small) ADSL upload, leaving its (large)
//! download capacity idle. 2fast lets a *collector* enlist *helpers* from
//! its social group: each helper downloads distinct pieces using its own
//! tit-for-tat standing and relays them to the collector, demanding no
//! immediate reciprocation. The collector's effective rate becomes the sum
//! of the group's earned shares, up to its download capacity.
//!
//! This module implements the group-rate model and the comparison
//! experiment the paper summarizes as "2fast ... can improve significantly
//! the performance of BT-based file-sharing".

use crate::swarm::Bandwidth;

/// A 2fast download group: one collector plus helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// The collector's access link.
    pub collector: Bandwidth,
    /// The helpers' access links.
    pub helpers: Vec<Bandwidth>,
}

impl Group {
    /// Creates a group of a collector and `n` identical helpers.
    pub fn uniform(link: Bandwidth, n: usize) -> Self {
        Group {
            collector: link,
            helpers: vec![link; n],
        }
    }
}

/// Swarm-side parameters of the rate model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwarmSide {
    /// Aggregate upload capacity peers dedicate to strangers, bytes/s.
    pub total_upload: f64,
    /// Sum of tit-for-tat weights of competing leechers, bytes/s.
    pub competing_weight: f64,
    /// Optimistic-unchoke floor weight, bytes/s.
    pub optimistic_floor: f64,
}

/// Tit-for-tat share a single peer with upload `up` earns from the swarm.
pub fn tit_for_tat_share(up: f64, swarm: &SwarmSide) -> f64 {
    let w = up + swarm.optimistic_floor;
    swarm.total_upload * w / (swarm.competing_weight + w)
}

/// Effective download rate of a standalone leecher.
pub fn standalone_rate(link: Bandwidth, swarm: &SwarmSide) -> f64 {
    tit_for_tat_share(link.up, swarm).min(link.down)
}

/// Effective download rate of a 2fast collector: the group's earned
/// shares (helpers relay at up to their upload capacity), capped by the
/// collector's download link.
pub fn group_rate(group: &Group, swarm: &SwarmSide) -> f64 {
    let own = tit_for_tat_share(group.collector.up, swarm);
    let helped: f64 = group
        .helpers
        .iter()
        .map(|h| tit_for_tat_share(h.up, swarm).min(h.up.max(h.down)))
        .sum();
    (own + helped).min(group.collector.down)
}

/// Speed-up of 2fast over a standalone download for the same collector.
pub fn speedup(group: &Group, swarm: &SwarmSide) -> f64 {
    group_rate(group, swarm) / standalone_rate(group.collector, swarm).max(1e-9)
}

/// The paper-shaped experiment: ADSL peers (download:upload = `ratio`),
/// group sizes 0..=`max_helpers`. Returns `(helpers, speedup)` rows.
pub fn speedup_curve(up: f64, ratio: f64, max_helpers: usize) -> Vec<(usize, f64)> {
    let link = Bandwidth::adsl(up, ratio);
    let swarm = SwarmSide {
        total_upload: up * 200.0, // a healthy swarm of ~200 peer-uploads
        competing_weight: up * 100.0,
        optimistic_floor: up * 0.1,
    };
    (0..=max_helpers)
        .map(|n| {
            let g = Group::uniform(link, n);
            (n, speedup(&g, &swarm))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swarm() -> SwarmSide {
        SwarmSide {
            total_upload: 10e6,
            competing_weight: 5e6,
            optimistic_floor: 10e3,
        }
    }

    #[test]
    fn zero_helpers_is_standalone() {
        let link = Bandwidth::adsl(100e3, 8.0);
        let g = Group::uniform(link, 0);
        assert!((group_rate(&g, &swarm()) - standalone_rate(link, &swarm())).abs() < 1e-9);
        assert!((speedup(&g, &swarm()) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn helpers_speed_up_asymmetric_collectors() {
        // The headline 2fast result: with ADSL asymmetry, helpers unlock
        // the idle download capacity.
        let link = Bandwidth::adsl(100e3, 8.0);
        let g = Group::uniform(link, 4);
        let s = speedup(&g, &swarm());
        assert!(s > 2.0, "speedup {s} should be substantial");
    }

    #[test]
    fn download_link_caps_the_group() {
        // With enough helpers the collector saturates its download link;
        // more helpers add nothing.
        let curve = speedup_curve(64e3, 8.0, 30);
        let last = curve.last().unwrap().1;
        let mid = curve[10].1;
        assert!((last - mid).abs() / mid < 0.5, "saturation expected");
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn symmetric_links_gain_less() {
        // With symmetric links the standalone is not upload-starved, so
        // 2fast's relative gain is smaller.
        let adsl = Bandwidth::adsl(100e3, 8.0);
        let sym = Bandwidth::symmetric(100e3);
        let s_adsl = speedup(&Group::uniform(adsl, 4), &swarm());
        let s_sym = speedup(&Group::uniform(sym, 4), &swarm());
        assert!(
            s_adsl > s_sym,
            "asymmetric gain {s_adsl} should exceed symmetric {s_sym}"
        );
    }

    #[test]
    fn curve_starts_at_one() {
        let curve = speedup_curve(64e3, 8.0, 5);
        assert_eq!(curve[0].0, 0);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(curve.len(), 6);
    }
}
