//! `atlarge-evolve` — live policy evolution with versioned state
//! capsules.
//!
//! The paper's vicissitude and portfolio-scheduling stories (§2–§4) are
//! about ecosystems that *change while running*: bottlenecks shift,
//! policies are retired and replaced, and the replacement must pick up
//! where its predecessor left off. This crate is the enabling mechanism —
//! Theseus-style component swaps behind versioned, capture/resume-able
//! interfaces:
//!
//! - [`capsule`] — the [`Capsule`] state container: a schema-versioned,
//!   deterministically byte-encoded snapshot of a component's state.
//! - [`Evolvable`] — the object-safe capture → transform → resume
//!   contract a live-swappable component implements.
//! - [`swap`] — swap orchestration: [`SwapPlan`]s parsed from compact
//!   specs (`"token@1200"`, `"adapt@peak12"`), sequenced triggers
//!   (scheduled sim-time or metric threshold), and the [`handoff`]
//!   that moves one component's capsule into its successor.
//!
//! The correctness keystone is the *identity swap*: replacing a policy
//! with itself mid-run must be observationally free — byte-identical
//! event streams and outputs versus never swapping (the swap's own
//! tracer span aside). The domain crates prove this with their
//! equivalence harnesses.
//!
//! # Examples
//!
//! ```
//! use atlarge_evolve::{Capsule, CapsuleError, Evolvable, Identity, SwapPlan};
//!
//! #[derive(Debug, PartialEq)]
//! struct Counter {
//!     count: u64,
//! }
//!
//! impl Evolvable for Counter {
//!     fn capsule_kind(&self) -> &'static str {
//!         "example.counter"
//!     }
//!     fn capture(&self, _now: f64) -> Capsule {
//!         Capsule::new(self.capsule_kind(), 1).with_u64("count", self.count)
//!     }
//!     fn resume(&mut self, capsule: &Capsule, _now: f64) -> Result<(), CapsuleError> {
//!         capsule.expect_kind(self.capsule_kind())?;
//!         self.count = capsule.u64_field("count")?;
//!         Ok(())
//!     }
//! }
//!
//! let old = Counter { count: 41 };
//! let mut successor = Counter { count: 0 };
//! let h = atlarge_evolve::handoff(&old, &mut successor, &Identity, 100.0).unwrap();
//! assert!(h.resumed);
//! assert_eq!(successor.count, 41);
//!
//! let mut plan = SwapPlan::parse("token@1200+adapt@peak12").unwrap();
//! assert!(plan.due(100.0, 0.0).is_none());
//! assert_eq!(plan.due(1200.0, 0.0).unwrap().to, "token");
//! ```

pub mod capsule;
pub mod swap;

pub use capsule::{Capsule, CapsuleError, Value};
pub use swap::{
    handoff, swap_span_label, CapsuleTransform, Handoff, Identity, SwapPlan, SwapRecord, SwapSpec,
    SwapTrigger,
};

/// A component whose state can be captured into a [`Capsule`] and
/// resumed from one — the contract behind every live swap.
///
/// The trait is object-safe so orchestrators hold `Box<dyn …>` rosters.
/// Capsules carry the component's *full* serializable state,
/// configuration included: a successor that resumes a capsule becomes a
/// continuation of its predecessor, and a
/// [`CapsuleTransform`] between capture and resume is where evolution
/// happens (rewriting a config field, migrating a schema version).
///
/// Implementations must be deterministic: capturing the same state twice
/// yields byte-identical capsules ([`Capsule::to_bytes`]), and
/// `capture` → `resume` on a fresh instance reproduces the original
/// behavior exactly.
pub trait Evolvable {
    /// Identifies the component implementation (e.g.
    /// `"autoscaler.token"`). Capture and resume only connect when the
    /// kinds match; a cross-kind swap starts the successor fresh.
    fn capsule_kind(&self) -> &'static str;

    /// The capsule schema version this component writes (bumped when the
    /// field layout changes, so transforms can migrate old capsules).
    fn capsule_version(&self) -> u32 {
        1
    }

    /// Snapshots the component's state at simulated time `now`.
    fn capture(&self, now: f64) -> Capsule;

    /// Restores state from `capsule` at simulated time `now`. Must
    /// verify the capsule kind ([`Capsule::expect_kind`]) and reject
    /// fields it cannot adopt.
    fn resume(&mut self, capsule: &Capsule, now: f64) -> Result<(), CapsuleError>;
}
