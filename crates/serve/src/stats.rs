//! Server-side observability: request counters, cache effectiveness,
//! and per-domain latency histograms, rendered as the `/stats` JSON
//! document.
//!
//! Latencies are recorded in `log10(milliseconds)` on the workspace's
//! own [`Histogram`] — queries span four orders of magnitude (a cached
//! lookup vs a full Table 9 row), which a linear histogram cannot
//! resolve at both ends. Quantiles convert back to milliseconds on
//! render. Wall time enters exclusively through
//! [`atlarge_telemetry::wall::Stopwatch`] readings taken by the server
//! loop; per the workspace contract those readings feed this report
//! and never a simulation result.

use atlarge_stats::histogram::Histogram;
use atlarge_telemetry::export::{json_f64, json_object, json_str};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// `log10(ms)` histogram bounds: 1 µs to 100 s in 36 bins.
const LOG_MS_LO: f64 = -3.0;
const LOG_MS_HI: f64 = 5.0;
const LOG_MS_BINS: usize = 36;

/// Counters and latency profiles of a running server.
#[derive(Default)]
pub struct ServerStats {
    /// `/run` queries answered (any status).
    pub queries: AtomicU64,
    /// `/run` answers served from the result cache.
    pub cache_hits: AtomicU64,
    /// `/run` answers computed cold.
    pub cache_misses: AtomicU64,
    /// Requests refused with `503` by the admission gate.
    pub rejected: AtomicU64,
    /// Requests answered with `4xx`.
    pub client_errors: AtomicU64,
    /// `/trace` streams started.
    pub trace_streams: AtomicU64,
    latency: Mutex<BTreeMap<String, Histogram>>,
}

impl ServerStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        ServerStats::default()
    }

    /// Records one `/run` latency for `domain`, in milliseconds.
    pub fn record_latency(&self, domain: &str, ms: f64) {
        let log_ms = ms.max(1e-3).log10();
        let mut profiles = self.latency.lock().expect("stats lock");
        profiles
            .entry(domain.to_string())
            .or_insert_with(|| Histogram::new(LOG_MS_LO, LOG_MS_HI, LOG_MS_BINS))
            .record(log_ms);
    }

    /// Cache hit rate in `[0, 1]`; zero before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let total = hits + self.cache_misses.load(Ordering::Relaxed) as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// The `/stats` JSON document. `queue_depth` is sampled by the
    /// caller from the pool at render time.
    pub fn render_json(&self, queue_depth: usize) -> String {
        let latency = {
            let profiles = self.latency.lock().expect("stats lock");
            let rendered: Vec<String> = profiles
                .iter()
                .map(|(domain, h)| {
                    let quantile_ms = |q: f64| {
                        h.quantile(q)
                            .map(|log_ms| 10f64.powf(log_ms))
                            .unwrap_or(0.0)
                    };
                    format!(
                        "{}:{}",
                        json_str(domain),
                        json_object(&[
                            ("count", h.count().to_string()),
                            ("p50_ms", json_f64(quantile_ms(0.5))),
                            ("p99_ms", json_f64(quantile_ms(0.99))),
                        ])
                    )
                })
                .collect();
            format!("{{{}}}", rendered.join(","))
        };
        json_object(&[
            ("queries", self.queries.load(Ordering::Relaxed).to_string()),
            (
                "cache_hits",
                self.cache_hits.load(Ordering::Relaxed).to_string(),
            ),
            (
                "cache_misses",
                self.cache_misses.load(Ordering::Relaxed).to_string(),
            ),
            ("hit_rate", json_f64(self.hit_rate())),
            (
                "rejected",
                self.rejected.load(Ordering::Relaxed).to_string(),
            ),
            (
                "client_errors",
                self.client_errors.load(Ordering::Relaxed).to_string(),
            ),
            (
                "trace_streams",
                self.trace_streams.load(Ordering::Relaxed).to_string(),
            ),
            ("queue_depth", queue_depth.to_string()),
            ("latency_ms", latency),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_and_mixed_traffic() {
        let stats = ServerStats::new();
        assert_eq!(stats.hit_rate(), 0.0);
        stats.cache_hits.fetch_add(3, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn render_includes_counters_and_per_domain_quantiles() {
        let stats = ServerStats::new();
        stats.queries.fetch_add(2, Ordering::Relaxed);
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        stats.record_latency("graph", 0.5);
        stats.record_latency("graph", 80.0);
        stats.record_latency("p2p", 12.0);
        let json = stats.render_json(3);
        assert!(json.contains("\"queries\":2"), "{json}");
        assert!(json.contains("\"hit_rate\":0.5"), "{json}");
        assert!(json.contains("\"queue_depth\":3"), "{json}");
        assert!(json.contains("\"graph\":{\"count\":2"), "{json}");
        assert!(json.contains("\"p2p\":{\"count\":1"), "{json}");
    }

    #[test]
    fn log_scale_resolves_both_fast_and_slow_queries() {
        let stats = ServerStats::new();
        for _ in 0..100 {
            stats.record_latency("d", 0.01); // cached: 10 µs
        }
        stats.record_latency("d", 5_000.0); // cold Table 9 row: 5 s
        let json = stats.render_json(0);
        // p50 stays near the fast mode; p99-ish tail is orders larger.
        let profiles = stats.latency.lock().expect("stats lock");
        let h = profiles.get("d").expect("recorded");
        let p50 = 10f64.powf(h.quantile(0.5).expect("samples"));
        let p999 = 10f64.powf(h.quantile(0.999).expect("samples"));
        assert!(p50 < 1.0, "p50 {p50} should sit at the cached mode");
        assert!(p999 > 100.0, "p999 {p999} should see the slow tail");
        assert!(json.contains("\"count\":101"));
    }
}
