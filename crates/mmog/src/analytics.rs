//! CAMEO: continuous gaming analytics on cloud capacity (\[79\]).
//!
//! CAMEO "combined NoSQL and cloud technology to design one of the first
//! systems for gaming analytics at scale": a stream of player events is
//! continuously aggregated into decisions, on capacity rented elastically
//! "by credit-card". The reproduction processes an event stream through a
//! windowed aggregation under two capacity plans — fixed and elastic —
//! and compares analysis freshness (lag) and cost.

use atlarge_stats::dist::{Normal, Sample};
use atlarge_stats::timeseries::StepSeries;
use atlarge_workload::arrivals::Diurnal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Events one analytics node processes per second.
pub const NODE_RATE: f64 = 50.0;

/// Capacity plan for the analytics cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityPlan {
    /// A fixed number of nodes.
    Fixed(u32),
    /// Nodes follow the event rate with a margin, re-planned per window.
    Elastic {
        /// Capacity margin above the observed rate.
        margin: f64,
    },
}

/// The outcome of one analytics run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyticsResult {
    /// Mean processing lag (seconds of backlog) across windows.
    pub mean_lag: f64,
    /// Peak backlog in events.
    pub peak_backlog: f64,
    /// Node-seconds consumed (cost proxy).
    pub node_seconds: f64,
    /// Per-window `(time, events)` observed.
    pub windows: Vec<(f64, f64)>,
    /// Node allocation over time.
    pub nodes: StepSeries,
}

/// Runs the analytics pipeline over `days` of diurnal player events at
/// `mean_rate` events/s, with `window` seconds per aggregation window.
pub fn run_analytics(
    plan: CapacityPlan,
    days: f64,
    mean_rate: f64,
    window: f64,
    seed: u64,
) -> AnalyticsResult {
    assert!(window > 0.0 && days > 0.0 && mean_rate > 0.0);
    let horizon = days * 86_400.0;
    let mut rng = StdRng::seed_from_u64(seed);
    // Event volumes are huge (millions/day); draw per-window counts from
    // the diurnal rate with Poisson-scale noise instead of materializing
    // every event.
    let process = Diurnal::new(mean_rate, 0.7, 86_400.0, 0.0);
    let noise = Normal::new(0.0, 1.0);
    let n_windows = (horizon / window).ceil() as usize;
    let counts: Vec<f64> = (0..n_windows)
        .map(|i| {
            let t = i as f64 * window + window / 2.0;
            let mean = process.rate_at(t) * window;
            (mean + noise.sample(&mut rng) * mean.sqrt()).max(0.0)
        })
        .collect();
    let mut nodes = StepSeries::new(0.0);
    let mut backlog = 0.0f64;
    let mut lag_sum = 0.0;
    let mut peak_backlog = 0.0f64;
    let mut node_seconds = 0.0;
    let mut windows = Vec::with_capacity(n_windows);
    for (i, &events) in counts.iter().enumerate() {
        let t = i as f64 * window;
        let rate_in = events / window;
        let n = match plan {
            CapacityPlan::Fixed(n) => n,
            CapacityPlan::Elastic { margin } => {
                ((rate_in * (1.0 + margin)) / NODE_RATE).ceil() as u32
            }
        }
        .max(1);
        nodes.push(t, f64::from(n));
        node_seconds += f64::from(n) * window;
        let capacity = f64::from(n) * NODE_RATE * window;
        backlog = (backlog + events - capacity).max(0.0);
        peak_backlog = peak_backlog.max(backlog);
        // Lag: seconds of processing needed to clear the backlog.
        lag_sum += backlog / (f64::from(n) * NODE_RATE);
        windows.push((t, events));
    }
    AnalyticsResult {
        mean_lag: lag_sum / n_windows as f64,
        peak_backlog,
        node_seconds,
        windows,
        nodes,
    }
}

/// The CAMEO comparison: an under-sized fixed cluster vs elastic
/// capacity. Returns `(fixed, elastic)`.
pub fn cameo_comparison(seed: u64) -> (AnalyticsResult, AnalyticsResult) {
    let days = 3.0;
    let mean_rate = 120.0;
    let window = 300.0;
    // Fixed cluster sized for the *mean* rate: drowns at the diurnal peak.
    let fixed_nodes = (mean_rate / NODE_RATE).ceil() as u32;
    let fixed = run_analytics(
        CapacityPlan::Fixed(fixed_nodes),
        days,
        mean_rate,
        window,
        seed,
    );
    let elastic = run_analytics(
        CapacityPlan::Elastic { margin: 0.2 },
        days,
        mean_rate,
        window,
        seed,
    );
    (fixed, elastic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_keeps_analyses_fresh() {
        let (fixed, elastic) = cameo_comparison(3);
        assert!(
            elastic.mean_lag < fixed.mean_lag / 4.0,
            "elastic lag {} vs fixed {}",
            elastic.mean_lag,
            fixed.mean_lag
        );
        assert!(elastic.peak_backlog < fixed.peak_backlog);
    }

    #[test]
    fn elastic_costs_less_than_peak_sized_fixed() {
        // Sizing fixed for the peak keeps lag low but wastes capacity at
        // night — the "scale by credit-card" argument.
        let days = 3.0;
        let peak_nodes = ((120.0 * 1.7) / NODE_RATE).ceil() as u32;
        let fixed_peak = run_analytics(CapacityPlan::Fixed(peak_nodes), days, 120.0, 300.0, 5);
        let elastic = run_analytics(CapacityPlan::Elastic { margin: 0.2 }, days, 120.0, 300.0, 5);
        assert!(fixed_peak.mean_lag < 1.0);
        assert!(
            elastic.node_seconds < 0.9 * fixed_peak.node_seconds,
            "elastic {} vs fixed-peak {}",
            elastic.node_seconds,
            fixed_peak.node_seconds
        );
    }

    #[test]
    fn overload_accumulates_backlog() {
        let r = run_analytics(CapacityPlan::Fixed(1), 1.0, 200.0, 300.0, 7);
        assert!(r.peak_backlog > 0.0);
        assert!(r.mean_lag > 10.0);
    }

    #[test]
    fn windows_cover_horizon() {
        let r = run_analytics(CapacityPlan::Fixed(4), 1.0, 50.0, 600.0, 9);
        assert_eq!(r.windows.len(), (86_400.0f64 / 600.0).ceil() as usize);
    }
}
