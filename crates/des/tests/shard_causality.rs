//! Property tests for cross-shard causality.
//!
//! The sharded kernel's contract is that partitioning is *invisible*:
//! for any entity→shard assignment, any declared (positive) lookahead,
//! and any schedule — including the adversarial ones generated here
//! (tie floods on quantized instants, heavily skewed shard loads,
//! random root batches) — the merged dispatch sequence, final model
//! states, and causal parent links are byte-identical to the 1-shard
//! single-queue run. Zero and negative lookaheads must be rejected
//! before any event executes.

use atlarge_des::shard::{
    EventRecord, LogicalProcess, PartitionError, ShardCtx, ShardedSimulation, StaticPartition,
};
use atlarge_telemetry::recorder::{Recorder, TraceKind};
use atlarge_telemetry::tracer::EventLabel;
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeMap;

/// Every delay in the generated workloads is a multiple of this, and it
/// is also the uniform lookahead: maximal tie pressure, minimal slack.
const QUANTUM: f64 = 0.25;

#[derive(Debug, Clone)]
struct Gossip {
    hops: u8,
}

impl EventLabel for Gossip {
    fn label(&self) -> &'static str {
        "gossip"
    }
}

/// A node that gossips along RNG-chosen edges with RNG-chosen quantized
/// delays, folding everything it observes (time, event id, parent,
/// RNG draws) into a running digest. Any divergence in ordering, id
/// assignment, or RNG stream selection between shard counts shows up in
/// the final digests even if the event log happened to agree.
struct GossipNode {
    n: u32,
    la: f64,
    digest: u64,
}

impl LogicalProcess for GossipNode {
    type Event = Gossip;

    fn handle(&mut self, ev: Gossip, ctx: &mut ShardCtx<'_, Gossip>) {
        let roll = ctx.rng().gen::<u64>();
        self.digest = self
            .digest
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(ctx.now().to_bits())
            .wrapping_add(ctx.event_id())
            .wrapping_add(ctx.parent().map_or(0, |p| p.wrapping_mul(3)))
            .wrapping_add(roll);
        if ev.hops == 0 {
            return;
        }
        let dt = self.la * ((roll % 6) + 1) as f64;
        let target = if self.n > 1 {
            ((u64::from(ctx.entity()) + 1 + (roll >> 7) % u64::from(self.n - 1))
                % u64::from(self.n)) as u32
        } else {
            ctx.entity()
        };
        ctx.send_in(dt, target, Gossip { hops: ev.hops - 1 });
        if roll % 4 == 0 {
            // A same-instant self-event: floods ties within the shard.
            ctx.schedule_in(dt, Gossip { hops: ev.hops / 2 });
        }
    }
}

fn nodes(n: u32, la: f64) -> Vec<GossipNode> {
    (0..n).map(|_| GossipNode { n, la, digest: 0 }).collect()
}

struct RunOutput {
    log: Vec<EventRecord>,
    digests: Vec<u64>,
    /// `(id, parent)` of every dispatch, in replayed trace order.
    dispatches: Vec<(u64, Option<u64>)>,
}

fn run_case(
    assign: &[usize],
    shards: usize,
    la: f64,
    seed: u64,
    roots: &[(u8, u8)],
    threads: usize,
) -> RunOutput {
    let n = assign.len() as u32;
    let part = StaticPartition::from_assignment(assign.to_vec(), shards, la);
    let rec = Recorder::new();
    let mut sim: ShardedSimulation<_, _> =
        ShardedSimulation::new(part, nodes(n, la), seed).expect("valid partition rejected");
    sim = sim
        .with_event_log()
        .with_threads(threads)
        .with_tracer(rec.clone());
    for &(t, e) in roots {
        sim.schedule(
            QUANTUM * f64::from(t % 8),
            u32::from(e) % n,
            Gossip { hops: 6 },
        );
    }
    sim.run();
    let log = sim.take_event_log();
    let digests = sim.into_lps().into_iter().map(|nd| nd.digest).collect();
    let dispatches = rec
        .trace()
        .into_iter()
        .filter_map(|r| match r.kind {
            TraceKind::Dispatch { id, parent, .. } => Some((id, parent)),
            _ => None,
        })
        .collect();
    RunOutput {
        log,
        digests,
        dispatches,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random partitions (including heavily skewed ones — the
    /// assignment strategy happily maps every entity to one shard),
    /// random lookahead, random root batches: the merged pop sequence
    /// and final states equal the 1-shard single-queue run exactly,
    /// with one and with several worker threads.
    #[test]
    fn any_partition_matches_the_single_queue_model(
        assign in proptest::collection::vec(0usize..4, 1..10),
        la_sel in 0usize..3,
        seed in 0u64..u64::MAX,
        roots in proptest::collection::vec((0u8..=255, 0u8..=255), 1..6),
    ) {
        let la = [QUANTUM, 0.5, 1.0][la_sel];
        let shards = assign.iter().max().copied().unwrap_or(0) + 1;
        let reference = run_case(&vec![0; assign.len()], 1, la, seed, &roots, 1);
        prop_assert!(!reference.log.is_empty());
        for threads in [1usize, 2] {
            let got = run_case(&assign, shards, la, seed, &roots, threads);
            prop_assert_eq!(
                &got.log, &reference.log,
                "event log diverged at {} shards / {} threads", shards, threads
            );
            prop_assert_eq!(&got.digests, &reference.digests);
            prop_assert_eq!(&got.dispatches, &reference.dispatches);
        }
    }

    /// Causal parent ids survive shard hops: in the replayed trace of a
    /// maximally-sharded run (one shard per entity), every non-root
    /// dispatch names a parent that was dispatched strictly earlier,
    /// and the `(id, parent)` link set is identical to the 1-shard run.
    #[test]
    fn parent_ids_survive_shard_hops(
        n in 2u32..8,
        seed in 0u64..u64::MAX,
        roots in proptest::collection::vec((0u8..=255, 0u8..=255), 1..4),
    ) {
        let assign: Vec<usize> = (0..n as usize).collect();
        let sharded = run_case(&assign, n as usize, QUANTUM, seed, &roots, 2);
        let reference = run_case(&vec![0; n as usize], 1, QUANTUM, seed, &roots, 1);
        prop_assert_eq!(&sharded.dispatches, &reference.dispatches);

        let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
        for (pos, &(id, parent)) in sharded.dispatches.iter().enumerate() {
            if let Some(p) = parent {
                let ppos = seen.get(&p).copied();
                prop_assert!(
                    ppos.is_some(),
                    "dispatch {} names parent {} that never dispatched", id, p
                );
                prop_assert!(
                    ppos.unwrap_or(usize::MAX) < pos,
                    "parent {} dispatched after child {}", p, id
                );
            }
            seen.insert(id, pos);
        }
    }

    /// Zero, negative, and NaN lookahead edges are rejected up front by
    /// construction — no sharded simulation with an unorderable edge
    /// ever runs an event.
    #[test]
    fn non_positive_lookahead_is_rejected_up_front(
        la_kind in 0usize..3,
        neg in -10.0f64..=0.0,
        shards in 2usize..5,
    ) {
        let la = match la_kind {
            0 => 0.0,
            1 => neg,
            _ => f64::NAN,
        };
        let part = StaticPartition::round_robin(6, shards, la);
        let res: Result<ShardedSimulation<_, GossipNode>, _> =
            ShardedSimulation::new(part, nodes(6, 1.0), 1);
        let err = res.err();
        prop_assert!(
            matches!(
                err,
                Some(PartitionError::BadLookahead { value, .. })
                    if value.is_nan() || value <= 0.0
            ),
            "expected BadLookahead, got {:?}", err
        );
    }
}
