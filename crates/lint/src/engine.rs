//! The analysis engine: walks the workspace, lexes and parses every
//! Rust file, runs the token and structural lint catalogues, applies
//! allowlist directives, and produces a stable-ordered diagnostic
//! report.

use crate::allow::{self, AllowDirective};
use crate::config::LintConfig;
use crate::lexer::{self, Tok, TokKind};
use crate::lints;
use crate::parser;
use crate::structural;
use std::fs;
use std::path::{Path, PathBuf};

/// One reportable diagnostic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative, `/`-separated file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint id.
    pub lint: String,
    /// Stable machine code (`ALnnn`), recorded in JSON output.
    pub code: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: String,
}

impl Diagnostic {
    /// `file:line: [lint] message` — the human rendering's first line.
    pub fn headline(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// The result of linting a workspace (or a single file).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Report {
    /// Gating diagnostics, sorted by (file, line, lint, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics suppressed by a reasoned allowlist directive.
    pub suppressed: usize,
    /// Rust files scanned.
    pub files: usize,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints one file's source text. `rel_path` must be workspace-relative
/// with `/` separators (it drives scope/exempt matching).
pub fn lint_source(rel_path: &str, source: &str, cfg: &LintConfig) -> Report {
    let lexed = lexer::lex(source);
    let test_mask = test_region_mask(&lexed.tokens);
    let file_is_test = path_is_test(rel_path);

    let check = |lint_id: &'static str, tok_idx: usize| {
        let settings = cfg.settings(lint_id);
        if !settings.applies_to(rel_path) {
            return false;
        }
        if settings.include_tests {
            return true;
        }
        !(file_is_test || test_mask[tok_idx])
    };

    let mut findings = lints::run(&lexed.tokens, check);
    let ast = parser::parse(&lexed.tokens);
    findings.extend(structural::run(
        &ast,
        &lexed.tokens,
        rel_path,
        &cfg.layers,
        check,
    ));

    let directives = allow::collect(&lexed);
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    // Usage is tracked per (directive, lint id): a multi-id directive
    // is stale id-by-id.
    let mut used: Vec<Vec<bool>> = directives
        .iter()
        .map(|d| vec![false; d.lints.len()])
        .collect();

    for f in findings {
        match suppressing_directive(&directives, f.lint, f.line) {
            Some((d, id)) => {
                used[d][id] = true;
                suppressed += 1;
            }
            None => diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: f.line,
                lint: f.lint.to_string(),
                code: lints::code_of(f.lint).to_string(),
                message: f.message,
                suggestion: f.suggestion,
            }),
        }
    }

    // Meta-lints: malformed and unused directives are diagnostics too.
    for (i, d) in directives.iter().enumerate() {
        let reasonless = d.reason.as_deref().is_none_or(|r| r.trim().is_empty());
        if reasonless {
            diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: d.line,
                lint: lints::ALLOWLIST_INVALID.to_string(),
                code: lints::code_of(lints::ALLOWLIST_INVALID).to_string(),
                message: "allow directive carries no reason; it suppresses nothing".into(),
                suggestion: "add `reason = \"...\"` explaining why the rule is safe to break here"
                    .into(),
            });
            continue;
        }
        if let Some(unknown) = d.lints.iter().find(|l| !lints::is_known(l)) {
            diagnostics.push(Diagnostic {
                file: rel_path.to_string(),
                line: d.line,
                lint: lints::ALLOWLIST_INVALID.to_string(),
                code: lints::code_of(lints::ALLOWLIST_INVALID).to_string(),
                message: format!("allow directive names unknown lint `{unknown}`"),
                suggestion: "run `atlarge-lint --list` for the lint catalogue".into(),
            });
            continue;
        }
        for (id_idx, lint_id) in d.lints.iter().enumerate() {
            if !used[i][id_idx] {
                diagnostics.push(Diagnostic {
                    file: rel_path.to_string(),
                    line: d.line,
                    lint: lints::UNUSED_ALLOWLIST.to_string(),
                    code: lints::code_of(lints::UNUSED_ALLOWLIST).to_string(),
                    message: format!("allow directive id `{lint_id}` suppresses no diagnostic"),
                    suggestion: "delete the stale id (the violation is gone) or move the directive next to the offending line".into(),
                });
            }
        }
    }

    diagnostics.sort();
    Report {
        diagnostics,
        suppressed,
        files: 1,
    }
}

/// The `(directive index, lint-id index)` suppressing `lint` at `line`,
/// if any. A directive only counts when it carries a non-empty reason
/// and names only known lints — malformed directives are inert and
/// reported instead.
fn suppressing_directive(
    directives: &[AllowDirective],
    lint: &str,
    line: u32,
) -> Option<(usize, usize)> {
    directives.iter().enumerate().find_map(|(i, d)| {
        if d.target_line != Some(line)
            || d.reason.as_deref().is_none_or(|r| r.trim().is_empty())
            || !d.lints.iter().all(|l| lints::is_known(l))
        {
            return None;
        }
        d.lints.iter().position(|l| l == lint).map(|id| (i, id))
    })
}

/// Whether the path is test code wholesale: under a `tests/` or
/// `benches/` directory.
pub fn path_is_test(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

/// Marks tokens inside `#[cfg(test)]`-gated or `#[test]`-gated `mod`/`fn`
/// items. Conservative: only brace-delimited bodies directly following
/// the attribute (plus any stacked attributes and a visibility) are
/// masked.
pub fn test_region_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && i + 1 < toks.len()
            && toks[i + 1].text == "["
        {
            let attr_end = match matching(toks, i + 1, "[", "]") {
                Some(e) => e,
                None => break,
            };
            if attr_is_test_gate(&toks[i + 1..attr_end]) {
                if let Some((open, close)) = gated_body(toks, attr_end + 1) {
                    for m in mask.iter_mut().take(close + 1).skip(open) {
                        *m = true;
                    }
                    i = attr_end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Whether the attribute tokens (between `[` and `]`, exclusive) gate
/// on tests: `#[test]`, or a `cfg` whose predicate mentions `test` and
/// not `not`.
fn attr_is_test_gate(inner: &[Tok]) -> bool {
    let idents: Vec<&str> = inner
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents == ["test"] {
        return true;
    }
    idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not")
}

/// After a test-gating attribute: skip further attributes and a
/// visibility, then return the `{`..`}` body span of the next `mod` or
/// `fn` item.
fn gated_body(toks: &[Tok], mut i: usize) -> Option<(usize, usize)> {
    loop {
        if i >= toks.len() {
            return None;
        }
        // Stacked attributes.
        if toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[" {
            i = matching(toks, i + 1, "[", "]")? + 1;
            continue;
        }
        // Visibility: `pub` or `pub(crate)` etc.
        if toks[i].text == "pub" {
            i += 1;
            if i < toks.len() && toks[i].text == "(" {
                i = matching(toks, i, "(", ")")? + 1;
            }
            continue;
        }
        break;
    }
    if !matches!(toks[i].text.as_str(), "mod" | "fn") {
        return None;
    }
    // Find the body's opening brace before any `;` (a `mod name;` has no
    // body to mask).
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "{" => {
                let close = matching(toks, j, "{", "}")?;
                return Some((j, close));
            }
            ";" => return None,
            _ => j += 1,
        }
    }
    None
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching(toks: &[Tok], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.kind == TokKind::Punct {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `root/<roots>`, sorted by
/// path, honoring the exclude list.
pub fn collect_rust_files(root: &Path, cfg: &LintConfig) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        walk(&root.join(r), root, cfg, &mut files);
    }
    files.sort();
    files.dedup();
    files
}

fn walk(dir: &Path, root: &Path, cfg: &LintConfig, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let rel = relative(&path, root);
        if cfg.is_excluded(&rel) {
            continue;
        }
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, cfg, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints every Rust file in the workspace rooted at `root`.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> Report {
    let mut report = Report::default();
    for path in collect_rust_files(root, cfg) {
        let Ok(source) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = relative(&path, root);
        let file_report = lint_source(&rel, &source, cfg);
        report.diagnostics.extend(file_report.diagnostics);
        report.suppressed += file_report.suppressed;
        report.files += 1;
    }
    report.diagnostics.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintConfig;

    fn cfg() -> LintConfig {
        LintConfig::default_config()
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        // unordered-iteration includes tests by default: all three
        // mentions fire (the use plus two in the test body).
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 3);
        // wall-clock (include_tests = false) would skip the same region.
        let src2 =
            "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let i = Instant::now(); }\n}\n";
        let r2 = lint_source("crates/x/src/lib.rs", src2, &cfg());
        assert!(r2.is_clean(), "{:?}", r2.diagnostics);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn hot() { let i = Instant::now(); }\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
    }

    #[test]
    fn reasoned_allow_suppresses_and_counts() {
        let src = "// #[allow_atlarge(wall-clock-in-sim, reason = \"report-only\")]\nlet t = Instant::now();\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn reasonless_allow_is_inert_and_flagged() {
        let src = "// #[allow_atlarge(wall-clock-in-sim)]\nlet t = Instant::now();\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        let lints: Vec<&str> = r.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(lints, vec!["allowlist-invalid", "wall-clock-in-sim"]);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// #[allow_atlarge(entropy-rng, reason = \"stale\")]\nlet x = 3;\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, "unused-allowlist");
    }

    #[test]
    fn unknown_lint_in_allow_is_flagged() {
        let src =
            "// #[allow_atlarge(wall-clock-in-simm, reason = \"typo\")]\nlet t = Instant::now();\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        let lints: Vec<&str> = r.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(lints, vec!["allowlist-invalid", "wall-clock-in-sim"]);
    }

    #[test]
    fn multi_id_allow_is_tracked_per_id() {
        // One directive, two ids, only one of which suppresses anything:
        // the idle id is flagged stale by name.
        let src = "// #[allow_atlarge(wall-clock-in-sim, entropy-rng, reason = \"report-only\")]\nlet t = Instant::now();\n";
        let r = lint_source("crates/x/src/lib.rs", src, &cfg());
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].lint, "unused-allowlist");
        assert!(r.diagnostics[0].message.contains("`entropy-rng`"));
        // Both ids earning their keep: clean.
        let src2 = "// #[allow_atlarge(wall-clock-in-sim, entropy-rng, reason = \"report-only\")]\nlet t = Instant::now(); let r = thread_rng();\n";
        let r2 = lint_source("crates/x/src/lib.rs", src2, &cfg());
        assert!(r2.is_clean(), "{:?}", r2.diagnostics);
        assert_eq!(r2.suppressed, 2);
    }

    #[test]
    fn structural_lints_run_through_the_engine() {
        let src = "use atlarge_des::fel::FutureEventList;\nfn f(seed: u64) {\n    let a = split_labeled(seed, \"x\");\n    let b = split_labeled(seed, \"x\");\n}\n";
        let r = lint_source("crates/p2p/src/swarm.rs", src, &cfg());
        let lints: Vec<&str> = r.diagnostics.iter().map(|d| d.lint.as_str()).collect();
        assert_eq!(lints, vec!["layer-boundary", "seed-stream-aliasing"]);
        assert_eq!(r.diagnostics[0].code, "AL008");
        assert_eq!(r.diagnostics[1].code, "AL007");
        // The owning kernel crate may name its own internals.
        let r2 = lint_source(
            "crates/des/src/queue.rs",
            "use atlarge_des::fel::Fel;\n",
            &cfg(),
        );
        assert!(r2.is_clean(), "{:?}", r2.diagnostics);
    }

    #[test]
    fn seed_aliasing_respects_include_tests_default() {
        // include_tests = false by default: an aliased label inside a
        // #[cfg(test)] module stays quiet (seed.rs tests legitimately
        // reuse labels across different roots).
        let src = "#[cfg(test)]\nmod tests {\n    fn t(s: u64) { let a = split_labeled(s, \"x\"); let b = split_labeled(s, \"x\"); }\n}\n";
        let r = lint_source("crates/exp/src/seed.rs", src, &cfg());
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn scope_and_boundary_respected() {
        let src = "fn f() { let t = Instant::now(); x.unwrap(); }\n";
        // Telemetry is the wall-clock boundary; unwrap is outside the
        // kernel scope: clean.
        let r = lint_source("crates/telemetry/src/recorder.rs", src, &cfg());
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        // In the kernel both fire.
        let r2 = lint_source("crates/des/src/sim.rs", src, &cfg());
        assert_eq!(r2.diagnostics.len(), 2);
    }
}
