//! Independent corroboration (\[128\], \[130\]).
//!
//! The autoscaling line found "interesting discrepancies between the
//! real-world software of the initial in vitro experiments and the
//! software of the simulator, which we have developed independently;
//! these discrepancies have allowed us to correct in time the real-world
//! results, and emphasize the need for *independent corroboration* in
//! the community."
//!
//! The reproduction practices what it preaches: this module re-implements
//! the elasticity metrics by a *structurally different* method — dense
//! time sampling instead of exact step-function integration — and the
//! corroboration check compares the two implementations. Within the
//! sampling error bound they must agree; a disagreement beyond it flags a
//! bug in one of the implementations (which is precisely how \[128\] caught
//! theirs).

use crate::metrics::ElasticityReport;
use atlarge_stats::timeseries::StepSeries;

/// The sampling-based (independent) implementation of the core
/// elasticity metrics. Same semantics as [`ElasticityReport::compute`],
/// different mechanics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledReport {
    /// (1) Mean servers missing while under-provisioned.
    pub under_accuracy: f64,
    /// (2) Mean servers excess while over-provisioned.
    pub over_accuracy: f64,
    /// (5) Fraction of time under-provisioned.
    pub under_timeshare: f64,
    /// (6) Fraction of time over-provisioned.
    pub over_timeshare: f64,
    /// (8) Time-averaged supply.
    pub avg_supply: f64,
}

/// Computes the metrics by sampling the series every `dt` seconds
/// (midpoint rule).
///
/// # Panics
///
/// Panics unless `from < to` and `dt > 0`.
pub fn sampled_report(
    demand: &StepSeries,
    supply: &StepSeries,
    from: f64,
    to: f64,
    dt: f64,
) -> SampledReport {
    assert!(from < to, "window must be non-empty");
    assert!(dt > 0.0, "sampling step must be positive");
    let n = ((to - from) / dt).ceil() as usize;
    let mut under = 0.0;
    let mut over = 0.0;
    let mut under_t = 0usize;
    let mut over_t = 0usize;
    let mut supply_sum = 0.0;
    for i in 0..n {
        let t = from + (i as f64 + 0.5) * dt;
        let d = demand.value_at(t.min(to));
        let s = supply.value_at(t.min(to));
        under += (d - s).max(0.0);
        over += (s - d).max(0.0);
        if d > s {
            under_t += 1;
        }
        if s > d {
            over_t += 1;
        }
        supply_sum += s;
    }
    let nf = n as f64;
    SampledReport {
        under_accuracy: under / nf,
        over_accuracy: over / nf,
        under_timeshare: under_t as f64 / nf,
        over_timeshare: over_t as f64 / nf,
        avg_supply: supply_sum / nf,
    }
}

/// The corroboration verdict: relative disagreement per metric between
/// the exact and the sampled implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Corroboration {
    /// `(metric name, exact, sampled, |relative difference|)` rows.
    pub rows: Vec<(&'static str, f64, f64, f64)>,
}

impl Corroboration {
    /// Whether every metric agrees within `tolerance` (relative, with an
    /// absolute floor of 0.01 for near-zero metrics).
    pub fn agrees(&self, tolerance: f64) -> bool {
        self.rows.iter().all(|&(_, a, b, _)| {
            let scale = a.abs().max(b.abs()).max(0.01);
            (a - b).abs() / scale <= tolerance
        })
    }
}

/// Runs both implementations and tabulates the comparison.
pub fn corroborate(
    demand: &StepSeries,
    supply: &StepSeries,
    from: f64,
    to: f64,
    dt: f64,
) -> Corroboration {
    let exact = ElasticityReport::compute(demand, supply, from, to, 0.0, 0.0);
    let sampled = sampled_report(demand, supply, from, to, dt);
    let rel = |a: f64, b: f64| {
        let scale = a.abs().max(b.abs()).max(0.01);
        (a - b).abs() / scale
    };
    Corroboration {
        rows: vec![
            (
                "under_accuracy",
                exact.under_accuracy,
                sampled.under_accuracy,
                rel(exact.under_accuracy, sampled.under_accuracy),
            ),
            (
                "over_accuracy",
                exact.over_accuracy,
                sampled.over_accuracy,
                rel(exact.over_accuracy, sampled.over_accuracy),
            ),
            (
                "under_timeshare",
                exact.under_timeshare,
                sampled.under_timeshare,
                rel(exact.under_timeshare, sampled.under_timeshare),
            ),
            (
                "over_timeshare",
                exact.over_timeshare,
                sampled.over_timeshare,
                rel(exact.over_timeshare, sampled.over_timeshare),
            ),
            (
                "avg_supply",
                exact.avg_supply,
                sampled.avg_supply,
                rel(exact.avg_supply, sampled.avg_supply),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::React;
    use crate::sim::{run, AutoscaleConfig};
    use atlarge_workload::workflow::{generate, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn implementations_corroborate_on_a_real_run() {
        let mut rng = StdRng::seed_from_u64(4);
        let workflows: Vec<_> = (0..12)
            .map(|i| generate(&mut rng, Shape::ForkJoin(5), 30.0, 0.4, i as f64 * 40.0))
            .collect();
        let result = run(workflows, React, AutoscaleConfig::default(), 4);
        let to = result.end_time.max(1.0);
        let c = corroborate(&result.demand, &result.supply, 0.0, to, 0.25);
        assert!(
            c.agrees(0.05),
            "independent implementations disagree: {:?}",
            c.rows
        );
    }

    #[test]
    fn a_buggy_implementation_is_caught() {
        // Simulate the [128] scenario: one implementation evaluates the
        // wrong window. The corroboration must flag it.
        let mut demand = StepSeries::new(0.0);
        demand.push(0.0, 4.0);
        demand.push(50.0, 10.0);
        let mut supply = StepSeries::new(0.0);
        supply.push(0.0, 6.0);
        let exact = ElasticityReport::compute(&demand, &supply, 0.0, 100.0, 0.0, 0.0);
        // The "buggy" run samples only the first half.
        let buggy = sampled_report(&demand, &supply, 0.0, 50.0, 0.25);
        let scale = exact.under_accuracy.abs().max(0.01);
        assert!(
            (exact.under_accuracy - buggy.under_accuracy).abs() / scale > 0.5,
            "the window bug should be visible"
        );
    }

    #[test]
    fn coarse_sampling_loses_agreement() {
        // The method matters: with a huge dt the sampled implementation
        // misses the demand spike entirely.
        let mut demand = StepSeries::new(0.0);
        demand.push(10.0, 100.0);
        demand.push(12.0, 0.0); // 2-second spike
        let supply = StepSeries::new(1.0);
        let fine = sampled_report(&demand, &supply, 0.0, 100.0, 0.1);
        let coarse = sampled_report(&demand, &supply, 0.0, 100.0, 50.0);
        assert!(fine.under_accuracy > 1.5);
        assert!(coarse.under_accuracy < fine.under_accuracy / 2.0);
    }
}
