//! A registry of named, string-parameterized scenarios.
//!
//! The typed [`Scenario`](crate::Scenario) trait is what domain crates
//! implement; an exploration *service* needs the inverse view: look a
//! domain up by name, discover its parameters, validate an untyped
//! `key=value` query against them, and execute the cell — all without
//! compile-time knowledge of the config type. [`CellScenario`] is that
//! object-safe facade and [`Registry`] the name → scenario directory.
//!
//! Validation is canonicalizing: [`Registry::validate`] fills declared
//! defaults and rejects unknown keys or out-of-range choices, so two
//! queries that *mean* the same cell normalize to the same parameter
//! map — the property result caches key on.

use crate::cancel::CancelToken;
use crate::scenario::Scenario;
use crate::seed::derive_seed;
use atlarge_stats::descriptive::Summary;
use atlarge_telemetry::tracer::Tracer;
use std::collections::BTreeMap;

/// One declared parameter of a [`CellScenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpec {
    /// Parameter name as it appears in queries.
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// Value assumed when the query omits the parameter; `None` makes
    /// the parameter required.
    pub default: Option<String>,
    /// Closed set of accepted values; empty means free-form (the
    /// scenario parses and range-checks it at run time).
    pub choices: Vec<String>,
}

impl ParamSpec {
    /// A required free-form parameter.
    pub fn required(name: &str, help: &str) -> Self {
        ParamSpec {
            name: name.to_string(),
            help: help.to_string(),
            default: None,
            choices: Vec::new(),
        }
    }

    /// An optional free-form parameter with a default.
    pub fn optional(name: &str, help: &str, default: &str) -> Self {
        ParamSpec {
            default: Some(default.to_string()),
            ..ParamSpec::required(name, help)
        }
    }

    /// An optional parameter restricted to `choices`, defaulting to the
    /// first choice.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn choice(name: &str, help: &str, choices: &[&str]) -> Self {
        assert!(!choices.is_empty(), "a choice parameter needs choices");
        ParamSpec {
            default: Some(choices[0].to_string()),
            choices: choices.iter().map(|c| c.to_string()).collect(),
            ..ParamSpec::required(name, help)
        }
    }
}

/// What one validated cell execution produced: replication summaries
/// per metric, plus free-form notes (e.g. the finding string of a
/// table row). Everything here is deterministic in `(params, seed,
/// replications)` — no wall-clock, no environment.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutput {
    /// `(metric name, summary over replications)` in a fixed,
    /// scenario-chosen order.
    pub metrics: Vec<(String, Summary)>,
    /// `(key, value)` annotations in a fixed order.
    pub notes: Vec<(String, String)>,
}

/// An object-safe, string-parameterized view of one experiment domain.
///
/// Implementations wrap a typed [`Scenario`](crate::Scenario): parse
/// the validated parameter map into the config type, run the declared
/// replication count (seeds derived exactly as a single-cell
/// [`Campaign`](crate::Campaign) would), and summarize outcomes into a
/// [`CellOutput`].
pub trait CellScenario: Send + Sync {
    /// Registry key, e.g. `"autoscaling"`.
    fn domain(&self) -> &str;

    /// One-line description for discovery endpoints.
    fn describe(&self) -> &str;

    /// Declared parameters, in documentation order.
    fn params(&self) -> Vec<ParamSpec>;

    /// Executes one cell: `params` is already validated and
    /// canonicalized (defaults filled), `seed` is the root seed,
    /// `replications >= 1`. Polls `cancel` at replication boundaries
    /// and returns `Err` describing the first problem (unparseable
    /// value, cancellation) — never a partial result.
    fn run_cell(
        &self,
        params: &BTreeMap<String, String>,
        seed: u64,
        replications: usize,
        cancel: &CancelToken,
        tracer: &dyn Tracer,
    ) -> Result<CellOutput, String>;
}

/// Runs `replications` of `scenario` on one config, serially, with the
/// same seed stream a single-cell independent-mode
/// [`Campaign`](crate::Campaign) derives (`derive_seed(root, 0, rep)`),
/// polling `cancel` before each replication.
///
/// Returns `Err` when cancelled — the standard replication loop for
/// [`CellScenario`] implementations, so every domain inherits identical
/// cancellation and seeding semantics.
pub fn run_replicated<S: Scenario>(
    scenario: &S,
    config: &S::Config,
    root_seed: u64,
    replications: usize,
    cancel: &CancelToken,
    tracer: &dyn Tracer,
) -> Result<Vec<S::Outcome>, String> {
    let mut outcomes = Vec::with_capacity(replications);
    for rep in 0..replications {
        if cancel.is_cancelled() {
            return Err("cancelled".to_string());
        }
        let seed = derive_seed(root_seed, 0, rep as u64);
        outcomes.push(scenario.run(config, seed, tracer));
    }
    Ok(outcomes)
}

/// Parses `params[name]` with `FromStr`, turning failures into a
/// query-error string naming the parameter. Validation guarantees
/// presence, so a missing key is an implementation bug and panics.
pub fn parse_param<T: std::str::FromStr>(
    params: &BTreeMap<String, String>,
    name: &str,
) -> Result<T, String> {
    let raw = params
        .get(name)
        .unwrap_or_else(|| panic!("validated params must contain '{name}'"));
    raw.parse::<T>()
        .map_err(|_| format!("parameter '{name}': cannot parse '{raw}'"))
}

/// The domain-name → scenario directory an exploration service serves.
#[derive(Default)]
pub struct Registry {
    scenarios: BTreeMap<String, Box<dyn CellScenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `scenario` under its [`CellScenario::domain`] key.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate domain name — registries are assembled
    /// once, at startup, and a silent overwrite would hide the bug.
    pub fn register(&mut self, scenario: Box<dyn CellScenario>) -> &mut Self {
        let domain = scenario.domain().to_string();
        let clash = self.scenarios.insert(domain.clone(), scenario);
        assert!(clash.is_none(), "domain '{domain}' registered twice");
        self
    }

    /// Looks a domain up by name.
    pub fn get(&self, domain: &str) -> Option<&dyn CellScenario> {
        self.scenarios.get(domain).map(|b| b.as_ref())
    }

    /// Registered domain names, sorted.
    pub fn domains(&self) -> Vec<&str> {
        self.scenarios.keys().map(|k| k.as_str()).collect()
    }

    /// Validates and canonicalizes a raw query against `domain`'s
    /// declared parameters: unknown keys and out-of-choice values are
    /// rejected, omitted optional parameters get their defaults, and
    /// omitted required parameters are an error. The returned map is
    /// the *canonical cell identity* — byte-equal maps mean the same
    /// cell, which is what fingerprint caches rely on.
    pub fn validate(
        &self,
        domain: &str,
        raw: &BTreeMap<String, String>,
    ) -> Result<BTreeMap<String, String>, String> {
        let scenario = self.get(domain).ok_or_else(|| {
            format!(
                "unknown domain '{domain}' (have: {})",
                self.domains().join(", ")
            )
        })?;
        let specs = scenario.params();
        for key in raw.keys() {
            if !specs.iter().any(|s| &s.name == key) {
                let known: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
                return Err(format!(
                    "unknown parameter '{key}' for domain '{domain}' (have: {})",
                    known.join(", ")
                ));
            }
        }
        let mut canonical = BTreeMap::new();
        for spec in &specs {
            let value = match (raw.get(&spec.name), &spec.default) {
                (Some(v), _) => v.clone(),
                (None, Some(d)) => d.clone(),
                (None, None) => {
                    return Err(format!(
                        "missing required parameter '{}' for domain '{domain}'",
                        spec.name
                    ))
                }
            };
            if !spec.choices.is_empty() && !spec.choices.contains(&value) {
                return Err(format!(
                    "parameter '{}': '{value}' is not one of {}",
                    spec.name,
                    spec.choices.join("|")
                ));
            }
            canonical.insert(spec.name.clone(), value);
        }
        Ok(canonical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Campaign;
    use atlarge_telemetry::tracer::NullTracer;

    struct Mixer;
    impl Scenario for Mixer {
        type Config = u64;
        type Outcome = u64;
        fn run(&self, config: &u64, seed: u64, _tracer: &dyn Tracer) -> u64 {
            crate::seed::splitmix64_mix(config ^ seed)
        }
    }

    struct MixerCell;
    impl CellScenario for MixerCell {
        fn domain(&self) -> &str {
            "mixer"
        }
        fn describe(&self) -> &str {
            "splitmix of config and seed"
        }
        fn params(&self) -> Vec<ParamSpec> {
            vec![
                ParamSpec::required("x", "the value to mix"),
                ParamSpec::choice("mode", "mixing mode", &["plain", "twice"]),
                ParamSpec::optional("bias", "added before mixing", "0"),
            ]
        }
        fn run_cell(
            &self,
            params: &BTreeMap<String, String>,
            seed: u64,
            replications: usize,
            cancel: &CancelToken,
            tracer: &dyn Tracer,
        ) -> Result<CellOutput, String> {
            let x: u64 = parse_param(params, "x")?;
            let bias: u64 = parse_param(params, "bias")?;
            let config = x.wrapping_add(bias);
            let outcomes = run_replicated(&Mixer, &config, seed, replications, cancel, tracer)?;
            let twice = params["mode"] == "twice";
            let values = outcomes.iter().map(|&o| {
                if twice {
                    (o % 97) as f64 * 2.0
                } else {
                    (o % 97) as f64
                }
            });
            Ok(CellOutput {
                metrics: vec![("mixed".to_string(), Summary::from_iter(values))],
                notes: vec![("mode".to_string(), params["mode"].clone())],
            })
        }
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(Box::new(MixerCell));
        r
    }

    fn raw(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn validate_fills_defaults_and_canonicalizes() {
        let r = registry();
        let a = r.validate("mixer", &raw(&[("x", "5")])).unwrap();
        let b = r
            .validate(
                "mixer",
                &raw(&[("x", "5"), ("mode", "plain"), ("bias", "0")]),
            )
            .unwrap();
        assert_eq!(a, b, "defaults make the two queries the same cell");
        assert_eq!(a["mode"], "plain");
    }

    #[test]
    fn validate_rejects_bad_queries() {
        let r = registry();
        assert!(r
            .validate("nope", &raw(&[]))
            .unwrap_err()
            .contains("unknown domain"));
        assert!(r
            .validate("mixer", &raw(&[("x", "1"), ("y", "2")]))
            .unwrap_err()
            .contains("unknown parameter 'y'"));
        assert!(r
            .validate("mixer", &raw(&[]))
            .unwrap_err()
            .contains("missing required parameter 'x'"));
        assert!(r
            .validate("mixer", &raw(&[("x", "1"), ("mode", "thrice")]))
            .unwrap_err()
            .contains("not one of plain|twice"));
    }

    #[test]
    fn run_cell_is_deterministic_and_parses_errors() {
        let r = registry();
        let params = r.validate("mixer", &raw(&[("x", "7")])).unwrap();
        let token = CancelToken::new();
        let s = r.get("mixer").unwrap();
        let a = s.run_cell(&params, 42, 5, &token, &NullTracer).unwrap();
        let b = s.run_cell(&params, 42, 5, &token, &NullTracer).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.metrics[0].1.len(), 5);

        let bad = r.validate("mixer", &raw(&[("x", "seven")])).unwrap(); // free-form passes validation...
        let err = s.run_cell(&bad, 42, 1, &token, &NullTracer).unwrap_err();
        assert!(
            err.contains("cannot parse 'seven'"),
            "...and fails in run_cell: {err}"
        );
    }

    #[test]
    fn cancelled_cell_returns_error_not_partial_output() {
        let r = registry();
        let params = r.validate("mixer", &raw(&[("x", "7")])).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let err = r
            .get("mixer")
            .unwrap()
            .run_cell(&params, 42, 5, &token, &NullTracer)
            .unwrap_err();
        assert_eq!(err, "cancelled");
    }

    #[test]
    fn run_replicated_matches_single_cell_campaign() {
        let outcomes = run_replicated(&Mixer, &11, 99, 4, &CancelToken::new(), &NullTracer)
            .expect("not cancelled");
        let campaign = Campaign::new("m", Mixer)
            .replications(4)
            .root_seed(99)
            .threads(1)
            .run(|_| 11u64);
        let campaign_outcomes: Vec<u64> =
            campaign.cells[0].runs.iter().map(|r| r.outcome).collect();
        assert_eq!(outcomes, campaign_outcomes);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = registry();
        r.register(Box::new(MixerCell));
    }
}
