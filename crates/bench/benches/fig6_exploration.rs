//! Bench: regenerate Figures 6-7 (design-space exploration processes and
//! co-evolving trajectories).

use atlarge_core::exploration::{compare_processes, ExplorationProcess, Explorer};
use atlarge_core::space::RuggedSpace;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let space = RuggedSpace::new(40, 3, 7);
    let mut g = c.benchmark_group("fig6_exploration");
    g.sample_size(10);
    for p in ExplorationProcess::all() {
        g.bench_function(p.name(), |b| {
            b.iter(|| Explorer::new(p, 400).run(std::hint::black_box(&space), 0.64, 1))
        });
    }
    g.finish();
    for (p, rate, novelty, quality) in compare_processes(&space, 0.64, 400, 20) {
        println!(
            "{:<14} satisfice {rate:.2} novelty {novelty:.2} quality {quality:.3}",
            p.name()
        );
    }
    let run = Explorer::new(ExplorationProcess::CoEvolving, 3_000)
        .stall_limit(2)
        .run(&space, 0.73, 7);
    println!(
        "fig7 trajectory: problems {} solutions {:?} failures {}",
        run.problems_visited,
        run.solutions_per_problem,
        run.failures()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
