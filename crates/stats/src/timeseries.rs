//! Step-function time series.
//!
//! Elasticity metrics (§6.7) compare a *demand* curve against a *supply*
//! curve over time; both are piecewise-constant step functions (resources
//! are provisioned in whole units at discrete instants). This module stores
//! such series and computes the time integrals the metrics need.

/// A piecewise-constant (step) time series.
///
/// Values hold from their timestamp until the next point. Timestamps must be
/// non-decreasing.
///
/// # Examples
///
/// ```
/// use atlarge_stats::timeseries::StepSeries;
///
/// let mut s = StepSeries::new(0.0);
/// s.push(0.0, 2.0);
/// s.push(10.0, 4.0);
/// assert_eq!(s.value_at(5.0), 2.0);
/// assert_eq!(s.value_at(10.0), 4.0);
/// assert_eq!(s.integral(0.0, 20.0), 2.0 * 10.0 + 4.0 * 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StepSeries {
    initial: f64,
    points: Vec<(f64, f64)>,
}

impl StepSeries {
    /// Creates a series with value `initial` before the first point.
    pub fn new(initial: f64) -> Self {
        StepSeries {
            initial,
            points: Vec::new(),
        }
    }

    /// Appends a `(time, value)` step.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded time or is not finite.
    pub fn push(&mut self, time: f64, value: f64) {
        assert!(time.is_finite() && value.is_finite(), "finite points only");
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time must be non-decreasing");
        }
        // Collapse same-instant updates: the last write wins.
        if let Some(last) = self.points.last_mut() {
            if last.0 == time {
                last.1 = value;
                return;
            }
        }
        self.points.push((time, value));
    }

    /// The value holding at time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => self.initial,
            n => self.points[n - 1].1,
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no steps have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Recorded `(time, value)` steps.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Integral of the series over `[from, to]`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn integral(&self, from: f64, to: f64) -> f64 {
        self.integrate_with(from, to, |v| v)
    }

    /// Time-weighted average over `[from, to]`.
    pub fn time_average(&self, from: f64, to: f64) -> f64 {
        if to <= from {
            return self.value_at(from);
        }
        self.integral(from, to) / (to - from)
    }

    /// Integral of `f(value)` over `[from, to]` — the workhorse behind the
    /// elasticity metrics (e.g. `f = |demand − supply|⁺`).
    ///
    /// # Panics
    ///
    /// Panics if `from > to`.
    pub fn integrate_with<F: Fn(f64) -> f64>(&self, from: f64, to: f64, f: F) -> f64 {
        assert!(from <= to, "integration bounds reversed");
        let mut acc = 0.0;
        let mut t = from;
        let mut v = self.value_at(from);
        for &(pt, pv) in &self.points {
            if pt <= from {
                continue;
            }
            if pt >= to {
                break;
            }
            acc += f(v) * (pt - t);
            t = pt;
            v = pv;
        }
        acc += f(v) * (to - t);
        acc
    }

    /// Combines two step series pointwise with `f`, producing a new series
    /// with a step at every change point of either input.
    pub fn combine<F: Fn(f64, f64) -> f64>(&self, other: &StepSeries, f: F) -> StepSeries {
        let mut out = StepSeries::new(f(self.initial, other.initial));
        let mut times: Vec<f64> = self
            .points
            .iter()
            .map(|&(t, _)| t)
            .chain(other.points.iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup();
        for t in times {
            out.push(t, f(self.value_at(t), other.value_at(t)));
        }
        out
    }

    /// Number of step changes (value transitions), used by the instability
    /// elasticity metric.
    pub fn transitions(&self) -> usize {
        let mut prev = self.initial;
        let mut n = 0;
        for &(_, v) in &self.points {
            if v != prev {
                n += 1;
                prev = v;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_lookup_uses_last_step() {
        let mut s = StepSeries::new(1.0);
        s.push(5.0, 2.0);
        s.push(10.0, 3.0);
        assert_eq!(s.value_at(0.0), 1.0);
        assert_eq!(s.value_at(5.0), 2.0);
        assert_eq!(s.value_at(7.5), 2.0);
        assert_eq!(s.value_at(100.0), 3.0);
    }

    #[test]
    fn integral_matches_hand_computation() {
        let mut s = StepSeries::new(0.0);
        s.push(2.0, 5.0);
        s.push(4.0, 1.0);
        // [0,2): 0; [2,4): 5; [4,6]: 1 => 0 + 10 + 2
        assert!((s.integral(0.0, 6.0) - 12.0).abs() < 1e-12);
        assert!((s.time_average(0.0, 6.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partial_window_integral() {
        let mut s = StepSeries::new(2.0);
        s.push(10.0, 4.0);
        assert!((s.integral(5.0, 15.0) - (2.0 * 5.0 + 4.0 * 5.0)).abs() < 1e-12);
    }

    #[test]
    fn same_instant_update_last_write_wins() {
        let mut s = StepSeries::new(0.0);
        s.push(1.0, 5.0);
        s.push(1.0, 7.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.value_at(1.0), 7.0);
    }

    #[test]
    fn combine_diffs_series() {
        let mut demand = StepSeries::new(0.0);
        demand.push(0.0, 3.0);
        demand.push(10.0, 6.0);
        let mut supply = StepSeries::new(0.0);
        supply.push(0.0, 4.0);
        supply.push(15.0, 6.0);
        let under = demand.combine(&supply, |d, s| (d - s).max(0.0));
        // Under-provisioned only in [10,15): demand 6, supply 4.
        assert!((under.integral(0.0, 20.0) - 2.0 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn transitions_count_changes_only() {
        let mut s = StepSeries::new(1.0);
        s.push(1.0, 1.0); // no change
        s.push(2.0, 2.0);
        s.push(3.0, 2.0); // no change
        s.push(4.0, 1.0);
        assert_eq!(s.transitions(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut s = StepSeries::new(0.0);
        s.push(5.0, 1.0);
        s.push(4.0, 2.0);
    }
}
