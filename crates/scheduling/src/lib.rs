//! `atlarge-scheduling` — datacenter scheduling and the portfolio
//! scheduler (§6.6, Table 9).
//!
//! The paper's portfolio-scheduling line started from a finding: "no
//! individual technique or policy was consistently better than all
//! others". The answer — select the policy online, based on current system
//! state, by *simulating the portfolio* — brought its own problem: the
//! simulation cost grows with the number of policies, threatening online
//! operation, which the active-set mechanism of \[115\] addresses.
//!
//! This crate reproduces that arc:
//!
//! - [`policy`] — the individual scheduling policies (FCFS, SJF, LJF,
//!   widest/narrowest-first, random, EASY backfilling).
//! - [`simulator`] — an event-driven multi-cluster scheduling simulator
//!   with per-job response-time and bounded-slowdown metrics.
//! - [`portfolio`] — the portfolio scheduler: online simulation of
//!   candidate policies over the current queue (with imperfect runtime
//!   estimates), active-set limitation, and decision-cost accounting.
//! - [`experiments`] — the Table 9 reproduction: portfolio vs every single
//!   policy across the workload × environment matrix, including the \[120\]
//!   finding that hard-to-predict big-data runtimes degrade portfolio
//!   selections.
//! - [`evolve`] — live policy evolution: policies and the portfolio
//!   capture/resume versioned state capsules, and
//!   [`evolve::EvolvingChooser`] retires one policy and rebinds its
//!   successor mid-simulation (trigger: sim-time or backlog depth).
//!
//! # Examples
//!
//! ```
//! use atlarge_scheduling::policy::Policy;
//! use atlarge_scheduling::simulator::{simulate, SimConfig};
//! use atlarge_workload::mixes::Mix;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let jobs = Mix::Synthetic.generate(&mut rng, 20_000.0, 10.0);
//! let m = simulate(&jobs, &[64], Policy::Sjf, &SimConfig::default());
//! assert!(m.mean_response > 0.0);
//! ```

pub mod evolve;
pub mod experiments;
pub mod policy;
pub mod portfolio;
pub mod simulator;

pub use policy::Policy;
pub use portfolio::PortfolioScheduler;
pub use simulator::{simulate, SimConfig, SimMetrics};
