//! Live autoscaler evolution: retire the running policy mid-simulation
//! and resume its successor from a state capsule.
//!
//! [`EvolvingScaler`] wraps any roster autoscaler and a
//! [`SwapPlan`]; at every tick the sim polls
//! [`Autoscaler::swap_due`] with the current demand, and when a trigger
//! fires — a scheduled sim-time or a demand threshold (the flashcrowd
//! peak) — the handoff runs under an `evolve.swap(from->to)` tracer
//! span: capture the old scaler's capsule, apply the transform, resume
//! the successor. The keystone property is the *identity swap*: swapping
//! a scaler for itself must leave [`RunResult`]s and the kernel event
//! stream byte-identical to never swapping.

use crate::autoscaler::{Adapt, Autoscaler, Hist, Plan, React, RecentPeak, Reg, ScalerView, Token};
use crate::sim::{run_keeping_scaler, AutoscaleConfig, RunResult};
use atlarge_evolve::{
    handoff, swap_span_label, CapsuleTransform, Evolvable, Identity, SwapPlan, SwapRecord, SwapSpec,
};
use atlarge_telemetry::recorder::Recorder;
use atlarge_workload::workflow::Workflow;

/// An autoscaler that can be live-swapped: decides targets *and*
/// captures/resumes state capsules.
pub trait EvolvableScaler: Autoscaler + Evolvable + std::fmt::Debug {}

impl<T: Autoscaler + Evolvable + std::fmt::Debug> EvolvableScaler for T {}

/// Builds a roster autoscaler by its campaign name.
pub fn scaler_by_name(name: &str) -> Option<Box<dyn EvolvableScaler>> {
    match name {
        "react" => Some(Box::new(React)),
        "adapt" => Some(Box::new(Adapt::default())),
        "hist" => Some(Box::new(Hist::default())),
        "reg" => Some(Box::new(Reg::default())),
        "peak" => Some(Box::new(RecentPeak::default())),
        "plan" => Some(Box::new(Plan::default())),
        "token" => Some(Box::new(Token::default())),
        _ => None,
    }
}

/// The swap orchestrator: an [`Autoscaler`] that runs its current
/// policy and executes a [`SwapPlan`] against it mid-simulation.
#[derive(Debug)]
pub struct EvolvingScaler {
    current: Box<dyn EvolvableScaler>,
    plan: SwapPlan,
    transform: Box<dyn CapsuleTransform + Send>,
    pending: Option<SwapSpec>,
    log: Vec<SwapRecord>,
}

impl EvolvingScaler {
    /// Wraps `initial` with a validated `plan` (every successor name
    /// must resolve in the roster) and the identity transform.
    pub fn new(initial: Box<dyn EvolvableScaler>, plan: SwapPlan) -> Result<Self, String> {
        for spec in plan.specs() {
            if scaler_by_name(&spec.to).is_none() {
                return Err(format!("unknown autoscaler '{}' in swap plan", spec.to));
            }
        }
        Ok(EvolvingScaler {
            current: initial,
            plan,
            transform: Box::new(Identity),
            pending: None,
            log: Vec::new(),
        })
    }

    /// [`new`](EvolvingScaler::new) with the initial scaler looked up by
    /// name.
    pub fn by_name(initial: &str, plan: SwapPlan) -> Result<Self, String> {
        let scaler =
            scaler_by_name(initial).ok_or_else(|| format!("unknown autoscaler '{initial}'"))?;
        EvolvingScaler::new(scaler, plan)
    }

    /// Replaces the capsule transform applied between capture and
    /// resume (default: identity).
    pub fn with_transform(mut self, transform: Box<dyn CapsuleTransform + Send>) -> Self {
        self.transform = transform;
        self
    }

    /// The name of the policy currently deciding.
    pub fn current_name(&self) -> &'static str {
        self.current.name()
    }

    /// Every swap executed so far.
    pub fn swap_log(&self) -> &[SwapRecord] {
        &self.log
    }
}

impl Autoscaler for EvolvingScaler {
    fn name(&self) -> &'static str {
        "evolving"
    }

    fn decide(&mut self, view: &ScalerView<'_>) -> u32 {
        self.current.decide(view)
    }

    fn workflow_aware(&self) -> bool {
        self.current.workflow_aware()
    }

    fn swap_due(&mut self, now: f64, demand: f64) -> Option<String> {
        let spec = self.plan.due(now, demand)?;
        let label = swap_span_label(self.current.name(), &spec.to);
        self.pending = Some(spec);
        Some(label)
    }

    fn apply_swap(&mut self, now: f64) {
        let Some(spec) = self.pending.take() else {
            return;
        };
        let mut successor = scaler_by_name(&spec.to).expect("plan validated at construction");
        let h = handoff(
            self.current.as_ref(),
            successor.as_mut(),
            self.transform.as_ref(),
            now,
        )
        .expect("a capsule transform broke the capture/resume contract");
        self.log.push(SwapRecord {
            time: now,
            from: self.current.name().to_string(),
            to: successor.name().to_string(),
            resumed: h.resumed,
        });
        self.current = successor;
    }
}

/// Runs `workflows` under `initial` with `plan` executing live;
/// returns the run result and the swap log. Attach a `recorder` to also
/// trace the run (swaps appear as `evolve.swap(from->to)` spans).
pub fn run_with_swaps(
    workflows: Vec<Workflow>,
    initial: &str,
    plan: SwapPlan,
    config: AutoscaleConfig,
    seed: u64,
    recorder: Option<&Recorder>,
) -> Result<(RunResult, Vec<SwapRecord>), String> {
    let scaler = EvolvingScaler::by_name(initial, plan)?;
    let (result, scaler) = run_keeping_scaler(workflows, scaler, config, seed, recorder);
    Ok((result, scaler.log))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run;
    use atlarge_telemetry::recorder::TraceKind;
    use atlarge_workload::workflow::{generate, Shape};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workflows(n: usize, gap: f64) -> Vec<Workflow> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| generate(&mut rng, Shape::ForkJoin(6), 30.0, 0.3, i as f64 * gap))
            .collect()
    }

    /// The keystone claim: an identity swap (every roster scaler
    /// replaced by itself mid-run) yields results equal to never
    /// swapping.
    #[test]
    fn identity_swap_is_observationally_free_for_every_scaler() {
        let cfg = AutoscaleConfig::default();
        for name in ["react", "adapt", "hist", "reg", "peak", "plan", "token"] {
            let baseline = {
                let scaler = scaler_by_name(name).unwrap();
                let evolving = EvolvingScaler::new(scaler, SwapPlan::none()).unwrap();
                run(workflows(8, 30.0), evolving, cfg, 11)
            };
            let plan = SwapPlan::parse(&format!("{name}@150")).unwrap();
            let (swapped, log) =
                run_with_swaps(workflows(8, 30.0), name, plan, cfg, 11, None).unwrap();
            assert_eq!(log.len(), 1, "{name}: swap must fire");
            assert!(log[0].resumed, "{name}: same-kind swap must resume");
            assert_eq!(baseline, swapped, "{name}: identity swap changed the run");
        }
    }

    /// The no-plan wrapper itself is free: wrapping a scaler in
    /// EvolvingScaler without a plan equals running it bare.
    #[test]
    fn wrapper_without_plan_equals_bare_scaler() {
        let cfg = AutoscaleConfig::default();
        let bare = run(workflows(8, 30.0), Token::default(), cfg, 5);
        let wrapped = EvolvingScaler::by_name("token", SwapPlan::none()).unwrap();
        let viaplan = run(workflows(8, 30.0), wrapped, cfg, 5);
        assert_eq!(bare, viaplan);
    }

    /// Traced identity swap: besides equal outputs, the kernel event
    /// stream (schedule/dispatch records) must be byte-identical — the
    /// only trace difference is the swap's own span pair.
    #[test]
    fn identity_swap_leaves_the_event_stream_byte_identical() {
        let cfg = AutoscaleConfig::default();
        let base_rec = Recorder::new();
        let baseline =
            crate::sim::run_traced(workflows(8, 30.0), Adapt::default(), cfg, 11, &base_rec);
        let swap_rec = Recorder::new();
        let plan = SwapPlan::parse("adapt@150").unwrap();
        let (swapped, log) =
            run_with_swaps(workflows(8, 30.0), "adapt", plan, cfg, 11, Some(&swap_rec)).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(baseline, swapped);

        let strip = |rec: &Recorder| -> Vec<String> {
            rec.trace()
                .into_iter()
                .filter(|r| !r.label.starts_with("evolve.swap("))
                .map(|r| r.to_json())
                .collect()
        };
        assert_eq!(strip(&base_rec), strip(&swap_rec));
        // And the swap span itself is present, paired, and at swap time.
        let spans: Vec<_> = swap_rec
            .trace()
            .into_iter()
            .filter(|r| r.label == "evolve.swap(adapt->adapt)")
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, TraceKind::SpanEnter);
        assert_eq!(spans[1].kind, TraceKind::SpanExit);
        assert_eq!(spans[0].time, log[0].time);
    }

    /// A/B: switching autoscalers at a demand peak actually changes the
    /// run, carries no state across kinds, and logs the handoff.
    #[test]
    fn cross_kind_swap_at_demand_peak_changes_the_run() {
        let cfg = AutoscaleConfig::default();
        // Tight arrivals so demand builds past the threshold.
        let baseline = run(workflows(12, 10.0), React, cfg, 7);
        let plan = SwapPlan::parse("token@peak6").unwrap();
        let (swapped, log) =
            run_with_swaps(workflows(12, 10.0), "react", plan, cfg, 7, None).unwrap();
        assert_eq!(log.len(), 1, "demand must exceed 6 at some tick");
        assert_eq!(log[0].from, "react");
        assert_eq!(log[0].to, "token");
        assert!(!log[0].resumed, "react capsule cannot resume into token");
        assert_eq!(
            baseline.workflows.len(),
            swapped.workflows.len(),
            "swap must not lose workflows"
        );
        assert_ne!(
            baseline.supply, swapped.supply,
            "a different scaler after the peak must provision differently"
        );
    }

    /// A transform rewriting a config field mid-flight: live evolution
    /// of the same policy kind (Token keeps its floor state but adopts a
    /// new retain fraction).
    #[derive(Debug)]
    struct RetainHalf;
    impl CapsuleTransform for RetainHalf {
        fn name(&self) -> &'static str {
            "retain-half"
        }
        fn apply(&self, mut capsule: atlarge_evolve::Capsule) -> atlarge_evolve::Capsule {
            capsule.set("retain", atlarge_evolve::Value::F64(0.9));
            capsule
        }
    }

    #[test]
    fn transform_rewrites_config_during_the_swap() {
        let cfg = AutoscaleConfig::default();
        let scaler = EvolvingScaler::by_name("token", SwapPlan::parse("token@150").unwrap())
            .unwrap()
            .with_transform(Box::new(RetainHalf));
        let (evolved, scaler) = run_keeping_scaler(workflows(12, 10.0), scaler, cfg, 7, None);
        assert_eq!(scaler.log.len(), 1);
        assert!(scaler.log[0].resumed);
        let baseline = run(workflows(12, 10.0), Token::default(), cfg, 7);
        assert_ne!(
            baseline.supply, evolved.supply,
            "a stickier retain fraction must change provisioning"
        );
    }

    #[test]
    fn unknown_names_are_rejected_up_front() {
        assert!(EvolvingScaler::by_name("nope", SwapPlan::none()).is_err());
        let plan = SwapPlan::parse("nope@10").unwrap();
        assert!(EvolvingScaler::by_name("react", plan).is_err());
    }
}
