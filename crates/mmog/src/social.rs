//! Implicit social networks, matchmaking, and toxicity (\[74\], \[75\],
//! \[77\], \[91\]).
//!
//! Match logs induce an *implicit* social network: players who repeatedly
//! co-play are socially linked even if the game has no friend system. The
//! studies used these graphs for matchmaking and best-practice sharing,
//! and for detecting toxicity. Here: graph construction from co-play
//! events, degree/clustering analyses, a matchmaking policy that prefers
//! linked players, and a report-plus-lexicon toxicity detector scored
//! against synthetic ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// An undirected weighted interaction graph over players.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SocialGraph {
    edges: BTreeMap<(u32, u32), u32>,
}

impl SocialGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a co-play event between two players.
    pub fn record_coplay(&mut self, a: u32, b: u32) {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        *self.edges.entry(key).or_insert(0) += 1;
    }

    /// Builds the graph from match rosters: every pair in a match
    /// co-plays.
    pub fn from_matches(matches: &[Vec<u32>]) -> Self {
        let mut g = SocialGraph::new();
        for m in matches {
            for i in 0..m.len() {
                for j in (i + 1)..m.len() {
                    g.record_coplay(m[i], m[j]);
                }
            }
        }
        g
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge weight between two players (0 if absent).
    pub fn weight(&self, a: u32, b: u32) -> u32 {
        self.edges.get(&(a.min(b), a.max(b))).copied().unwrap_or(0)
    }

    /// The *social* subgraph: edges with weight ≥ `threshold` (repeated
    /// co-play implies a tie, single co-occurrence does not).
    pub fn social_ties(&self, threshold: u32) -> Vec<(u32, u32)> {
        self.edges
            .iter()
            .filter(|(_, &w)| w >= threshold)
            .map(|(&(a, b), _)| (a, b))
            .collect()
    }

    /// Neighbors of a player under a tie threshold.
    pub fn neighbors(&self, player: u32, threshold: u32) -> BTreeSet<u32> {
        self.edges
            .iter()
            .filter(|(&(a, b), &w)| w >= threshold && (a == player || b == player))
            .map(|(&(a, b), _)| if a == player { b } else { a })
            .collect()
    }

    /// Global clustering coefficient of the tie graph: closed triplets /
    /// all triplets.
    pub fn clustering_coefficient(&self, threshold: u32) -> f64 {
        let ties = self.social_ties(threshold);
        let mut adj: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (a, b) in ties {
            adj.entry(a).or_default().insert(b);
            adj.entry(b).or_default().insert(a);
        }
        let mut triplets = 0u64;
        let mut closed = 0u64;
        for ns in adj.values() {
            let ns: Vec<u32> = ns.iter().copied().collect();
            for i in 0..ns.len() {
                for j in (i + 1)..ns.len() {
                    triplets += 1;
                    if adj.get(&ns[i]).is_some_and(|s| s.contains(&ns[j])) {
                        closed += 1;
                    }
                }
            }
        }
        if triplets == 0 {
            0.0
        } else {
            closed as f64 / triplets as f64
        }
    }
}

/// Generates match rosters with embedded friend groups: friends queue
/// together with probability `group_play`, strangers fill the rest.
pub fn generate_matches(
    players: u32,
    group_size: u32,
    matches: usize,
    roster: usize,
    group_play: f64,
    seed: u64,
) -> Vec<Vec<u32>> {
    assert!(group_size > 0 && players >= group_size);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..matches)
        .map(|_| {
            let mut m = Vec::with_capacity(roster);
            if rng.gen::<f64>() < group_play {
                // A friend group joins together.
                let g = rng.gen_range(0..players / group_size);
                for k in 0..group_size.min(roster as u32) {
                    m.push(g * group_size + k);
                }
            }
            while m.len() < roster {
                let p = rng.gen_range(0..players);
                if !m.contains(&p) {
                    m.push(p);
                }
            }
            m
        })
        .collect()
}

/// Matchmaking (\[74\], \[91\]): prefers rosters with existing social ties.
/// Returns the fraction of matches containing at least one tie.
pub fn social_match_rate(matches: &[Vec<u32>], graph: &SocialGraph, threshold: u32) -> f64 {
    if matches.is_empty() {
        return 0.0;
    }
    let with_tie = matches
        .iter()
        .filter(|m| {
            m.iter()
                .enumerate()
                .any(|(i, &a)| m[i + 1..].iter().any(|&b| graph.weight(a, b) >= threshold))
        })
        .count();
    with_tie as f64 / matches.len() as f64
}

/// Social-aware matchmaking (\[74\], \[91\]): builds rosters of `roster`
/// players from a queue, preferring to co-place players with existing
/// ties. Returns the rosters; unmatched leftovers are dropped.
pub fn matchmake(
    queue: &[u32],
    graph: &SocialGraph,
    threshold: u32,
    roster: usize,
) -> Vec<Vec<u32>> {
    assert!(roster > 0, "rosters need players");
    let mut remaining: Vec<u32> = queue.to_vec();
    let mut rosters = Vec::new();
    while remaining.len() >= roster {
        // Seed with the first waiting player, then greedily add their
        // social neighbors before filling with strangers (FIFO).
        let seed = remaining.remove(0);
        let mut m = vec![seed];
        let neighbors = graph.neighbors(seed, threshold);
        let mut i = 0;
        while i < remaining.len() && m.len() < roster {
            if neighbors.contains(&remaining[i]) {
                m.push(remaining.remove(i));
            } else {
                i += 1;
            }
        }
        while m.len() < roster && !remaining.is_empty() {
            m.push(remaining.remove(0));
        }
        if m.len() == roster {
            rosters.push(m);
        }
    }
    rosters
}

/// A chat message with ground-truth toxicity (for detector scoring).
#[derive(Debug, Clone, PartialEq)]
pub struct ChatMessage {
    /// Author.
    pub player: u32,
    /// Lexicon hits in the message (the detector's signal).
    pub flagged_terms: u32,
    /// Peer reports received.
    pub reports: u32,
    /// Ground truth: actually toxic.
    pub toxic: bool,
}

/// Generates a chat log where toxic messages carry more flagged terms and
/// attract more reports — with noise on both signals.
pub fn generate_chat(messages: usize, toxic_rate: f64, seed: u64) -> Vec<ChatMessage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..messages)
        .map(|i| {
            let toxic = rng.gen::<f64>() < toxic_rate;
            let flagged_terms = if toxic {
                1 + rng.gen_range(0..4)
            } else {
                u32::from(rng.gen::<f64>() < 0.05)
            };
            let reports = if toxic {
                rng.gen_range(0..5)
            } else {
                u32::from(rng.gen::<f64>() < 0.02)
            };
            ChatMessage {
                player: i as u32 % 500,
                flagged_terms,
                reports,
                toxic,
            }
        })
        .collect()
}

/// The \[77\]-style detector: a message is toxic if its lexicon score plus
/// weighted reports crosses a threshold.
pub fn detect_toxicity(msg: &ChatMessage, threshold: f64) -> bool {
    f64::from(msg.flagged_terms) + 0.8 * f64::from(msg.reports) >= threshold
}

/// Precision and recall of the detector on a log.
pub fn detector_quality(log: &[ChatMessage], threshold: f64) -> (f64, f64) {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for m in log {
        let flagged = detect_toxicity(m, threshold);
        match (flagged, m.toxic) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coplay_builds_weighted_edges() {
        let mut g = SocialGraph::new();
        g.record_coplay(1, 2);
        g.record_coplay(2, 1);
        g.record_coplay(1, 1); // ignored
        assert_eq!(g.weight(1, 2), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn friend_groups_emerge_as_ties() {
        // The implicit-social-network finding: repeated co-play separates
        // friends from random fill players.
        let matches = generate_matches(1_000, 4, 2_000, 8, 0.6, 5);
        let g = SocialGraph::from_matches(&matches);
        let ties = g.social_ties(5);
        assert!(!ties.is_empty(), "friend ties should emerge");
        // Ties overwhelmingly connect same-group players.
        let same_group = ties.iter().filter(|(a, b)| a / 4 == b / 4).count();
        assert!(
            same_group as f64 / ties.len() as f64 > 0.9,
            "{same_group}/{} ties within groups",
            ties.len()
        );
    }

    #[test]
    fn tie_graph_clusters() {
        let matches = generate_matches(400, 4, 3_000, 8, 0.7, 6);
        let g = SocialGraph::from_matches(&matches);
        let cc_ties = g.clustering_coefficient(5);
        assert!(
            cc_ties > 0.3,
            "friend groups should form triangles: {cc_ties}"
        );
    }

    #[test]
    fn matchmaking_with_ties_beats_random() {
        let matches = generate_matches(1_000, 4, 3_000, 8, 0.6, 7);
        let g = SocialGraph::from_matches(&matches);
        let grouped = social_match_rate(&matches, &g, 3);
        let random = generate_matches(1_000, 4, 3_000, 8, 0.0, 8);
        let random_rate = social_match_rate(&random, &g, 3);
        assert!(
            grouped > random_rate + 0.2,
            "grouped {grouped} vs random {random_rate}"
        );
    }

    #[test]
    fn social_matchmaker_beats_fifo_on_tie_rate() {
        // Build a tie graph from grouped play, then matchmake a mixed
        // queue: the social-aware matcher should co-place more friends
        // than plain FIFO rosters.
        let history = generate_matches(1_000, 4, 3_000, 8, 0.6, 11);
        let graph = SocialGraph::from_matches(&history);
        let mut rng = StdRng::seed_from_u64(12);
        let queue: Vec<u32> = (0..400).map(|_| rng.gen_range(0..1_000)).collect();
        let social_rosters = matchmake(&queue, &graph, 3, 8);
        let fifo_rosters: Vec<Vec<u32>> = queue.chunks(8).map(|c| c.to_vec()).collect();
        let social_rate = social_match_rate(&social_rosters, &graph, 3);
        let fifo_rate = social_match_rate(&fifo_rosters, &graph, 3);
        assert!(
            social_rate > fifo_rate,
            "social {social_rate} vs fifo {fifo_rate}"
        );
    }

    #[test]
    fn matchmaker_respects_roster_size() {
        let graph = SocialGraph::new();
        let queue: Vec<u32> = (0..21).collect();
        let rosters = matchmake(&queue, &graph, 1, 5);
        assert_eq!(rosters.len(), 4);
        for m in &rosters {
            assert_eq!(m.len(), 5);
            // No duplicate players within a roster.
            let set: std::collections::BTreeSet<u32> = m.iter().copied().collect();
            assert_eq!(set.len(), 5);
        }
    }

    #[test]
    fn toxicity_detector_has_useful_precision_recall() {
        let log = generate_chat(20_000, 0.05, 9);
        let (p, r) = detector_quality(&log, 2.0);
        assert!(p > 0.7, "precision {p}");
        assert!(r > 0.5, "recall {r}");
    }

    #[test]
    fn threshold_trades_precision_for_recall() {
        let log = generate_chat(20_000, 0.05, 10);
        let (p_strict, r_strict) = detector_quality(&log, 3.5);
        let (p_loose, r_loose) = detector_quality(&log, 1.0);
        assert!(p_strict >= p_loose, "{p_strict} vs {p_loose}");
        assert!(r_loose >= r_strict, "{r_loose} vs {r_strict}");
    }
}
